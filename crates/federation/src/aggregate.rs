//! Server-side aggregation — the defense hook.
//!
//! The paper's protocol updates each item embedding as
//! `v_j ← v_j − η · Agg({∇v_j^i | u_i ∈ U^r, v_j ∈ D_i})` and, for DL-FRS,
//! the MLP parameters with the same `Agg`. With no defense, `Agg` is a plain
//! sum; robust defenses (crate `frs-defense`) replace it.
//!
//! The contract: [`Aggregator::aggregate`] receives *every* upload of the
//! round — benign and poisonous alike, the server cannot tell them apart —
//! in deterministic (client-id) order, and returns the single combined
//! gradient set the update applies. Defenses differ in granularity: some
//! filter whole uploads (Krum, NormBound), some reduce coordinate-wise per
//! item ([`gather_item_gradients`] is the helper for those).

use std::collections::BTreeMap;

use frs_model::{GlobalGradients, MlpGradients};

/// Pluggable aggregation rule over one round's uploads.
pub trait Aggregator: Send + Sync {
    /// Combines all uploads of a round into the applied update. `uploads` may
    /// be empty (no client produced gradients), in which case the result
    /// should be empty too.
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients;

    /// Display name for experiment tables.
    fn name(&self) -> &'static str;

    /// Serializable snapshot of aggregator state, for mid-scenario
    /// checkpointing. Every builtin aggregates statelessly (`aggregate`
    /// takes `&self`), so the `Value::Null` default is the norm; a custom
    /// defense with interior-mutable history overrides both hooks.
    fn checkpoint_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Overlays a snapshot captured by [`Aggregator::checkpoint_state`].
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        if state.is_null() {
            Ok(())
        } else {
            Err(format!(
                "aggregator {} holds no restorable state but checkpoint carries {}",
                self.name(),
                state.kind()
            ))
        }
    }
}

/// The undefended baseline: plain sum (paper Section III-A step 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumAggregator;

impl Aggregator for SumAggregator {
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients {
        sum_uploads(uploads)
    }

    fn name(&self) -> &'static str {
        "NoDefense"
    }
}

/// Sums a set of uploads item-wise and MLP-wise.
pub fn sum_uploads(uploads: &[GlobalGradients]) -> GlobalGradients {
    let mut out = GlobalGradients::new();
    for upload in uploads {
        out.axpy(1.0, upload);
    }
    out
}

/// Groups uploads per item: `item → [gradient of upload 1, …]`, preserving
/// the (client-id-sorted) upload order the server established. The building
/// block for coordinate-wise defenses (Median, TrimmedMean).
pub fn gather_item_gradients(uploads: &[GlobalGradients]) -> BTreeMap<u32, Vec<&[f32]>> {
    let mut by_item: BTreeMap<u32, Vec<&[f32]>> = BTreeMap::new();
    for upload in uploads {
        for (&item, grad) in &upload.items {
            by_item.entry(item).or_default().push(grad.as_slice());
        }
    }
    by_item
}

/// Collects the MLP gradient parts of a round's uploads.
pub fn gather_mlp_gradients(uploads: &[GlobalGradients]) -> Vec<&MlpGradients> {
    uploads.iter().filter_map(|u| u.mlp.as_ref()).collect()
}

/// Squared L2 distance between two *whole uploads*, treating items absent
/// from one side as zero vectors and including the flattened MLP part.
/// Krum-family defenses compare uploads in this space.
pub fn upload_squared_distance(a: &GlobalGradients, b: &GlobalGradients) -> f32 {
    let mut total = 0.0f32;
    for (&item, ga) in &a.items {
        match b.items.get(&item) {
            Some(gb) => total += frs_linalg::squared_l2_distance(ga, gb),
            None => total += frs_linalg::dot(ga, ga),
        }
    }
    for (&item, gb) in &b.items {
        if !a.items.contains_key(&item) {
            total += frs_linalg::dot(gb, gb);
        }
    }
    match (&a.mlp, &b.mlp) {
        (Some(ma), Some(mb)) => {
            let fa = ma.flatten();
            let fb = mb.flatten();
            total += frs_linalg::squared_l2_distance(&fa, &fb);
        }
        (Some(m), None) | (None, Some(m)) => {
            let f = m.flatten();
            total += frs_linalg::dot(&f, &f);
        }
        (None, None) => {}
    }
    total
}

/// Global L2 norm of one upload (items + MLP).
pub fn upload_norm(upload: &GlobalGradients) -> f32 {
    let mut sq = 0.0f32;
    for grad in upload.items.values() {
        sq += frs_linalg::dot(grad, grad);
    }
    if let Some(mlp) = &upload.mlp {
        let n = mlp.l2_norm();
        sq += n * n;
    }
    sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(pairs: &[(u32, Vec<f32>)]) -> GlobalGradients {
        let mut g = GlobalGradients::new();
        for (item, grad) in pairs {
            g.add_item_grad(*item, grad);
        }
        g
    }

    #[test]
    fn sum_aggregator_sums_disjoint_and_overlapping() {
        let u1 = upload(&[(1, vec![1.0, 0.0]), (2, vec![2.0, 2.0])]);
        let u2 = upload(&[(2, vec![-1.0, 1.0])]);
        let out = SumAggregator.aggregate(&[u1, u2]);
        assert_eq!(out.items[&1], vec![1.0, 0.0]);
        assert_eq!(out.items[&2], vec![1.0, 3.0]);
        assert!(out.mlp.is_none());
    }

    #[test]
    fn gather_groups_by_item() {
        let u1 = upload(&[(1, vec![1.0]), (2, vec![2.0])]);
        let u2 = upload(&[(2, vec![3.0])]);
        let uploads = vec![u1, u2];
        let by_item = gather_item_gradients(&uploads);
        assert_eq!(by_item[&1].len(), 1);
        assert_eq!(by_item[&2].len(), 2);
        assert!(!by_item.contains_key(&0));
    }

    #[test]
    fn mlp_summation_via_axpy() {
        let mut u1 = GlobalGradients::new();
        let mut m1 = MlpGradients::zeros(&[(2, 1)], 1);
        m1.projection[0] = 1.0;
        u1.mlp = Some(m1);
        let mut u2 = GlobalGradients::new();
        let mut m2 = MlpGradients::zeros(&[(2, 1)], 1);
        m2.projection[0] = 2.0;
        u2.mlp = Some(m2);
        let out = SumAggregator.aggregate(&[u1, u2]);
        assert_eq!(out.mlp.unwrap().projection[0], 3.0);
    }

    #[test]
    fn empty_uploads_produce_empty_update() {
        let out = SumAggregator.aggregate(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn upload_distance_handles_disjoint_support() {
        let a = upload(&[(1, vec![3.0, 4.0])]);
        let b = upload(&[(2, vec![1.0, 0.0])]);
        // Disjoint: ‖a‖² + ‖b‖² = 25 + 1.
        assert!((upload_squared_distance(&a, &b) - 26.0).abs() < 1e-5);
        // Identity.
        assert_eq!(upload_squared_distance(&a, &a), 0.0);
    }

    #[test]
    fn upload_distance_symmetric() {
        let a = upload(&[(1, vec![1.0]), (3, vec![2.0])]);
        let b = upload(&[(1, vec![-1.0]), (2, vec![0.5])]);
        assert_eq!(
            upload_squared_distance(&a, &b),
            upload_squared_distance(&b, &a)
        );
    }

    #[test]
    fn upload_norm_covers_items_and_mlp() {
        let mut u = upload(&[(1, vec![3.0, 4.0])]);
        assert!((upload_norm(&u) - 5.0).abs() < 1e-6);
        let mut m = MlpGradients::zeros(&[(2, 1)], 1);
        m.projection[0] = 12.0;
        u.mlp = Some(m);
        assert!((upload_norm(&u) - 13.0).abs() < 1e-5);
    }
}
