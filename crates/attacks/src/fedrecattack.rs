//! FedRecAttack \[32\]: user-embedding approximation from *public* interactions.
//!
//! The original attack assumes a small public fraction of benign users'
//! histories; it fits approximate user embeddings to those interactions
//! against the current global model and derives poisonous target gradients
//! from Eq. (5). When the public interactions are masked (`None`, the paper's
//! fair-comparison setting) the approximations never see a training signal,
//! stay at their random init, and the attack collapses — the Table III rows
//! where FedRecAttack scores ≈ 0.

use frs_linalg::{sigmoid, vector};
use frs_model::{GlobalGradients, GlobalModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use frs_federation::{Client, RoundContext};

use crate::approx::{fit_users_to_interactions, random_user_embeddings};

/// Configuration + state of one FedRecAttack malicious client.
pub struct FedRecAttack {
    id: usize,
    targets: Vec<u32>,
    /// Public (user-index, item) pairs the attacker was granted. `None` =
    /// masked (default in all paper tables).
    public_interactions: Option<Vec<(usize, u32)>>,
    /// Approximated benign-user embeddings (lazily initialized to match the
    /// model dimension on first round).
    approx_users: Vec<Vec<f32>>,
    n_approx_users: usize,
    fit_lr: f32,
    seed: u64,
}

impl FedRecAttack {
    /// Builds the attack. `public_interactions` uses *approximation-slot*
    /// user indices in `0..n_approx_users`.
    pub fn new(
        id: usize,
        targets: Vec<u32>,
        n_approx_users: usize,
        public_interactions: Option<Vec<(usize, u32)>>,
        seed: u64,
    ) -> Self {
        assert!(!targets.is_empty(), "need targets");
        assert!(n_approx_users > 0, "need at least one approximated user");
        if let Some(ints) = &public_interactions {
            assert!(
                ints.iter().all(|&(u, _)| u < n_approx_users),
                "interaction user index out of range"
            );
        }
        Self {
            id,
            targets,
            public_interactions,
            approx_users: Vec::new(),
            n_approx_users,
            fit_lr: 0.5,
            seed,
        }
    }

    /// Whether prior knowledge is available (unmasked variant).
    pub fn has_prior_knowledge(&self) -> bool {
        self.public_interactions
            .as_ref()
            .is_some_and(|v| !v.is_empty())
    }
}

impl Client for FedRecAttack {
    fn id(&self) -> usize {
        self.id
    }

    fn is_malicious(&self) -> bool {
        true
    }

    fn local_round(&mut self, _ctx: &RoundContext, model: &GlobalModel) -> GlobalGradients {
        // Masked prior knowledge (the paper's protocol): the approximation
        // module has nothing to fit and the attack never fires — FedRecAttack
        // degenerates to NoAttack, exactly the Table III rows.
        if !self.has_prior_knowledge() {
            return GlobalGradients::new();
        }
        if self.approx_users.is_empty() {
            let mut rng = StdRng::seed_from_u64(self.seed);
            self.approx_users =
                random_user_embeddings(self.n_approx_users, model.dim(), 0.1, &mut rng);
        }
        // Refine approximations on whatever public data exists. Masked ⇒
        // this is a no-op and the "users" below are random noise.
        if let Some(interactions) = &self.public_interactions {
            fit_users_to_interactions(model, &mut self.approx_users, interactions, self.fit_lr);
        }

        // Eq. (5): push every approximated user's score for each target up.
        let mut upload = GlobalGradients::new();
        let scale = 1.0 / self.approx_users.len() as f32;
        for &target in &self.targets {
            let mut grad = vec![0.0f32; model.dim()];
            for user in &self.approx_users {
                let logit = model.logit(user, target);
                let delta = (sigmoid(logit) - 1.0) * scale;
                let g = model.item_grad_of_logit(user, target);
                vector::axpy(delta, &g, &mut grad);
            }
            upload.add_item_grad(target, &grad);
        }
        upload
    }

    fn checkpoint_state(&self) -> serde::Value {
        FedRecState {
            approx_users: self.approx_users.clone(),
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let state = FedRecState::from_value(state).map_err(|e| e.to_string())?;
        self.approx_users = state.approx_users;
        Ok(())
    }
}

/// Serialized mutable state of a [`FedRecAttack`]: the fitted user
/// approximations (empty until first unmasked round).
#[derive(Serialize, Deserialize)]
struct FedRecState {
    approx_users: Vec<Vec<f32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_linalg::SeedStream;
    use frs_model::{LossKind, ModelConfig};

    fn model() -> GlobalModel {
        GlobalModel::new(&ModelConfig::mf(5), 12, &mut StdRng::seed_from_u64(6))
    }

    fn ctx() -> RoundContext {
        RoundContext::new(0, 1.0, 1.0, 1, LossKind::Bce, SeedStream::new(0))
    }

    #[test]
    fn uploads_gradients_for_targets_only_when_unmasked() {
        let interactions = vec![(0usize, 1u32)];
        let mut atk = FedRecAttack::new(50, vec![3, 7], 8, Some(interactions), 1);
        let g = atk.local_round(&ctx(), &model());
        assert_eq!(g.n_items(), 2);
        assert!(g.items.contains_key(&3) && g.items.contains_key(&7));
        assert!(g.mlp.is_none());
    }

    #[test]
    fn unmasked_variant_fits_public_interactions() {
        let m = model();
        let interactions = vec![(0usize, 1u32), (1, 2), (2, 1)];
        let mut atk = FedRecAttack::new(50, vec![9], 4, Some(interactions.clone()), 1);
        assert!(atk.has_prior_knowledge());
        for _ in 0..30 {
            atk.local_round(&ctx(), &m);
        }
        // Approximated users should now score their public items positively.
        let mean: f32 = interactions
            .iter()
            .map(|&(u, j)| m.logit(&atk.approx_users[u], j))
            .sum::<f32>()
            / interactions.len() as f32;
        assert!(mean > 0.0, "fitted users should like their items: {mean}");
    }

    #[test]
    fn masked_variant_is_inert() {
        let m = model();
        let mut atk = FedRecAttack::new(50, vec![9], 4, None, 1);
        assert!(!atk.has_prior_knowledge());
        let g = atk.local_round(&ctx(), &m);
        assert!(g.is_empty(), "masked FedRecAttack must upload nothing");
    }

    #[test]
    fn poison_direction_raises_approx_user_scores() {
        let mut m = model();
        let interactions = vec![(0usize, 1u32), (1, 2)];
        let mut atk = FedRecAttack::new(50, vec![9], 6, Some(interactions), 1);
        let g = atk.local_round(&ctx(), &m);
        let before: f32 = atk.approx_users.iter().map(|u| m.logit(u, 9)).sum();
        m.apply_gradients(&g, 1.0);
        let after: f32 = atk.approx_users.iter().map(|u| m.logit(u, 9)).sum();
        assert!(after >= before, "{before} -> {after}");
    }
}
