//! `lint.toml` scoping semantics, end to end through `lint_source` and a
//! synthetic on-disk workspace through `lint_workspace`/`lint_paths`.

use std::path::{Path, PathBuf};

use frs_lint::{
    builtin_rule_ids, builtin_rules, lint_paths, lint_source, lint_workspace, LintConfig,
};

const CAST_SRC: &str = "pub fn f(i: usize) -> u32 { i as u32 }\n";

fn parse(text: &str) -> LintConfig {
    LintConfig::parse(text, &builtin_rule_ids()).expect("config parses")
}

fn violations(config: &LintConfig, package: &str, test_like: bool, src: &str) -> usize {
    lint_source("x.rs", src, package, config, &builtin_rules(), test_like).len()
}

#[test]
fn a_rule_absent_from_the_config_runs_nowhere() {
    let config = parse("[rule.map-iter-order]\ncrates = [\"*\"]\n");
    assert_eq!(violations(&config, "any-pkg", false, CAST_SRC), 0);
}

#[test]
fn crates_and_exclude_pick_packages() {
    let config = parse(
        "[rule.lossy-index-cast]\ncrates = [\"*\"]\nexclude = [\"frs-bench\"]\n\
         [rule.unseeded-entropy]\ncrates = [\"frs-data\"]\n",
    );
    assert_eq!(violations(&config, "frs-data", false, CAST_SRC), 1);
    assert_eq!(violations(&config, "frs-bench", false, CAST_SRC), 0);
    let clock = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(violations(&config, "frs-data", false, clock), 1);
    assert_eq!(violations(&config, "frs-model", false, clock), 0);
}

#[test]
fn skip_tests_exempts_test_targets_and_cfg_test_regions() {
    let scoped = parse("[rule.lossy-index-cast]\ncrates = [\"*\"]\n");
    let strict = parse("[rule.lossy-index-cast]\ncrates = [\"*\"]\nskip_tests = false\n");
    // Test-like target (tests/, benches/, examples/): exempt by default.
    assert_eq!(violations(&scoped, "p", true, CAST_SRC), 0);
    assert_eq!(violations(&strict, "p", true, CAST_SRC), 1);
    // #[cfg(test)] region inside src/: exempt by default.
    let with_region = "pub fn f(i: usize) -> u32 { i as u32 }\n\
                       #[cfg(test)]\n\
                       mod tests {\n\
                       pub fn g(i: usize) -> u32 { i as u32 }\n\
                       }\n";
    assert_eq!(violations(&scoped, "p", false, with_region), 1);
    assert_eq!(violations(&strict, "p", false, with_region), 2);
}

/// Lays out a throwaway two-package workspace under the target directory
/// (which workspace discovery itself skips when scanning the real repo).
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("lint-scoping-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (pkg, src) in [("pkg-a", CAST_SRC), ("pkg-b", "pub fn ok() {}\n")] {
            let dir = root.join(pkg).join("src");
            std::fs::create_dir_all(&dir).expect("mkdir");
            std::fs::write(
                root.join(pkg).join("Cargo.toml"),
                format!("[package]\nname = \"{pkg}\"\n"),
            )
            .expect("manifest");
            std::fs::write(dir.join("lib.rs"), src).expect("source");
        }
        Self { root }
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn workspace_scan_honors_package_scoping() {
    let ws = TempWorkspace::new("scan");
    let scoped = parse("[rule.lossy-index-cast]\ncrates = [\"pkg-a\"]\n");
    let report = lint_workspace(&ws.root, &scoped).expect("scan");
    assert_eq!(report.files_scanned, 2);
    assert_eq!(report.unwaived, 1, "{}", report.human(true));
    let off_target = parse("[rule.lossy-index-cast]\ncrates = [\"pkg-b\"]\n");
    let report = lint_workspace(&ws.root, &off_target).expect("scan");
    assert!(report.is_clean(), "{}", report.human(true));
}

#[test]
fn config_naming_an_unknown_package_is_a_hard_error() {
    let ws = TempWorkspace::new("badname");
    let config = parse("[rule.lossy-index-cast]\ncrates = [\"pkg-zzz\"]\n");
    let err = lint_workspace(&ws.root, &config).expect_err("must reject");
    assert!(err.contains("pkg-zzz"), "{err}");
}

#[test]
fn files_outside_any_package_get_every_rule_unscoped() {
    // The CI fixture-injection path: an empty config silences everything
    // inside packages, but a stray file still gets the full strict set.
    let ws = TempWorkspace::new("stray");
    let stray = ws.root.join("stray.rs");
    std::fs::write(&stray, CAST_SRC).expect("stray");
    let empty = parse("version = 1\n");
    let report = lint_paths(&ws.root, &empty, &[stray]).expect("lint");
    assert_eq!(report.unwaived, 1, "{}", report.human(true));
    // The same content inside pkg-a is silent under the empty config.
    let inside = ws.root.join("pkg-a/src/lib.rs");
    let report = lint_paths(&ws.root, &empty, &[inside]).expect("lint");
    assert!(report.is_clean(), "{}", report.human(true));
}
