//! Per-round information the server shares with sampled clients.

use frs_linalg::SeedStream;
use rand::rngs::StdRng;

/// What a sampled client learns from the server in one round — exactly the
/// attacker knowledge of Section III-B: the learning rate, the round index,
/// and (via the `&GlobalModel` argument of
/// [`crate::Client::local_round`]) the current global model.
#[derive(Debug, Clone)]
pub struct RoundContext {
    /// Communication-round index `r`.
    pub round: usize,
    /// Server learning rate `η` (global, known to all participants).
    pub server_lr: f32,
    /// Client-side learning rate for personal embeddings.
    pub client_lr: f32,
    /// Negative-sampling ratio `q`.
    pub negative_ratio: usize,
    /// Loss the federation trains with.
    pub loss: frs_model::LossKind,
    /// Seed stream for this round; clients derive their private RNG from it
    /// combined with their id, keeping the simulation reproducible under any
    /// thread count.
    seeds: SeedStream,
}

impl RoundContext {
    /// Builds the context for round `round`.
    pub fn new(
        round: usize,
        server_lr: f32,
        client_lr: f32,
        negative_ratio: usize,
        loss: frs_model::LossKind,
        seeds: SeedStream,
    ) -> Self {
        Self {
            round,
            server_lr,
            client_lr,
            negative_ratio,
            loss,
            seeds,
        }
    }

    /// Deterministic RNG for (`client_id`, this round).
    pub fn client_rng(&self, client_id: usize) -> StdRng {
        self.seeds
            .substream("round", self.round as u64)
            .rng("client", client_id as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_model::LossKind;
    use rand::Rng;

    fn ctx(round: usize) -> RoundContext {
        RoundContext::new(round, 1.0, 1.0, 1, LossKind::Bce, SeedStream::new(7))
    }

    #[test]
    fn client_rng_reproducible() {
        let a: u64 = ctx(3).client_rng(5).gen();
        let b: u64 = ctx(3).client_rng(5).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn client_rng_varies_by_round_and_client() {
        let a: u64 = ctx(3).client_rng(5).gen();
        let b: u64 = ctx(4).client_rng(5).gen();
        let c: u64 = ctx(3).client_rng(6).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
