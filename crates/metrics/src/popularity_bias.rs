//! Popularity-bias metrics for recommendation lists.
//!
//! The paper's attack exploits (and its defense regulates) *popularity bias*:
//! recommender models over-recommend popular items (finding F2). These
//! metrics quantify that bias over the top-K lists the system actually
//! serves, complementing ER/HR:
//!
//! - [`catalogue_coverage`]: fraction of the catalogue that appears in at
//!   least one user's top-K.
//! - [`gini_coefficient`]: inequality of recommendation frequency across
//!   items (0 = uniform exposure, →1 = all exposure on a few items).
//! - [`average_recommended_popularity`]: mean training popularity of the
//!   recommended items — how strongly lists skew popular.

use frs_data::Dataset;
use frs_linalg::top_k_desc_filtered_into;
use frs_model::{GlobalModel, UserEmbeddings};

/// Per-item recommendation frequency over all users' top-K lists.
pub fn recommendation_frequency<E: UserEmbeddings + ?Sized>(
    model: &GlobalModel,
    user_embeddings: &E,
    users: &[usize],
    train: &Dataset,
    k: usize,
) -> Vec<u32> {
    let mut freq = vec![0u32; model.n_items()];
    let mut scores = Vec::new();
    let mut top = Vec::new();
    for &u in users {
        model.scores_for_user_into(user_embeddings.user_embedding(u), &mut scores);
        // lint:allow(lossy-index-cast): j indexes the score slice, whose length is the u32-keyed catalog size
        top_k_desc_filtered_into(&scores, k, |j| !train.interacted(u, j as u32), &mut top);
        for &j in &top {
            freq[j] += 1;
        }
    }
    freq
}

/// Fraction of items recommended to at least one user.
pub fn catalogue_coverage(frequency: &[u32]) -> f64 {
    if frequency.is_empty() {
        return 0.0;
    }
    frequency.iter().filter(|&&f| f > 0).count() as f64 / frequency.len() as f64
}

/// Gini coefficient of the recommendation-frequency distribution.
pub fn gini_coefficient(frequency: &[u32]) -> f64 {
    let n = frequency.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = frequency.iter().map(|&f| f as u64).sum::<u64>();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = frequency.iter().map(|&f| f as u64).collect();
    sorted.sort_unstable();
    // G = (2·Σ i·x_i) / (n·Σ x_i) − (n+1)/n, with 1-based i over sorted x.
    let weighted: u64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as u64 + 1) * x)
        .sum::<u64>();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Mean training-interaction count of recommended items (weighted by how
/// often each item is recommended).
pub fn average_recommended_popularity(frequency: &[u32], train: &Dataset) -> f64 {
    let total: u64 = frequency.iter().map(|&f| f as u64).sum::<u64>();
    if total == 0 {
        return 0.0;
    }
    let weighted: u64 = frequency
        .iter()
        .zip(train.item_popularity())
        .map(|(&f, &pop)| f as u64 * pop as u64)
        .sum::<u64>();
    weighted as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_model::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn axis_world() -> (GlobalModel, Vec<Vec<f32>>, Dataset) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = GlobalModel::new(&ModelConfig::mf(2), 6, &mut rng);
        for j in 0..6u32 {
            let emb = model.item_embedding_mut(j);
            emb[0] = j as f32;
            emb[1] = 0.0;
        }
        let embs = vec![vec![1.0, 0.0]; 3];
        // Popularities: item 5 interacted by all, item 4 by one.
        let train = Dataset::from_user_items(6, vec![vec![5], vec![5, 4], vec![5]]);
        (model, embs, train)
    }

    #[test]
    fn frequency_counts_topk_membership() {
        let (model, embs, train) = axis_world();
        let freq = recommendation_frequency(&model, &embs, &[0, 1, 2], &train, 2);
        // All users: eligible top-2 is {4, 3} (except user 1 whose 4 is interacted → {3, 2}).
        assert_eq!(freq[4], 2);
        assert_eq!(freq[3], 3);
        assert_eq!(freq[2], 1);
        assert_eq!(freq[5], 0, "interacted everywhere — never recommended");
    }

    #[test]
    fn coverage_fraction() {
        let (model, embs, train) = axis_world();
        let freq = recommendation_frequency(&model, &embs, &[0, 1, 2], &train, 2);
        // Items 2, 3, 4 covered of 6.
        assert!((catalogue_coverage(&freq) - 0.5).abs() < 1e-12);
        assert_eq!(catalogue_coverage(&[]), 0.0);
    }

    #[test]
    fn gini_zero_for_uniform_and_high_for_concentrated() {
        assert!(gini_coefficient(&[5, 5, 5, 5]).abs() < 1e-9);
        let concentrated = gini_coefficient(&[0, 0, 0, 100]);
        assert!(concentrated > 0.7, "{concentrated}");
        assert_eq!(gini_coefficient(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini_coefficient(&[1, 2, 3, 4]);
        let b = gini_coefficient(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn average_popularity_weights_by_frequency() {
        let train = Dataset::from_user_items(3, vec![vec![0, 1], vec![0]]);
        // pop = [2, 1, 0]; freq = [1, 0, 1] → avg = (2 + 0)/2 = 1.
        assert!((average_recommended_popularity(&[1, 0, 1], &train) - 1.0).abs() < 1e-12);
        assert_eq!(average_recommended_popularity(&[0, 0, 0], &train), 0.0);
    }
}
