//! A hand-rolled parser for the TOML subset `lint.toml` uses.
//!
//! The container has no registry access and the vendor tree has no TOML
//! crate, so the lint configuration sticks to a small, strictly parsed
//! subset: `[section.sub]` headers, `key = value` pairs where a value is a
//! string, boolean, integer, or a (possibly multi-line) array of strings,
//! and `#` comments. Anything outside the subset is a hard error — a
//! config typo must fail the run (exit 2), never silently relax a rule.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    StrArray(Vec<String>),
}

impl Value {
    /// The value as a string-array, if it is one.
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parsed document: section name (dotted, e.g. `rule.map-iter-order`) →
/// key → value. Keys before any section header live under `""`.
pub type Doc = BTreeMap<String, BTreeMap<String, Value>>;

/// Parses the subset, with line numbers in every error.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc: Doc = BTreeMap::new();
    let mut section = String::new();
    doc.entry(section.clone()).or_default();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: unterminated section header"))?
                .trim();
            if header.is_empty() {
                return Err(format!("line {line_no}: empty section name"));
            }
            section = header.to_string();
            if doc.contains_key(&section) && !section.is_empty() {
                return Err(format!("line {line_no}: duplicate section [{section}]"));
            }
            doc.entry(section.clone()).or_default();
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected `key = value`, got {line:?}"))?;
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err(format!("line {line_no}: empty key"));
        }
        let mut value_text = value_text.trim().to_string();
        // A multi-line array: keep consuming lines until the bracket closes.
        if value_text.starts_with('[') && !balanced_array(&value_text) {
            for (_, cont) in lines.by_ref() {
                value_text.push(' ');
                value_text.push_str(strip_comment(cont).trim());
                if balanced_array(&value_text) {
                    break;
                }
            }
            if !balanced_array(&value_text) {
                return Err(format!(
                    "line {line_no}: unterminated array for key `{key}`"
                ));
            }
        }
        let value = parse_value(&value_text)
            .map_err(|e| format!("line {line_no}: bad value for `{key}`: {e}"))?;
        let entries = doc.entry(section.clone()).or_default();
        if entries.insert(key.clone(), value).is_some() {
            return Err(format!("line {line_no}: duplicate key `{key}`"));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Is the `[` array literal closed (brackets outside strings balanced)?
fn balanced_array(text: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for piece in split_array_items(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_value(piece)? {
                Value::Str(s) => items.push(s),
                other => return Err(format!("arrays may only hold strings, got {other:?}")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        if inner.contains('"') || inner.contains('\\') {
            return Err("escapes and embedded quotes are outside the subset".to_string());
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(format!(
        "{text:?} is not a string, bool, integer, or string array"
    ))
}

/// Splits array items on commas outside quotes.
fn split_array_items(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_and_value_shapes() {
        let doc = parse(
            "version = 1\n\
             [rule.map-iter-order]  # trailing comment\n\
             crates = [\"a\", \"b\"]\n\
             skip_tests = false\n\
             label = \"x\"\n",
        )
        .unwrap();
        assert_eq!(doc[""]["version"], Value::Int(1));
        let section = &doc["rule.map-iter-order"];
        assert_eq!(
            section["crates"],
            Value::StrArray(vec!["a".into(), "b".into()])
        );
        assert_eq!(section["skip_tests"], Value::Bool(false));
        assert_eq!(section["label"], Value::Str("x".into()));
    }

    #[test]
    fn multi_line_arrays() {
        let doc = parse("[s]\ncrates = [\n  \"one\",  # first\n  \"two\",\n]\n").unwrap();
        assert_eq!(
            doc["s"]["crates"],
            Value::StrArray(vec!["one".into(), "two".into()])
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("[s]\nname = \"a#b\"\n").unwrap();
        assert_eq!(doc["s"]["name"], Value::Str("a#b".into()));
    }

    #[test]
    fn errors_are_loud() {
        assert!(parse("[unterminated\n").is_err());
        assert!(parse("just a line\n").is_err());
        assert!(parse("[s]\nk = [1, 2]\n").is_err(), "non-string array");
        assert!(parse("[s]\nk = maybe\n").is_err());
        assert!(parse("[s]\nk = 1\nk = 2\n").is_err(), "duplicate key");
        assert!(parse("[s]\n[s]\n").is_err(), "duplicate section");
        assert!(parse("[s]\nk = [\"open\n").is_err(), "unterminated array");
    }
}
