//! Focused integration tests of the defense regularizer inside live
//! federated training: mining parity between attacker and defenders, Re-term
//! trajectories over rounds, and the defense's interaction with Δ-Norm
//! mining accuracy.

use pieck_frs::attacks::AttackKind;
use pieck_frs::defense::DefenseKind;
use pieck_frs::experiments::scenario::{build_simulation, build_world};
use pieck_frs::experiments::{paper_scenario, PaperDataset};
use pieck_frs::linalg::{cosine, kl_divergence};
use pieck_frs::model::ModelKind;
use pieck_frs::pieck::mining::PopularItemMiner;
use std::sync::Arc;

/// Defender-side and attacker-side miners observe the *same* global model
/// stream, so they converge on (nearly) the same popular set — the property
/// that lets the defense know what to regularize without prior knowledge.
#[test]
fn attacker_and_defender_mine_the_same_set() {
    let cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.12, 21);
    let (_, split, _) = build_world(&cfg);
    let train = Arc::new(split.train.clone());
    let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);

    let mut attacker = PopularItemMiner::new(2, 10);
    let mut defender = PopularItemMiner::new(2, 10);
    attacker.observe(sim.model());
    defender.observe(sim.model());
    while !attacker.is_complete() {
        sim.run_round();
        attacker.observe(sim.model());
        defender.observe(sim.model());
    }
    assert_eq!(attacker.mined().unwrap(), defender.mined().unwrap());
}

/// Under the defense, the separation Re2 targets actually materializes:
/// user embeddings drift away (in softmax-KL) from popular-item embeddings
/// relative to undefended training.
#[test]
fn defense_increases_user_popular_separation() {
    let run = |defense: DefenseKind| -> f64 {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.12, 22);
        cfg.defense = defense.into();
        cfg.rounds = 80;
        // Isolate Re2 (the term under test) so Re1's feature blurring cannot
        // mask the separation it produces at this small scale. The knobs are
        // registry params on the defense selection now.
        if defense == DefenseKind::Ours {
            cfg.defense.set_param("re1", false);
            cfg.defense.set_param("gamma", 2.0f32);
        }
        let (_, split, _) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);
        sim.run(80);
        // Popular set = true top-10 items; measure mean KL(popular ‖ user).
        let popular: Vec<u32> = train.popularity_ranking()[..10].to_vec();
        let embs = sim.user_embeddings();
        let benign = sim.benign_ids();
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for &u in benign.iter().take(50) {
            for &k in &popular {
                sum += kl_divergence(sim.model().item_embedding(k), embs.row(u)) as f64;
                count += 1;
            }
        }
        sum / count as f64
    };
    let undefended = run(DefenseKind::NoDefense);
    let defended = run(DefenseKind::Ours);
    assert!(
        defended > undefended,
        "Re2 should push users away from popular items: {defended} vs {undefended}"
    );
}

/// Re1's confusion materializes too: under the defense, unpopular items'
/// embeddings become *more* similar (cosine) to popular ones.
#[test]
fn defense_blurs_popular_unpopular_features() {
    let run = |defense: DefenseKind| -> f64 {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.12, 23);
        cfg.defense = defense.into();
        cfg.rounds = 80;
        let (_, split, _) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);
        sim.run(80);
        let ranking = train.popularity_ranking();
        let popular = &ranking[..10];
        let mid = &ranking[ranking.len() / 3..ranking.len() / 3 + 30];
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for &j in mid {
            for &k in popular {
                sum += cosine(sim.model().item_embedding(k), sim.model().item_embedding(j)) as f64;
                count += 1;
            }
        }
        sum / count as f64
    };
    let undefended = run(DefenseKind::NoDefense);
    let defended = run(DefenseKind::Ours);
    assert!(
        defended > undefended,
        "Re1 should raise unpopular→popular similarity: {defended} vs {undefended}"
    );
}

/// The defense does not break the attacker's *mining* (it isn't meant to —
/// the paper defends the exploitation stage, not the discovery stage).
#[test]
fn mining_still_works_under_defense() {
    let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.12, 24);
    cfg.attack = AttackKind::PieckUea.into();
    cfg.defense = DefenseKind::Ours.into();
    let (_, split, targets) = build_world(&cfg);
    let train = Arc::new(split.train.clone());
    let rank = train.popularity_rank_of();
    let n_top15 = (train.n_items() as f64 * 0.15).ceil() as usize;
    let mut sim = build_simulation(&cfg, Arc::clone(&train), &targets);

    let mut miner = PopularItemMiner::new(2, 10);
    miner.observe(sim.model());
    while !miner.is_complete() {
        sim.run_round();
        miner.observe(sim.model());
    }
    let precision =
        pieck_frs::pieck::mining::mining_precision(miner.mined().unwrap(), &rank, n_top15);
    assert!(precision >= 0.6, "mining survives the defense: {precision}");
}
