//! The `paper serve` wire protocol: line-delimited JSON over a Unix socket
//! or TCP connection.
//!
//! One request per line, one response line per request, in order. Clients
//! may pipeline: many request lines can be in flight on one connection, and
//! the daemon answers them strictly in arrival order. Two request shapes
//! share a single envelope:
//!
//! - **Top-K query** — `{"scenario":"table5/mf","user":3,"k":10}`: rank the
//!   named scenario's snapshot for dense user id 3 and return the 10 best
//!   items the user has not interacted with. `k` defaults to [`DEFAULT_K`];
//!   `scenario` defaults to the daemon's first (default) scenario, which
//!   keeps single-scenario clients from before multi-scenario routing
//!   working unchanged.
//! - **Status** — `{}` (no `user`): report the resolved scenario's round
//!   and population sizes, the daemon-wide query counter, and one
//!   [`ScenarioStatus`] per hosted scenario.
//!
//! Responses are [`TopKResponse`], [`StatusResponse`], or — for unparsable
//! lines, unknown scenarios, oversized lines, and out-of-range users —
//! [`ErrorResponse`]. A malformed line never kills the connection: the
//! daemon answers with an error and keeps reading, so a scripted client
//! can't wedge itself off by one. Request lines are bounded by
//! [`MAX_LINE_BYTES`]; longer lines earn a protocol error and the
//! connection resynchronizes at the next newline.

use serde::{Deserialize, Serialize};

/// Top-K cutoff when a query omits `k`.
pub const DEFAULT_K: usize = 10;

/// Longest request line the daemon accepts (bytes, newline excluded).
/// Anything larger is answered with a protocol error instead of growing the
/// connection buffer unboundedly.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// One request line. Both shapes (query / status) parse into this envelope;
/// `user: None` means status.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Dense user id to recommend for; omit for a status request.
    #[serde(default)]
    pub user: Option<usize>,
    /// Top-K cutoff (defaults to [`DEFAULT_K`]; ignored for status).
    #[serde(default)]
    pub k: Option<usize>,
    /// Scenario to route to; omit for the daemon's default scenario.
    #[serde(default)]
    pub scenario: Option<String>,
}

impl Request {
    /// A top-K query for `user` against the default scenario.
    pub fn top_k(user: usize, k: usize) -> Self {
        Self {
            user: Some(user),
            k: Some(k),
            scenario: None,
        }
    }

    /// A top-K query routed to a named scenario.
    pub fn top_k_in(scenario: &str, user: usize, k: usize) -> Self {
        Self {
            user: Some(user),
            k: Some(k),
            scenario: Some(scenario.to_string()),
        }
    }

    /// A status request.
    pub fn status() -> Self {
        Self {
            user: None,
            k: None,
            scenario: None,
        }
    }
}

/// One recommended item with its model score (higher is better).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredItem {
    pub item: u32,
    pub score: f32,
}

/// Answer to a top-K query: the best `k` uninteracted items for `user`,
/// best first, scored against the snapshot published at `round`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopKResponse {
    pub user: usize,
    pub k: usize,
    /// Training rounds completed when the answering snapshot was published.
    pub round: usize,
    /// Whether training had already finished at that snapshot.
    pub training_done: bool,
    pub items: Vec<ScoredItem>,
    /// Scenario that answered (the default one when the query named none).
    #[serde(default)]
    pub scenario: String,
}

/// The latest online evaluation probe for one scenario (`paper serve
/// --probe-every N`): stride-sampled ER@K/HR@K against the live snapshot.
/// Timing-free by design — identical state yields byte-identical values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeStatus {
    /// Round the probe evaluated.
    pub round: usize,
    /// Mean target exposure rate ER@K, percent.
    pub er_percent: f64,
    /// Recommendation quality HR@K, percent.
    pub hr_percent: f64,
}

/// Per-scenario entry in a [`StatusResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioStatus {
    /// Routing key (`{"scenario":...}`) for this entry.
    pub name: String,
    /// Snapshots published since the daemon started (the swap counter).
    pub epoch: u64,
    /// Training rounds completed in the current snapshot.
    pub round: usize,
    pub training_done: bool,
    /// Users the snapshot can answer for (dense ids `0..n_users`).
    pub n_users: usize,
    pub n_items: usize,
    /// Top-K queries this scenario answered since the daemon started.
    pub queries_served: u64,
    /// Latest online evaluation probe, when `--probe-every` is armed.
    #[serde(default)]
    pub probe: Option<ProbeStatus>,
}

/// Answer to a status request. The top-level fields describe the resolved
/// scenario (the named one, or the default) — the shape single-scenario
/// clients have always parsed — while `scenarios` enumerates every hosted
/// scenario for multi-scenario deployments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusResponse {
    /// Training rounds completed in the resolved scenario's snapshot.
    pub round: usize,
    pub training_done: bool,
    /// Users the resolved scenario can answer for.
    pub n_users: usize,
    pub n_items: usize,
    /// Top-K queries answered since the daemon started, all scenarios.
    pub queries_served: u64,
    /// Every hosted scenario, in registration order (first = default).
    #[serde(default)]
    pub scenarios: Vec<ScenarioStatus>,
}

/// Answer to an unparsable line or an invalid query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shapes_round_trip() {
        let q: Request = serde_json::from_str("{\"user\":3,\"k\":5}").unwrap();
        assert_eq!((q.user, q.k), (Some(3), Some(5)));
        assert_eq!(q.scenario, None);

        let q: Request = serde_json::from_str("{\"user\":7}").unwrap();
        assert_eq!((q.user, q.k), (Some(7), None));

        let status: Request = serde_json::from_str("{}").unwrap();
        assert_eq!((status.user, status.k), (None, None));

        let text = serde_json::to_string(&Request::top_k(2, 4)).unwrap();
        let back: Request = serde_json::from_str(&text).unwrap();
        assert_eq!((back.user, back.k), (Some(2), Some(4)));
    }

    #[test]
    fn scenario_key_routes_and_round_trips() {
        let q: Request =
            serde_json::from_str("{\"scenario\":\"table5/mf\",\"user\":1,\"k\":2}").unwrap();
        assert_eq!(q.scenario.as_deref(), Some("table5/mf"));

        let text = serde_json::to_string(&Request::top_k_in("a", 2, 4)).unwrap();
        let back: Request = serde_json::from_str(&text).unwrap();
        assert_eq!(back.scenario.as_deref(), Some("a"));
    }

    #[test]
    fn responses_serialize_to_single_lines() {
        let top = TopKResponse {
            user: 1,
            k: 2,
            round: 30,
            training_done: false,
            items: vec![
                ScoredItem {
                    item: 9,
                    score: 0.75,
                },
                ScoredItem {
                    item: 4,
                    score: 0.5,
                },
            ],
            scenario: "mf".to_string(),
        };
        let text = serde_json::to_string(&top).unwrap();
        assert!(!text.contains('\n'));
        let back: TopKResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back.items, top.items);
        assert_eq!(back.round, 30);
        assert_eq!(back.scenario, "mf");
    }

    #[test]
    fn status_enumerates_scenarios() {
        let status = StatusResponse {
            round: 4,
            training_done: false,
            n_users: 10,
            n_items: 20,
            queries_served: 7,
            scenarios: vec![ScenarioStatus {
                name: "mf".to_string(),
                epoch: 5,
                round: 4,
                training_done: false,
                n_users: 10,
                n_items: 20,
                queries_served: 7,
                probe: Some(ProbeStatus {
                    round: 4,
                    er_percent: 1.5,
                    hr_percent: 9.0,
                }),
            }],
        };
        let text = serde_json::to_string(&status).unwrap();
        assert!(!text.contains('\n'));
        let back: StatusResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back.scenarios.len(), 1);
        assert_eq!(back.scenarios[0].epoch, 5);
        assert_eq!(back.scenarios[0].probe.as_ref().unwrap().round, 4);
    }

    #[test]
    fn pre_scenario_clients_still_parse_the_status_shape() {
        // Regression pin for the PR 6 protocol: a client compiled against
        // the original five-field StatusResponse must keep parsing today's
        // responses (the deserializer ignores unknown fields).
        #[derive(Deserialize)]
        struct OldStatus {
            round: usize,
            training_done: bool,
            n_users: usize,
            n_items: usize,
            queries_served: u64,
        }
        let now = StatusResponse {
            round: 3,
            training_done: true,
            n_users: 5,
            n_items: 9,
            queries_served: 2,
            scenarios: Vec::new(),
        };
        let old: OldStatus = serde_json::from_str(&serde_json::to_string(&now).unwrap()).unwrap();
        assert_eq!(
            (old.round, old.training_done, old.n_users, old.n_items),
            (3, true, 5, 9)
        );
        assert_eq!(old.queries_served, 2);
    }
}
