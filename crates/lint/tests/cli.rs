//! The `frs-lint` binary's contract: exit codes 0/1/2, JSON output, and
//! the rule listing.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn frs_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_frs-lint"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("run frs-lint")
}

#[test]
fn workspace_run_exits_zero() {
    let out = frs_lint(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violating_file_exits_one_with_json_detail() {
    let out = frs_lint(&[
        "--json",
        "crates/lint/fixtures/lossy_index_cast_violating.rs",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\":\"lossy-index-cast\""), "{stdout}");
    assert!(stdout.contains("\"unwaived\":2"), "{stdout}");
}

#[test]
fn missing_config_exits_two() {
    let out = frs_lint(&["--config", "does-not-exist.toml"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn unknown_flag_exits_two() {
    let out = frs_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_names_every_builtin_and_the_meta_rule() {
    let out = frs_lint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "map-iter-order",
        "unseeded-entropy",
        "panic-in-daemon",
        "float-reduction-order",
        "lossy-index-cast",
        "invalid-waiver",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn explain_scope_lists_every_package() {
    let out = frs_lint(&["--explain-scope"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for pkg in ["frs-serve", "frs-lint", "frs-federation"] {
        assert!(stdout.contains(pkg), "missing {pkg} in:\n{stdout}");
    }
}
