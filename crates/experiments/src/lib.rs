//! Experiment harness reproducing every table and figure of the PIECK paper.
//!
//! The stack, bottom up:
//!
//! - [`scenario`] — one grid cell: dataset × model × attack × defense ×
//!   hyper-parameters, run end to end into a [`scenario::ScenarioOutcome`].
//!   Attacks and defenses are both referenced by registry name plus a
//!   canonical params payload ([`frs_attacks::AttackSel`], e.g.
//!   `pieck-uea:scale=2`; [`frs_defense::DefenseSel`], e.g. `ours:beta=0.9`)
//!   — so out-of-crate strategies registered at runtime run through the
//!   same path as the paper's built-ins, its own attacks and defense
//!   included.
//! - [`suite`] — the declarative layer: a [`suite::Sweep`] names its axes
//!   (`Sweep::over_attacks(..).over_defenses(..).over_models(..)`), an
//!   [`suite::ExperimentSuite`] groups sweeps, expands them into a scenario
//!   grid, runs cells in parallel (bit-identical to sequential), and renders
//!   a unified [`report::Report`].
//! - [`report`] — Markdown / CSV / JSON sinks over titled table sections.
//! - [`cache`] — content-addressed suite cache: outcomes persist under a
//!   SHA-256 of the canonical scenario JSON, so overlapping or repeated
//!   grids replay instead of recomputing (`--cache-dir`, `--resume`).
//! - [`progress`] — streaming run layer: one JSONL event per finished cell
//!   (`--progress run.jsonl`), making long sweeps observable mid-flight and
//!   abortable/resumable.
//! - [`paper`] — one declaration per paper table/figure, consumed by the
//!   single `paper` CLI binary (`paper table4 --scale 0.25`, `paper all
//!   --json out/`).
//!
//! Scale control: everything accepts `--scale f` (shrinking the dataset
//! presets while preserving their long-tail shape) and `--rounds n`, so the
//! full grid runs in CI minutes, while `--scale 1.0` reproduces paper-scale
//! workloads.

pub mod cache;
pub mod cli;
pub mod paper;
pub mod presets;
pub mod progress;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod shutdown;
pub mod suite;

pub use cache::{
    scenario_key, CacheStats, DoomedFile, GcOutcome, SuiteCache, CACHE_SCHEMA_VERSION,
};
pub use cli::CommonArgs;
pub use presets::{paper_scenario, PaperDataset};
pub use progress::{CellEvent, JsonlSink, MemorySink, ProgressSink, SuiteAborted};
pub use report::{Report, ReportFormat, Table};
pub use scenario::{
    run, CheckpointCtl, Interrupted, ScenarioCheckpoint, ScenarioConfig, ScenarioOutcome,
};
pub use serve::{
    serve_scenarios, ScenarioServeSummary, ServeOptions, ServeScenarioSpec, ServeSummary,
};
pub use suite::{
    Axis, Cell, CellResult, ConfigPatch, ExecOptions, ExperimentSuite, RunOptions, SuiteResult,
    Sweep, SweepResult,
};
