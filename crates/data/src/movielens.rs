//! Loader for MovieLens-format interaction files.
//!
//! The paper evaluates on MovieLens-100K/1M and Amazon Digital Music. This
//! repository substitutes synthetic data (see DESIGN.md §3), but the loader
//! below makes the library directly usable with the *real* files when they
//! are available:
//!
//! - **ML-100K `u.data`**: tab-separated `user_id  item_id  rating  timestamp`
//! - **ML-1M `ratings.dat`**: `user_id::item_id::rating::timestamp`
//! - generic CSV with the same four columns
//!
//! Ids are remapped to dense `0..n` ranges (MovieLens ids are 1-based and
//! sparse); ratings at or above [`LoadOptions::min_rating`] count as implicit
//! positive feedback (the standard implicit-ization used by NCF \[16\] and the
//! FRS attack literature).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::dataset::Dataset;

/// Parsing options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Column separator: `'\t'` for u.data, `':'`+`':'` handled via
    /// [`Self::double_colon`], `','` for CSVs.
    pub separator: char,
    /// ML-1M uses `::` as separator; set this instead of `separator`.
    pub double_colon: bool,
    /// Minimum rating that counts as an interaction (inclusive). MovieLens
    /// ratings are 1–5; the usual implicit threshold is 1.0 (every rating
    /// counts, as in the NCF evaluation protocol).
    pub min_rating: f32,
    /// Drop users with fewer than this many interactions after thresholding
    /// (leave-one-out needs ≥ 2).
    pub min_interactions_per_user: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            separator: '\t',
            double_colon: false,
            min_rating: 1.0,
            min_interactions_per_user: 2,
        }
    }
}

impl LoadOptions {
    /// Options for ML-100K `u.data`.
    pub fn ml100k() -> Self {
        Self::default()
    }

    /// Options for ML-1M `ratings.dat`.
    pub fn ml1m() -> Self {
        Self {
            double_colon: true,
            ..Self::default()
        }
    }
}

/// Errors from the loader.
#[derive(Debug)]
pub enum LoadError {
    Io(std::io::Error),
    /// Line number (1-based) and description.
    Parse(usize, String),
    /// No interactions survived filtering.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            LoadError::Empty => write!(f, "no interactions after filtering"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Dense-id remapping produced by the loader, so callers can translate
/// model outputs back to original MovieLens ids.
#[derive(Debug, Clone, Default)]
pub struct IdMaps {
    /// `original user id → dense index`.
    /// Ordered so consumers that iterate (reports, ID dumps) see a
    /// deterministic sequence — user numbering once followed `HashMap`
    /// iteration order here and broke seeded replay (see PR 4).
    pub user_to_dense: BTreeMap<u64, usize>,
    /// `dense item index → original item id`.
    pub item_from_dense: Vec<u64>,
}

/// Loads a MovieLens-format file from disk.
pub fn load_path(path: &Path, options: &LoadOptions) -> Result<(Dataset, IdMaps), LoadError> {
    let file = File::open(path)?;
    load_reader(BufReader::new(file), options)
}

/// Loads from any reader (exercised in tests with in-memory fixtures).
pub fn load_reader<R: Read>(
    reader: R,
    options: &LoadOptions,
) -> Result<(Dataset, IdMaps), LoadError> {
    let mut user_to_dense: BTreeMap<u64, usize> = BTreeMap::new();
    let mut item_to_dense: BTreeMap<u64, usize> = BTreeMap::new();
    let mut item_from_dense: Vec<u64> = Vec::new();
    let mut per_user: Vec<Vec<u32>> = Vec::new();

    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = if options.double_colon {
            trimmed.split("::").collect()
        } else {
            trimmed.split(options.separator).collect()
        };
        if fields.len() < 3 {
            return Err(LoadError::Parse(
                line_no,
                format!("expected ≥3 fields, got {}", fields.len()),
            ));
        }
        let user: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| LoadError::Parse(line_no, format!("bad user id {:?}", fields[0])))?;
        let item: u64 = fields[1]
            .trim()
            .parse()
            .map_err(|_| LoadError::Parse(line_no, format!("bad item id {:?}", fields[1])))?;
        let rating: f32 = fields[2]
            .trim()
            .parse()
            .map_err(|_| LoadError::Parse(line_no, format!("bad rating {:?}", fields[2])))?;
        if rating < options.min_rating {
            continue;
        }
        let u = *user_to_dense.entry(user).or_insert_with(|| {
            per_user.push(Vec::new());
            per_user.len() - 1
        });
        let next_item = item_to_dense.len();
        let j = *item_to_dense.entry(item).or_insert_with(|| {
            item_from_dense.push(item);
            next_item
        });
        let j = u32::try_from(j).map_err(|_| {
            LoadError::Parse(line_no, "item catalog exceeds the u32 id space".to_string())
        })?;
        per_user[u].push(j);
    }

    // Drop users below the interaction floor. Survivors keep their dense
    // ids in *file appearance order* — iterating the id map here would make
    // the user numbering depend on HashMap iteration order, and with it
    // every downstream seeded computation (splits, targets, training).
    let keep: Vec<bool> = per_user
        .iter()
        .map(|items| {
            let mut distinct = items.clone();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.len() >= options.min_interactions_per_user
        })
        .collect();
    let mut new_index: Vec<Option<usize>> = vec![None; per_user.len()];
    let mut final_lists = Vec::new();
    for (dense, items) in per_user.iter().enumerate() {
        if keep[dense] {
            new_index[dense] = Some(final_lists.len());
            final_lists.push(items.clone());
        }
    }
    let final_user_map: BTreeMap<u64, usize> = user_to_dense
        .iter()
        .filter_map(|(orig, &dense)| new_index[dense].map(|n| (*orig, n)))
        .collect();
    if final_lists.iter().all(|l| l.is_empty()) {
        return Err(LoadError::Empty);
    }

    let dataset = Dataset::from_user_items(item_from_dense.len(), final_lists);
    Ok((
        dataset,
        IdMaps {
            user_to_dense: final_user_map,
            item_from_dense,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const U_DATA: &str = "\
196\t242\t3\t881250949
186\t302\t3\t891717742
196\t377\t1\t878887116
22\t377\t1\t878887116
244\t51\t2\t880606923
";

    #[test]
    fn parses_ml100k_format() {
        let (data, maps) = load_reader(Cursor::new(U_DATA), &LoadOptions::ml100k()).unwrap();
        // Users 196 (2 ints), 186 (1), 22 (1), 244 (1); floor=2 keeps only 196.
        assert_eq!(data.n_users(), 1);
        assert_eq!(data.n_items(), 4);
        assert_eq!(data.n_interactions(), 2);
        assert!(maps.user_to_dense.contains_key(&196));
    }

    #[test]
    fn rating_threshold_filters() {
        let opts = LoadOptions {
            min_rating: 3.0,
            min_interactions_per_user: 1,
            ..LoadOptions::ml100k()
        };
        let (data, _) = load_reader(Cursor::new(U_DATA), &opts).unwrap();
        // Only the two rating-3 lines survive.
        assert_eq!(data.n_interactions(), 2);
    }

    #[test]
    fn parses_ml1m_double_colon() {
        let input = "1::1193::5::978300760\n1::661::3::978302109\n2::1193::4::978298413\n";
        let opts = LoadOptions {
            min_interactions_per_user: 1,
            ..LoadOptions::ml1m()
        };
        let (data, maps) = load_reader(Cursor::new(input), &opts).unwrap();
        assert_eq!(data.n_users(), 2);
        assert_eq!(data.n_items(), 2);
        assert_eq!(maps.item_from_dense.len(), 2);
        // Item 1193 was seen by both users.
        let dense_1193 = maps
            .item_from_dense
            .iter()
            .position(|&i| i == 1193)
            .unwrap();
        assert_eq!(data.item_popularity()[dense_1193], 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = "# header\n\n1\t2\t5\t0\n1\t3\t5\t0\n";
        let opts = LoadOptions {
            min_interactions_per_user: 1,
            ..LoadOptions::ml100k()
        };
        let (data, _) = load_reader(Cursor::new(input), &opts).unwrap();
        assert_eq!(data.n_interactions(), 2);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let input = "1\t2\t5\t0\nnot-a-user\t2\t5\t0\n";
        let err = load_reader(Cursor::new(input), &LoadOptions::ml100k()).unwrap_err();
        match err {
            LoadError::Parse(line, msg) => {
                assert_eq!(line, 2);
                assert!(msg.contains("bad user id"), "{msg}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn short_lines_rejected() {
        let err = load_reader(Cursor::new("1\t2\n"), &LoadOptions::ml100k()).unwrap_err();
        assert!(matches!(err, LoadError::Parse(1, _)));
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = load_reader(Cursor::new(""), &LoadOptions::ml100k()).unwrap_err();
        assert!(matches!(err, LoadError::Empty));
    }

    #[test]
    fn duplicate_interactions_are_merged() {
        let input = "1\t2\t5\t0\n1\t2\t4\t1\n1\t3\t5\t0\n";
        let opts = LoadOptions {
            min_interactions_per_user: 1,
            ..LoadOptions::ml100k()
        };
        let (data, _) = load_reader(Cursor::new(input), &opts).unwrap();
        assert_eq!(data.n_interactions(), 2, "dup (1,2) merged by Dataset");
    }

    #[test]
    fn load_path_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("pieck_frs_test_u.data");
        std::fs::write(&path, U_DATA).unwrap();
        let (data, _) = load_path(&path, &LoadOptions::ml100k()).unwrap();
        assert_eq!(data.n_users(), 1);
        std::fs::remove_file(&path).ok();
    }
}
