//! PIECK's model-agnostic property: the *same* attack code drives exposure
//! on both MF-FRS (fixed dot-product) and DL-FRS (learnable NeuMF-style
//! interaction) — the property Table III demonstrates.
//!
//! Run with: `cargo run --release --example model_agnostic`

use pieck_frs::attacks::AttackKind;
use pieck_frs::experiments::{paper_scenario, run, PaperDataset};
use pieck_frs::model::ModelKind;

fn main() {
    println!(
        "{:<10} {:<12} {:>8} {:>8}",
        "model", "attack", "ER@10", "HR@10"
    );
    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        for attack in [
            AttackKind::NoAttack,
            AttackKind::PieckIpe,
            AttackKind::PieckUea,
        ] {
            let mut cfg = paper_scenario(PaperDataset::Ml100k, kind, 0.25, 7);
            cfg.attack = attack.into();
            cfg.rounds = 150;
            cfg.mined_top_n = if attack == AttackKind::PieckUea {
                30
            } else {
                10
            };
            let out = run(&cfg);
            println!(
                "{:<10} {:<12} {:>7.2}% {:>7.2}%",
                kind.label(),
                attack.label(),
                out.er_percent,
                out.hr_percent
            );
        }
    }
}
