//! Paper-faithful scenario presets with scale-aware adjustments.
//!
//! The paper's protocol parameters are tied to dataset size (256 users
//! sampled per round on ML-100K/ML-1M, 1024 on AZ for MF). When a dataset is
//! scaled down for CI, the round batch must scale with it, otherwise every
//! client participates every round and both attack and defense dynamics
//! change character. This module centralizes those couplings so every
//! experiment binary builds identical baselines.

use frs_data::DatasetSpec;
use frs_model::ModelKind;
use serde::{Deserialize, Serialize};

use crate::scenario::ScenarioConfig;

/// Which paper dataset a scenario models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    Ml100k,
    Ml1m,
    Az,
}

impl PaperDataset {
    /// All paper datasets, in Table VIII order.
    pub fn all() -> [PaperDataset; 3] {
        [Self::Ml100k, Self::Ml1m, Self::Az]
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Ml100k => "ml100k",
            Self::Ml1m => "ml1m",
            Self::Az => "az",
        }
    }

    /// Parses the CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ml100k" => Some(Self::Ml100k),
            "ml1m" => Some(Self::Ml1m),
            "az" => Some(Self::Az),
            _ => None,
        }
    }

    /// The unscaled generator spec.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Self::Ml100k => DatasetSpec::ml100k_like(),
            Self::Ml1m => DatasetSpec::ml1m_like(),
            Self::Az => DatasetSpec::az_like(),
        }
    }

    /// Users sampled per round at full scale (paper Section VII-A2):
    /// 256 everywhere except 1024 for AZ under MF.
    pub fn users_per_round(&self, kind: ModelKind) -> usize {
        match (self, kind) {
            (Self::Az, ModelKind::Mf) => 1024,
            _ => 256,
        }
    }
}

/// Builds the paper-faithful baseline scenario for (dataset, model) at the
/// given scale: the dataset shrinks shape-preservingly and the per-round user
/// batch shrinks proportionally (floored so rounds stay meaningful).
pub fn paper_scenario(
    dataset: PaperDataset,
    kind: ModelKind,
    scale: f64,
    seed: u64,
) -> ScenarioConfig {
    let spec = if scale < 1.0 {
        dataset.spec().scaled(scale)
    } else {
        dataset.spec()
    };
    let mut cfg = ScenarioConfig::baseline(spec, kind, seed);
    let full_batch = dataset.users_per_round(kind);
    cfg.federation.users_per_round = if scale < 1.0 {
        (((full_batch as f64) * scale).round() as usize).max(16)
    } else {
        full_batch
    };
    // Benign per-example gradients carry a 1/|D_i| factor, so shrinking the
    // dataset by `scale` strengthens them by 1/scale relative to poison;
    // compensate to keep the attack/defense balance scale-invariant.
    cfg.poison_scale = (1.0 / scale) as f32;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names() {
        assert_eq!(
            PaperDataset::from_name("ml100k"),
            Some(PaperDataset::Ml100k)
        );
        assert_eq!(PaperDataset::from_name("ml1m"), Some(PaperDataset::Ml1m));
        assert_eq!(PaperDataset::from_name("az"), Some(PaperDataset::Az));
        assert_eq!(PaperDataset::from_name("x"), None);
    }

    #[test]
    fn az_mf_uses_large_batch() {
        assert_eq!(PaperDataset::Az.users_per_round(ModelKind::Mf), 1024);
        assert_eq!(PaperDataset::Az.users_per_round(ModelKind::Ncf), 256);
        assert_eq!(PaperDataset::Ml100k.users_per_round(ModelKind::Mf), 256);
    }

    #[test]
    fn batch_scales_with_dataset() {
        let full = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 1.0, 0);
        let quarter = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.25, 0);
        assert_eq!(full.federation.users_per_round, 256);
        assert_eq!(quarter.federation.users_per_round, 64);
        assert!(quarter.dataset.n_users < full.dataset.n_users);
    }

    #[test]
    fn batch_floor_respected() {
        let tiny = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.01, 0);
        assert!(tiny.federation.users_per_round >= 16);
    }
}
