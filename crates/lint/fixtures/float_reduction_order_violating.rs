//! Violating fixture: unordered / unannotated float reductions.

pub fn mean(xs: &[f32]) -> f32 {
    let total: f32 = xs.iter().sum();
    total / 2.0
}

pub fn dot(xs: &[f32], ys: &[f32]) -> f32 {
    xs.iter().zip(ys).map(|(x, y)| x * y).sum::<f32>()
}

pub fn total(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |acc, x| acc + x)
}
