//! Attack catalogue: the paper's Table III rows as a convenience enum.
//!
//! [`AttackKind`] enumerates the attacks evaluated in the paper. Since the
//! registry redesign it is a *thin wrapper over registry lookups*
//! (see [`crate::registry`]): the enum implements [`AttackFactory`] with the
//! actual construction logic, registers itself as the builtin entries, and
//! its legacy [`AttackKind::build_clients`] method resolves through the
//! registry — so overriding a builtin by name affects enum callers too, and
//! new attacks need no enum edits at all.

use frs_federation::Client;
use pieck_core::{PieckClient, PieckConfig};
use serde::{Deserialize, Serialize};

use crate::fedrecattack::FedRecAttack;
use crate::interaction::{AHumClient, ARaClient};
use crate::pipattack::PipAttack;
use crate::registry::{AttackBuildCtx, AttackFactory, AttackSel};
use crate::scaled::ScaledClient;

/// Norm cap applied to scaled gradient-style poison uploads.
const POISON_NORM_CAP: f32 = 2.0;

/// Every attack evaluated in the paper, in Table III row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// No malicious clients at all.
    NoAttack,
    /// FedRecAttack \[32\] (prior knowledge masked).
    FedRecA,
    /// PipAttack \[42\] (prior knowledge masked).
    Pipa,
    /// A-RA \[31\].
    ARa,
    /// A-HUM \[31\].
    AHum,
    /// PIECK-IPE (ours).
    PieckIpe,
    /// PIECK-UEA (ours).
    PieckUea,
}

impl AttackKind {
    /// All attacks, in the paper's table order.
    pub fn all() -> [AttackKind; 7] {
        [
            AttackKind::NoAttack,
            AttackKind::FedRecA,
            AttackKind::Pipa,
            AttackKind::ARa,
            AttackKind::AHum,
            AttackKind::PieckIpe,
            AttackKind::PieckUea,
        ]
    }

    /// Stable registry name (kebab-case).
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::NoAttack => "none",
            AttackKind::FedRecA => "fedrecattack",
            AttackKind::Pipa => "pipattack",
            AttackKind::ARa => "a-ra",
            AttackKind::AHum => "a-hum",
            AttackKind::PieckIpe => "pieck-ipe",
            AttackKind::PieckUea => "pieck-uea",
        }
    }

    /// Parses a registry name back into the enum.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|k| k.name() == name)
    }

    /// Row label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::NoAttack => "NoAttack",
            AttackKind::FedRecA => "FedRecA",
            AttackKind::Pipa => "PipA",
            AttackKind::ARa => "A-ra",
            AttackKind::AHum => "A-hum",
            AttackKind::PieckIpe => "PIECK-IPE",
            AttackKind::PieckUea => "PIECK-UEA",
        }
    }

    /// Legacy entry point, kept for backwards compatibility: builds `count`
    /// malicious clients with ids `first_id..first_id+count`, all promoting
    /// `targets` with uploads scaled by `poison_scale`. Resolves through the
    /// registry, so a factory re-registered under this kind's name takes
    /// effect here too.
    pub fn build_clients(
        &self,
        first_id: usize,
        count: usize,
        targets: &[u32],
        mined_top_n: usize,
        poison_scale: f32,
        seed: u64,
    ) -> Vec<Box<dyn Client>> {
        AttackSel::from(*self).build_clients(&AttackBuildCtx {
            first_id,
            count,
            targets,
            mined_top_n,
            poison_scale,
            seed,
        })
    }
}

/// The builtin construction logic (the old closed-enum dispatch, now one
/// factory implementation among equals).
impl AttackFactory for AttackKind {
    fn name(&self) -> &str {
        AttackKind::name(self)
    }

    fn label(&self) -> &str {
        AttackKind::label(self)
    }

    fn build_clients(&self, ctx: &AttackBuildCtx<'_>) -> Vec<Box<dyn Client>> {
        if *self == AttackKind::NoAttack {
            return Vec::new();
        }
        let targets = ctx.targets.to_vec();
        (0..ctx.count)
            .map(|i| {
                let id = ctx.first_id + i;
                // One attacker controls every sybil (Section III-B), so the
                // synthetic users / classifiers are shared across malicious
                // clients: poison directions add up instead of cancelling.
                let client_seed = ctx.seed ^ 0xA77AC;
                let client: Box<dyn Client> = match self {
                    AttackKind::NoAttack => unreachable!("returned above"),
                    AttackKind::FedRecA => Box::new(FedRecAttack::new(
                        id,
                        targets.clone(),
                        32,
                        None,
                        client_seed,
                    )),
                    AttackKind::Pipa => {
                        Box::new(PipAttack::new(id, targets.clone(), 32, None, client_seed))
                    }
                    AttackKind::ARa => {
                        Box::new(ARaClient::new(id, targets.clone(), 32, client_seed))
                    }
                    AttackKind::AHum => {
                        Box::new(AHumClient::new(id, targets.clone(), 32, 10, client_seed))
                    }
                    AttackKind::PieckIpe => {
                        let mut cfg = PieckConfig::ipe(targets.clone());
                        cfg.top_n = ctx.mined_top_n;
                        Box::new(PieckClient::new(id, cfg))
                    }
                    AttackKind::PieckUea => {
                        let mut cfg = PieckConfig::uea(targets.clone());
                        cfg.top_n = ctx.mined_top_n;
                        Box::new(PieckClient::new(id, cfg))
                    }
                };
                // UEA's poison is an absolute displacement toward the locally
                // optimized embedding — scaling it overshoots the optimum and
                // destabilizes the attack rather than strengthening it. All
                // gradient-style attacks scale, with a norm cap to prevent
                // runaway feedback (see ScaledClient::with_cap).
                let scalable = !matches!(self, AttackKind::PieckUea);
                if scalable && (ctx.poison_scale - 1.0).abs() > f32::EPSILON {
                    Box::new(ScaledClient::new(client, ctx.poison_scale).with_cap(POISON_NORM_CAP))
                        as Box<dyn Client>
                } else {
                    client
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_attack_builds_nothing() {
        let clients = AttackKind::NoAttack.build_clients(10, 5, &[1], 10, 1.0, 0);
        assert!(clients.is_empty());
    }

    #[test]
    fn other_attacks_build_count_clients_with_dense_ids() {
        for kind in AttackKind::all().into_iter().skip(1) {
            let clients = kind.build_clients(100, 3, &[1, 2], 10, 2.0, 0);
            assert_eq!(clients.len(), 3, "{kind:?}");
            let ids: Vec<usize> = clients.iter().map(|c| c.id()).collect();
            assert_eq!(ids, vec![100, 101, 102], "{kind:?}");
            assert!(clients.iter().all(|c| c.is_malicious()), "{kind:?}");
        }
    }

    #[test]
    fn labels_and_names_are_unique() {
        let labels: std::collections::HashSet<&str> =
            AttackKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 7);
        let names: std::collections::HashSet<&str> =
            AttackKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn names_round_trip() {
        for kind in AttackKind::all() {
            assert_eq!(AttackKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AttackKind::from_name("nope"), None);
    }
}
