//! Clean fixture: every random draw flows from an explicit seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub fn sample_users(seed: u64) -> u32 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.gen_range(0..10)
}
