//! A shared core budget: one owner for the machine's parallelism.
//!
//! Two layers of this workspace want threads at once: an experiment suite
//! fans grid cells out over workers, and each cell's [`Simulation`] can fan
//! its per-round client computation out too. Freezing both widths up front
//! wastes cores — when a warm cache leaves only two cells to execute on an
//! eight-core machine, each cell should get four cores, and when one of the
//! two finishes, the survivor should grow to eight *mid-run*.
//!
//! [`CoreBudget`] models that: it owns a total core count and hands out
//! [`CoreLease`]s, one per concurrently executing workload. A lease's
//! [`width`](CoreLease::width) is the holder's current fair share,
//! `max(1, total / active_leases)`, recomputed on every call — so a
//! long-lived holder that polls the width each round (as
//! [`Simulation::run_round`] does) automatically picks up cores released by
//! finished siblings. Dropping the lease returns the share.
//!
//! The budget only *advises* widths; it never spawns threads itself. Holders
//! remain free to use fewer cores than granted (e.g. when a round has fewer
//! participants than the lease width), and results must never depend on the
//! width — parallelism is an execution detail, not a semantic one.
//!
//! [`Simulation`]: crate::Simulation
//! [`Simulation::run_round`]: crate::Simulation::run_round

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared pool of cores, leased out fairly to concurrent workloads.
///
/// Cheap to clone (all clones share one ledger) and safe to consult from any
/// thread.
#[derive(Debug, Clone)]
pub struct CoreBudget {
    inner: Arc<Ledger>,
}

#[derive(Debug)]
struct Ledger {
    total: usize,
    active: AtomicUsize,
}

impl CoreBudget {
    /// A budget owning `total` cores (clamped to at least one).
    pub fn new(total: usize) -> Self {
        Self {
            inner: Arc::new(Ledger {
                total: total.max(1),
                active: AtomicUsize::new(0),
            }),
        }
    }

    /// A budget owning the machine's available parallelism.
    pub fn machine() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(cores)
    }

    /// Total cores this budget owns.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Currently outstanding leases.
    pub fn active_leases(&self) -> usize {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Takes out a lease. The lease's width is recomputed on every
    /// [`CoreLease::width`] call, so it tracks the live lease population;
    /// dropping the lease returns the share to the pool.
    pub fn lease(&self) -> CoreLease {
        self.inner.active.fetch_add(1, Ordering::SeqCst);
        CoreLease {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// One workload's claim on a [`CoreBudget`]. Held for the workload's
/// lifetime; consult [`width`](Self::width) whenever spawning fan-out.
#[derive(Debug)]
pub struct CoreLease {
    inner: Arc<Ledger>,
}

impl CoreLease {
    /// The holder's current fair share of the budget:
    /// `max(1, total / active_leases)`. Grows as sibling leases drop,
    /// shrinks (down to 1) when the budget is oversubscribed.
    pub fn width(&self) -> usize {
        let active = self.inner.active.load(Ordering::SeqCst).max(1);
        (self.inner.total / active).max(1)
    }
}

impl Drop for CoreLease {
    fn drop(&mut self) {
        self.inner.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_width_is_the_fair_share() {
        let budget = CoreBudget::new(8);
        assert_eq!(budget.total(), 8);
        assert_eq!(budget.active_leases(), 0);

        let a = budget.lease();
        assert_eq!(a.width(), 8, "sole lease owns the machine");
        let b = budget.lease();
        assert_eq!((a.width(), b.width()), (4, 4));
        let c = budget.lease();
        assert_eq!(c.width(), 2, "8 / 3 floors to 2");
        assert_eq!(budget.active_leases(), 3);

        drop(b);
        drop(c);
        assert_eq!(a.width(), 8, "survivor grows mid-flight");
        assert_eq!(budget.active_leases(), 1);
    }

    #[test]
    fn oversubscription_floors_at_one() {
        let budget = CoreBudget::new(2);
        let leases: Vec<CoreLease> = (0..5).map(|_| budget.lease()).collect();
        assert!(leases.iter().all(|l| l.width() == 1));
        assert_eq!(budget.active_leases(), 5);
    }

    #[test]
    fn zero_total_clamps_to_one() {
        let budget = CoreBudget::new(0);
        assert_eq!(budget.total(), 1);
        assert_eq!(budget.lease().width(), 1);
    }

    #[test]
    fn clones_share_one_ledger() {
        let budget = CoreBudget::new(4);
        let twin = budget.clone();
        let a = budget.lease();
        let _b = twin.lease();
        assert_eq!(a.width(), 2);
        assert_eq!(budget.active_leases(), 2);
        assert_eq!(twin.active_leases(), 2);
    }

    #[test]
    fn machine_budget_is_positive() {
        assert!(CoreBudget::machine().total() >= 1);
    }

    #[test]
    fn leases_are_thread_safe() {
        let budget = CoreBudget::new(16);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let lease = budget.lease();
                        assert!(lease.width() >= 1);
                        assert!(lease.width() <= 16);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(budget.active_leases(), 0, "all leases returned");
    }
}
