//! Ablation benches for the design decisions DESIGN.md calls out:
//! the IPE similarity metric (PCOS vs PKL), rank weighting on/off, and the
//! UEA inner-optimization depth (single-step vs the paper's batched steps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frs_model::{GlobalModel, ModelConfig};
use pieck_core::{ipe, uea, IpeConfig, SimilarityMetric, UeaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ipe_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let model = GlobalModel::new(&ModelConfig::mf(16), 2000, &mut rng);
    let popular: Vec<u32> = (0..10).collect();
    let popular_embs: Vec<&[f32]> = popular.iter().map(|&j| model.item_embedding(j)).collect();
    let target = model.item_embedding(1999).to_vec();

    let mut group = c.benchmark_group("ipe_ablation");
    for (label, cfg) in [
        ("pcos_full", IpeConfig::default()),
        (
            "pcos_unweighted",
            IpeConfig {
                use_rank_weights: false,
                ..IpeConfig::default()
            },
        ),
        (
            "pcos_unpartitioned",
            IpeConfig {
                use_sign_partition: false,
                ..IpeConfig::default()
            },
        ),
        (
            "pkl",
            IpeConfig {
                metric: SimilarityMetric::Kl,
                ..IpeConfig::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| criterion::black_box(ipe::ipe_gradient(cfg, &popular_embs, &target)));
        });
    }
    group.finish();
}

fn uea_depth(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(22);
    let model = GlobalModel::new(&ModelConfig::mf(16), 2000, &mut rng);
    let popular: Vec<u32> = (0..50).collect();

    let mut group = c.benchmark_group("uea_ablation");
    for steps in [1usize, 3, 10] {
        let cfg = UeaConfig {
            local_steps: steps,
            ..UeaConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("local_steps", steps), &cfg, |b, cfg| {
            b.iter(|| {
                criterion::black_box(uea::uea_poison_gradient(cfg, &model, &popular, 1999, 1.0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ipe_variants, uea_depth);
criterion_main!(benches);
