//! A minimal Rust lexer for the lint pass.
//!
//! The rule engine works on token streams, never raw text, so a mention of
//! `thread_rng` inside a string literal, a doc comment, or a raw string
//! must not trip a rule. This lexer exists to make that distinction — it
//! understands exactly as much Rust surface syntax as is needed to
//! classify every byte of the workspace into comments, string/char
//! literals, numbers, identifiers, and punctuation, with line/column
//! positions for reporting:
//!
//! - `//` line comments (incl. doc comments) and *nested* `/* */` block
//!   comments;
//! - `"…"` strings with escapes, byte strings `b"…"`, and raw strings
//!   `r"…"` / `r#"…"#` / `br##"…"##` with any hash depth;
//! - char literals (`'a'`, `'\n'`, `'\u{1F600}'`) vs lifetimes (`'a`,
//!   `'_`), raw identifiers (`r#type`);
//! - numbers including floats, exponents, radix prefixes, and type
//!   suffixes;
//! - `::` folded into a single punctuation token (the only multi-char
//!   operator the rules match on).
//!
//! It is *not* a parser: it never builds a syntax tree, and it does not
//! validate the source. Invalid Rust lexes into *something* rather than
//! erroring, which is the right behaviour for a linter that runs before
//! the compiler gets a say.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `unwrap`, `r#type`, …).
    Ident,
    /// Numeric literal, including suffix (`1`, `0x7f`, `1.5e-9f64`).
    Number,
    /// String-like literal: `"…"`, `b"…"`, and raw forms. Content skipped.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// `// …` to end of line (incl. `///` and `//!`). Text kept for
    /// waiver parsing.
    LineComment,
    /// `/* … */`, nesting honoured. Text kept for waiver parsing.
    BlockComment,
    /// Any other single character, except `::` which is one token.
    Punct,
}

/// One token with its position (1-based line and column of its first
/// character).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this text (`"."`, `"::"`, …)?
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    /// Is this a comment of either flavour?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenizes `source`. Never fails: unterminated literals or comments
/// simply extend to end of input.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Tok>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => {
                    let text = self.string_body();
                    self.push(TokKind::Str, text, line, col);
                }
                'b' if matches!(self.peek(1), Some('"')) => {
                    self.bump();
                    let text = self.string_body();
                    self.push(TokKind::Str, format!("b{text}"), line, col);
                }
                'b' if matches!(self.peek(1), Some('\'')) => {
                    self.bump();
                    let text = self.char_body();
                    self.push(TokKind::Char, format!("b{text}"), line, col);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_follows(2) => {
                    self.bump();
                    self.bump();
                    let text = self.raw_string_body();
                    self.push(TokKind::Str, format!("br{text}"), line, col);
                }
                'r' if self.raw_string_follows(1) => {
                    self.bump();
                    let text = self.raw_string_body();
                    self.push(TokKind::Str, format!("r{text}"), line, col);
                }
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier r#type: token text is the bare name so
                    // rules match it like any other identifier.
                    self.bump();
                    self.bump();
                    let name = self.ident_body();
                    self.push(TokKind::Ident, name, line, col);
                }
                '\'' => self.lifetime_or_char(line, col),
                c if c.is_ascii_digit() => {
                    let text = self.number_body();
                    self.push(TokKind::Number, text, line, col);
                }
                c if is_ident_start(Some(c)) => {
                    let name = self.ident_body();
                    self.push(TokKind::Ident, name, line, col);
                }
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::".into(), line, col);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize, col: usize) {
        self.out.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line, col);
    }

    /// Consumes a `"…"` string starting at the opening quote; returns the
    /// raw text including quotes.
    fn string_body(&mut self) -> String {
        let mut text = String::new();
        text.push('"');
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// Does `r`/`br` at the current position start a raw string? True when
    /// the chars at `ahead` are zero or more `#` followed by `"`.
    fn raw_string_follows(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    /// Consumes `#*"…"#*` (hashes balanced); cursor sits on the first `#`
    /// or `"`. Returns the consumed text.
    fn raw_string_body(&mut self) -> String {
        let mut text = String::new();
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closes = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                if closes {
                    text.push('"');
                    self.bump();
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    break;
                }
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// Consumes a char literal starting at `'`; returns text with quotes.
    fn char_body(&mut self) -> String {
        let mut text = String::new();
        text.push('\'');
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '\'' {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// `'` is ambiguous: `'a'` is a char, `'a` is a lifetime. A backslash
    /// right after the quote forces char; otherwise it is a char exactly
    /// when the character after the next one closes the quote.
    fn lifetime_or_char(&mut self, line: usize, col: usize) {
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if is_char {
            let text = self.char_body();
            self.push(TokKind::Char, text, line, col);
        } else {
            let mut text = String::from("'");
            self.bump();
            while is_ident_continue(self.peek(0)) {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            self.push(TokKind::Lifetime, text, line, col);
        }
    }

    fn ident_body(&mut self) -> String {
        let mut name = String::new();
        while is_ident_continue(self.peek(0)) {
            if let Some(c) = self.bump() {
                name.push(c);
            }
        }
        name
    }

    /// Number: digits, radix/alnum body, `.` only when a digit follows
    /// (so `0..n` and `1.max(2)` stop at the dot), exponent signs only
    /// right after `e`/`E`.
    fn number_body(&mut self) -> String {
        let mut text = String::new();
        let mut prev = '\0';
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) && prev != '.')
                || ((c == '+' || c == '-') && matches!(prev, 'e' | 'E'));
            if !take {
                break;
            }
            text.push(c);
            prev = c;
            self.bump();
        }
        text
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = 42 + y_2;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Number, "42".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Ident, "y_2".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents_from_ident_matching() {
        let toks = lex(r#"let s = "thread_rng() /* not a comment */";"#);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        assert!(!toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(!toks.iter().any(|t| t.is_comment()));
    }

    #[test]
    fn raw_strings_with_hash_depths() {
        let toks = kinds(r##"let s = r#"a "quoted" thing"#; x"##);
        assert_eq!(toks[3].0, TokKind::Str);
        assert_eq!(toks[3].1, r##"r#"a "quoted" thing"#"##);
        assert_eq!(toks.last().map(|t| t.1.as_str()), Some("x"));

        let toks = kinds(r##"r"plain" b"bytes" br#"raw bytes"# y"##);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::Str);
        assert_eq!(toks[3].1, "y");
    }

    #[test]
    fn comments_nested_and_line() {
        let toks = lex("a /* outer /* inner */ still */ b // tail\nc");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(
            toks.iter().filter(|t| t.is_comment()).count(),
            2,
            "one block, one line comment"
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_stop_at_ranges_and_method_calls() {
        let toks = kinds("0..n 1.max(2) 1.5e-9f64 0x7f_u8");
        assert_eq!(toks[0], (TokKind::Number, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert!(toks.iter().any(|t| t.1 == "max"));
        assert!(toks.iter().any(|t| t.1 == "1.5e-9f64"));
        assert!(toks.iter().any(|t| t.1 == "0x7f_u8"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = kinds("SystemTime::now()");
        assert_eq!(toks[1], (TokKind::Punct, "::".into()));
        assert_eq!(toks[2], (TokKind::Ident, "now".into()));
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let toks = kinds("r#type r#match");
        assert_eq!(toks[0], (TokKind::Ident, "type".into()));
        assert_eq!(toks[1], (TokKind::Ident, "match".into()));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_extend_to_eof_without_panicking() {
        assert!(!lex("let s = \"never closed").is_empty());
        assert!(!lex("/* never closed").is_empty());
        assert!(!lex("r#\"never closed").is_empty());
    }
}
