//! The self-lint gate: the committed `lint.toml` over the real workspace
//! must come back clean — every remaining hit carries a reasoned waiver.

use std::path::{Path, PathBuf};

use frs_lint::{builtin_rule_ids, lint_workspace, scope_listing, LintConfig};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn committed_config() -> LintConfig {
    let path = repo_root().join("lint.toml");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    LintConfig::parse(&text, &builtin_rule_ids()).expect("committed lint.toml is valid")
}

#[test]
fn workspace_is_clean_under_the_committed_config() {
    let report = lint_workspace(&repo_root(), &committed_config()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "unwaived violations — fix them or add a reasoned waiver:\n{}",
        report.human(false)
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously small scan ({} files) — discovery is broken",
        report.files_scanned
    );
    assert!(
        report.waived > 0,
        "the audit trail should record the reasoned waivers"
    );
}

#[test]
fn committed_config_scopes_every_rule_somewhere() {
    let scopes = scope_listing(&repo_root(), &committed_config()).expect("scope listing");
    assert!(scopes.contains_key("frs-lint"), "{scopes:?}");
    for rule in builtin_rule_ids() {
        assert!(
            scopes.values().any(|rules| rules.iter().any(|r| r == rule)),
            "rule {rule} is scoped to no package at all — dead config"
        );
    }
    // The serving crates are exactly where panic-in-daemon patrols.
    let serve = &scopes["frs-serve"];
    assert!(
        serve.iter().any(|r| r == "panic-in-daemon"),
        "frs-serve must keep its no-panic contract: {serve:?}"
    );
}
