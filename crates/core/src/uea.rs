//! PIECK-UEA: user-embedding approximation (Eq. 10).
//!
//! The exposure surrogate of Eq. (4) needs benign-user embeddings, which are
//! private. Property 3 (symmetric model ⇒ popular-item embeddings distribute
//! like user embeddings) licenses the substitution:
//!
//! `L_UEA = −(1/(N·|T|)) Σ_{v_k∈P} Σ_{v_j∈T} log Ψ(v_k, v_j)`
//!
//! where each mined popular embedding `v_k` stands in for a user and is
//! treated as a *constant* (excluded from backpropagation). The poisonous
//! gradient for a target is the gradient of this loss w.r.t. the target's
//! embedding — through the dot product (MF) or through the frozen MLP (DL).
//!
//! The paper's cost analysis notes UEA runs "multiple rounds in batches
//! (default batch size 5 and round size 3)": [`UeaConfig::local_steps`] and
//! [`UeaConfig::batch_size`] reproduce that inner optimization, uploading
//! `(v_before − v_after)/η` so the server's `−η·g` update lands the item on
//! the locally optimized embedding.

use frs_linalg::{sigmoid, vector};
use frs_model::GlobalModel;
use serde::{Deserialize, Serialize};

/// PIECK-UEA hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UeaConfig {
    /// Inner optimization steps per round ("round size" in the paper; 3).
    pub local_steps: usize,
    /// Popular items per inner step ("batch size"; 5). Steps cycle through
    /// the mined set in rank order.
    pub batch_size: usize,
    /// Learning rate of the inner optimization.
    pub local_lr: f32,
}

impl Default for UeaConfig {
    fn default() -> Self {
        Self {
            local_steps: 3,
            batch_size: 5,
            local_lr: 1.0,
        }
    }
}

/// `L_UEA` evaluated for one target (diagnostics / tests): mean
/// `−log σ(Ψ(v_k, v_j))` over the popular set.
pub fn uea_loss(model: &GlobalModel, popular: &[u32], target_emb: &[f32]) -> f32 {
    if popular.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0f32;
    for &k in popular {
        let pseudo_user = model.item_embedding(k);
        let logit = logit_with_target(model, pseudo_user, target_emb);
        sum += -frs_linalg::log_sigmoid(logit);
    }
    sum / popular.len() as f32
}

/// Gradient of `L_UEA` w.r.t. the target embedding, using `batch` popular
/// pseudo-users. `∂(−logσ(s))/∂s = σ(s) − 1`, chained through the model's
/// item-side gradient with all other parameters constant.
pub fn uea_gradient(model: &GlobalModel, batch: &[u32], target_emb: &[f32]) -> Vec<f32> {
    let mut grad = vec![0.0f32; target_emb.len()];
    if batch.is_empty() {
        return grad;
    }
    let scale = 1.0 / batch.len() as f32;
    for &k in batch {
        let pseudo_user = model.item_embedding(k);
        let logit = logit_with_target(model, pseudo_user, target_emb);
        let delta = (sigmoid(logit) - 1.0) * scale;
        let g = item_grad_with_target(model, pseudo_user, target_emb);
        vector::axpy(delta, &g, &mut grad);
    }
    grad
}

/// Runs the inner optimization: starting from the target's current embedding,
/// takes `local_steps` descent steps on `L_UEA` (cycling rank-ordered batches
/// of popular pseudo-users) and returns the poisonous gradient
/// `(v_before − v_after) / η`.
pub fn uea_poison_gradient(
    config: &UeaConfig,
    model: &GlobalModel,
    popular: &[u32],
    target: u32,
    server_lr: f32,
) -> Vec<f32> {
    let before = model.item_embedding(target).to_vec();
    let mut current = before.clone();
    if popular.is_empty() {
        return vec![0.0; current.len()];
    }
    let bs = config.batch_size.max(1).min(popular.len());
    for step in 0..config.local_steps.max(1) {
        let start = (step * bs) % popular.len();
        let batch: Vec<u32> = (0..bs)
            .map(|i| popular[(start + i) % popular.len()])
            .collect();
        let g = uea_gradient(model, &batch, &current);
        vector::axpy(-config.local_lr, &g, &mut current);
    }
    let mut poison = vector::sub(&before, &current);
    vector::scale(&mut poison, 1.0 / server_lr);
    poison
}

/// Interaction logit where the item side uses an explicit embedding (the
/// attacker's working copy) instead of the model's stored row.
fn logit_with_target(model: &GlobalModel, pseudo_user: &[f32], target_emb: &[f32]) -> f32 {
    match model {
        GlobalModel::Mf(_) => vector::dot(pseudo_user, target_emb),
        GlobalModel::Ncf(m) => m.logit_with_embeddings(pseudo_user, target_emb),
    }
}

/// `∂logit/∂(target embedding)` with the pseudo-user and MLP frozen.
fn item_grad_with_target(model: &GlobalModel, pseudo_user: &[f32], target_emb: &[f32]) -> Vec<f32> {
    match model {
        GlobalModel::Mf(_) => pseudo_user.to_vec(),
        GlobalModel::Ncf(m) => m.item_grad_with_embeddings(pseudo_user, target_emb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_model::{GlobalModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models() -> Vec<GlobalModel> {
        let mut rng = StdRng::seed_from_u64(77);
        vec![
            GlobalModel::new(&ModelConfig::mf(6), 12, &mut rng),
            GlobalModel::new(&ModelConfig::ncf(6), 12, &mut rng),
        ]
    }

    #[test]
    fn gradient_matches_finite_difference_both_models() {
        for model in models() {
            let popular = [0u32, 1, 2];
            let target_emb: Vec<f32> = (0..6).map(|i| 0.05 * i as f32 - 0.1).collect();
            let g = uea_gradient(&model, &popular, &target_emb);
            let eps = 1e-2;
            let mut fd = vec![0.0f32; 6];
            for (i, slot) in fd.iter_mut().enumerate() {
                let mut tp = target_emb.clone();
                tp[i] += eps;
                let mut tm = target_emb.clone();
                tm[i] -= eps;
                *slot = (uea_loss(&model, &popular, &tp) - uea_loss(&model, &popular, &tm))
                    / (2.0 * eps);
            }
            match model {
                // MF is smooth: coordinates must agree pointwise.
                GlobalModel::Mf(_) => {
                    for i in 0..6 {
                        assert!(
                            (g[i] - fd[i]).abs() < 2e-2,
                            "coord {i}: {} vs {}",
                            g[i],
                            fd[i]
                        );
                    }
                }
                // The NCF hidden units are piecewise-linear; central
                // differences straddling a kink deviate from the one-sided
                // analytic gradient at isolated coordinates (see the model
                // crate's gradient properties). Directional agreement over
                // the whole vector is the robust property.
                GlobalModel::Ncf(_) => {
                    let cos = frs_linalg::cosine(&g, &fd);
                    assert!(cos > 0.95, "cos(analytic, fd) = {cos}");
                    let (gn, fn_) = (vector::l2_norm(&g), vector::l2_norm(&fd));
                    assert!(
                        (gn - fn_).abs() / fn_.max(gn).max(1e-6) < 0.25,
                        "norms {gn} vs {fn_}"
                    );
                }
            }
        }
    }

    #[test]
    fn descending_raises_pseudo_user_scores() {
        for model in models() {
            let popular = [0u32, 1, 2, 3];
            let mut emb = model.item_embedding(11).to_vec();
            let before = uea_loss(&model, &popular, &emb);
            for _ in 0..100 {
                let g = uea_gradient(&model, &popular, &emb);
                vector::axpy(-0.2, &g, &mut emb);
            }
            let after = uea_loss(&model, &popular, &emb);
            assert!(after < before, "{:?}: {before} -> {after}", model.kind());
        }
    }

    #[test]
    fn poison_gradient_moves_target_toward_optimum() {
        for mut model in models() {
            let popular = [0u32, 1, 2, 3, 4];
            let cfg = UeaConfig {
                local_steps: 5,
                batch_size: 3,
                local_lr: 0.5,
            };
            let before_loss = uea_loss(&model, &popular, model.item_embedding(9));
            let poison = uea_poison_gradient(&cfg, &model, &popular, 9, 1.0);
            // Server applies v ← v − η·poison: reconstructs the optimized copy.
            let mut g = frs_model::GlobalGradients::new();
            g.add_item_grad(9, &poison);
            model.apply_gradients(&g, 1.0);
            let after_loss = uea_loss(&model, &popular, model.item_embedding(9));
            assert!(
                after_loss < before_loss,
                "{:?}: {before_loss} -> {after_loss}",
                model.kind()
            );
        }
    }

    #[test]
    fn poison_scales_inversely_with_server_lr() {
        let model = &models()[0];
        let popular = [0u32, 1];
        let cfg = UeaConfig::default();
        let p1 = uea_poison_gradient(&cfg, model, &popular, 5, 1.0);
        let p2 = uea_poison_gradient(&cfg, model, &popular, 5, 0.5);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((b - 2.0 * a).abs() < 1e-5, "η=0.5 doubles the gradient");
        }
    }

    #[test]
    fn empty_popular_set_is_inert() {
        let model = &models()[0];
        assert_eq!(uea_loss(model, &[], &[0.0; 6]), 0.0);
        assert_eq!(uea_gradient(model, &[], &[0.0; 6]), vec![0.0; 6]);
        let cfg = UeaConfig::default();
        assert_eq!(uea_poison_gradient(&cfg, model, &[], 0, 1.0), vec![0.0; 6]);
    }

    #[test]
    fn batches_cycle_through_popular_set() {
        // With batch_size 2 and 3 populars, steps must wrap around; just
        // verify it runs and produces a finite gradient.
        let model = &models()[0];
        let cfg = UeaConfig {
            local_steps: 4,
            batch_size: 2,
            local_lr: 0.3,
        };
        let poison = uea_poison_gradient(&cfg, model, &[0, 1, 2], 7, 1.0);
        assert!(poison.iter().all(|v| v.is_finite()));
        assert!(vector::l2_norm(&poison) > 0.0);
    }
}
