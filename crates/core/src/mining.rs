//! Algorithm 1: popular-item mining from Δ-Norm accumulation.
//!
//! The miner exploits the paper's Properties 1–2: popular items receive more
//! loss terms per round (long-tail interaction counts), so their embeddings
//! keep changing — by larger amounts, for longer — than unpopular items'.
//! A client that is sampled `R̃+1` times therefore accumulates
//! `Σ_r ‖v_j^{r} − v_j^{r-1}‖₂` per item across *its own receptions* of the
//! global model (it observes nothing between them) and takes the top-`N`.
//!
//! The same machinery serves both sides: malicious clients mine `P` to build
//! poison, and the defense's benign clients mine `P_i` to know what to
//! regularize.

use frs_linalg::Matrix;
use frs_model::GlobalModel;
use serde::{Deserialize, Serialize, Value};

/// Incremental Δ-Norm miner (Algorithm 1).
#[derive(Debug, Clone)]
pub struct PopularItemMiner {
    /// `R̃`: transitions to accumulate before the popular set is frozen.
    mining_rounds: usize,
    /// `N`: size of the mined set.
    top_n: usize,
    previous: Option<Matrix>,
    accumulated: Vec<f32>,
    transitions_seen: usize,
    mined: Option<Vec<u32>>,
}

impl PopularItemMiner {
    /// Miner that accumulates over `mining_rounds` (`R̃`, paper default 2)
    /// transitions and outputs the `top_n` (`N`) items.
    pub fn new(mining_rounds: usize, top_n: usize) -> Self {
        assert!(mining_rounds >= 1, "R̃ must be ≥ 1");
        assert!(top_n >= 1, "N must be ≥ 1");
        Self {
            mining_rounds,
            top_n,
            previous: None,
            accumulated: Vec::new(),
            transitions_seen: 0,
            mined: None,
        }
    }

    /// Feeds one observation of the global model (the client has just been
    /// sampled and received it). Returns `true` once mining is complete.
    pub fn observe(&mut self, model: &GlobalModel) -> bool {
        if self.mined.is_some() {
            return true;
        }
        let items = model.items();
        if self.accumulated.is_empty() {
            self.accumulated = vec![0.0; items.rows()];
        }
        if let Some(prev) = &self.previous {
            for j in 0..items.rows() {
                self.accumulated[j] += frs_linalg::l2_distance(items.row(j), prev.row(j));
            }
            self.transitions_seen += 1;
        }
        self.previous = Some(items.clone());
        if self.transitions_seen >= self.mining_rounds {
            let top = frs_linalg::top_k_desc(&self.accumulated, self.top_n);
            // lint:allow(lossy-index-cast): top_k_desc indices are below the u32-keyed catalog size
            self.mined = Some(top.into_iter().map(|i| i as u32).collect());
            // The snapshot is no longer needed; drop the memory.
            self.previous = None;
        }
        self.mined.is_some()
    }

    /// The mined popular set `P`, in descending accumulated-Δ-Norm order
    /// (rank 0 = "most popular" by the miner's estimate). `None` until
    /// [`Self::observe`] has seen `R̃+1` models.
    pub fn mined(&self) -> Option<&[u32]> {
        self.mined.as_deref()
    }

    /// True once the popular set is frozen.
    pub fn is_complete(&self) -> bool {
        self.mined.is_some()
    }

    /// Accumulated Δ-Norm per item (diagnostics / Fig. 4 reproduction).
    pub fn accumulated(&self) -> &[f32] {
        &self.accumulated
    }

    /// How many transitions have been accumulated so far.
    pub fn transitions_seen(&self) -> usize {
        self.transitions_seen
    }

    /// Configured `N`.
    pub fn top_n(&self) -> usize {
        self.top_n
    }

    /// Serializes the miner's mutable progress (the last model snapshot,
    /// accumulated Δ-Norms, and the frozen set once mined) for mid-scenario
    /// checkpointing. The configuration (`R̃`, `N`) is rebuilt from the
    /// scenario, not persisted.
    pub fn checkpoint_state(&self) -> Value {
        MinerState {
            previous: self.previous.clone(),
            accumulated: self.accumulated.clone(),
            transitions_seen: self.transitions_seen,
            mined: self.mined.clone(),
        }
        .to_value()
    }

    /// Overlays progress captured by [`Self::checkpoint_state`] onto a
    /// freshly configured miner.
    pub fn restore_state(&mut self, state: &Value) -> Result<(), String> {
        let state = MinerState::from_value(state).map_err(|e| e.to_string())?;
        self.previous = state.previous;
        self.accumulated = state.accumulated;
        self.transitions_seen = state.transitions_seen;
        self.mined = state.mined;
        Ok(())
    }
}

/// Serialized mutable state of a [`PopularItemMiner`].
#[derive(Serialize, Deserialize)]
struct MinerState {
    previous: Option<Matrix>,
    accumulated: Vec<f32>,
    transitions_seen: usize,
    mined: Option<Vec<u32>>,
}

/// Precision of a mined set against ground-truth popularity: the fraction of
/// mined items that are within the true top-`reference_top` popularity ranks.
/// This is the quantitative version of the paper's Fig. 4 claim.
pub fn mining_precision(
    mined: &[u32],
    true_popularity_rank: &[usize],
    reference_top: usize,
) -> f64 {
    if mined.is_empty() {
        return 0.0;
    }
    let hits = mined
        .iter()
        .filter(|&&j| true_popularity_rank[j as usize] < reference_top)
        .count();
    hits as f64 / mined.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_model::{GlobalGradients, GlobalModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_with_items(n: usize) -> GlobalModel {
        GlobalModel::new(&ModelConfig::mf(4), n, &mut StdRng::seed_from_u64(1))
    }

    /// Moves item `j` by `step` in every coordinate.
    fn shift_item(model: &mut GlobalModel, j: u32, step: f32) {
        let mut g = GlobalGradients::new();
        g.add_item_grad(j, &vec![-step; model.dim()]);
        model.apply_gradients(&g, 1.0);
    }

    #[test]
    fn needs_r_plus_one_observations() {
        let mut miner = PopularItemMiner::new(2, 3);
        let mut model = model_with_items(10);
        assert!(!miner.observe(&model)); // baseline
        shift_item(&mut model, 0, 0.5);
        assert!(!miner.observe(&model)); // 1st transition
        shift_item(&mut model, 0, 0.5);
        assert!(miner.observe(&model)); // 2nd transition → complete
        assert!(miner.is_complete());
        assert_eq!(miner.transitions_seen(), 2);
    }

    #[test]
    fn mines_items_that_move_most() {
        let mut miner = PopularItemMiner::new(2, 2);
        let mut model = model_with_items(10);
        miner.observe(&model);
        for _ in 0..2 {
            shift_item(&mut model, 7, 1.0);
            shift_item(&mut model, 3, 0.6);
            shift_item(&mut model, 5, 0.01);
            miner.observe(&model);
        }
        assert_eq!(miner.mined().unwrap(), &[7, 3]);
    }

    #[test]
    fn frozen_after_completion() {
        let mut miner = PopularItemMiner::new(1, 1);
        let mut model = model_with_items(5);
        miner.observe(&model);
        shift_item(&mut model, 2, 1.0);
        miner.observe(&model);
        let mined = miner.mined().unwrap().to_vec();
        // Later, a different item moves a lot — the frozen set must not change.
        shift_item(&mut model, 4, 100.0);
        miner.observe(&model);
        assert_eq!(miner.mined().unwrap(), mined.as_slice());
    }

    #[test]
    fn observes_only_what_client_receives() {
        // Two miners sampled at different cadences accumulate different
        // Δ-Norms — the miner never sees rounds it wasn't sampled in.
        let mut every_round = PopularItemMiner::new(2, 1);
        let mut sparse = PopularItemMiner::new(1, 1);
        let mut model = model_with_items(4);
        every_round.observe(&model);
        sparse.observe(&model);
        shift_item(&mut model, 1, 1.0);
        every_round.observe(&model); // sees intermediate state
        shift_item(&mut model, 1, 1.0);
        every_round.observe(&model);
        sparse.observe(&model); // sees only endpoints (one 2.0 jump)
        assert!(every_round.is_complete() && sparse.is_complete());
        assert_eq!(every_round.mined().unwrap(), &[1]);
        assert_eq!(sparse.mined().unwrap(), &[1]);
    }

    #[test]
    fn precision_counts_true_populars() {
        // Items 0,1 are truly popular (ranks 0,1); mined = [0, 5].
        let rank = vec![0usize, 1, 4, 3, 2, 5];
        assert!((mining_precision(&[0, 5], &rank, 2) - 0.5).abs() < 1e-12);
        assert_eq!(mining_precision(&[], &rank, 2), 0.0);
        assert!((mining_precision(&[0, 1], &rank, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "R̃ must be ≥ 1")]
    fn zero_mining_rounds_rejected() {
        PopularItemMiner::new(0, 5);
    }

    #[test]
    fn checkpoint_roundtrip_mid_mining_continues_identically() {
        let mut reference = PopularItemMiner::new(2, 2);
        let mut model = model_with_items(8);
        reference.observe(&model);
        shift_item(&mut model, 6, 1.0);
        reference.observe(&model); // 1 of 2 transitions: mid-mining state

        // Snapshot, restore onto a freshly configured miner.
        let state = reference.checkpoint_state();
        let mut restored = PopularItemMiner::new(2, 2);
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.transitions_seen(), 1);
        assert!(!restored.is_complete());

        // Both continue with the same observation and freeze the same set.
        shift_item(&mut model, 6, 1.0);
        shift_item(&mut model, 2, 0.4);
        assert!(reference.observe(&model));
        assert!(restored.observe(&model));
        assert_eq!(reference.mined(), restored.mined());
        assert_eq!(reference.accumulated(), restored.accumulated());
    }

    #[test]
    fn checkpoint_roundtrip_after_completion_keeps_frozen_set() {
        let mut miner = PopularItemMiner::new(1, 1);
        let mut model = model_with_items(5);
        miner.observe(&model);
        shift_item(&mut model, 3, 1.0);
        miner.observe(&model);
        let state = miner.checkpoint_state();
        let mut restored = PopularItemMiner::new(1, 1);
        restored.restore_state(&state).unwrap();
        assert!(restored.is_complete());
        assert_eq!(restored.mined(), miner.mined());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut miner = PopularItemMiner::new(1, 1);
        assert!(miner.restore_state(&Value::Bool(true)).is_err());
    }
}
