//! Fixture: real violations, each silenced by a reasoned waiver — the
//! report should show them as waived and the run as clean.

pub fn item_id(index: usize) -> u32 {
    index as u32 // lint:allow(lossy-index-cast): fixture ids are catalog-bounded below u32::MAX
}

pub fn total(xs: &[f32]) -> f32 {
    // lint:allow(float-reduction-order): sequential fold in slice order, byte-stable by construction
    let total = xs.iter().sum::<f32>();
    total
}
