//! Popular-item mining accuracy inside a *real* federation, and the defense's
//! regularizer behaviour over full training runs.

use pieck_frs::experiments::scenario::{build_simulation, build_world};
use pieck_frs::experiments::{paper_scenario, PaperDataset};
use pieck_frs::model::ModelKind;
use pieck_frs::pieck::mining::{mining_precision, PopularItemMiner};
use std::sync::Arc;

/// Algorithm 1's claim: after observing R̃+1 = 3 models, the mined top-N
/// consists (almost) entirely of genuinely popular items.
#[test]
fn mining_identifies_true_populars_across_seeds() {
    for seed in [1u64, 2, 3] {
        let cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.12, seed);
        let (_, split, _) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let rank = train.popularity_rank_of();
        let n_top15 = (train.n_items() as f64 * 0.15).ceil() as usize;
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);

        let mut miner = PopularItemMiner::new(2, 10);
        miner.observe(sim.model());
        while !miner.is_complete() {
            sim.run_round();
            miner.observe(sim.model());
        }
        let precision = mining_precision(miner.mined().unwrap(), &rank, n_top15);
        assert!(precision >= 0.8, "seed {seed}: precision {precision}");
    }
}

/// Mining still works when the miner only sees every k-th round (sparse
/// sampling of the malicious client).
#[test]
fn mining_tolerates_sparse_sampling() {
    let cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.12, 4);
    let (_, split, _) = build_world(&cfg);
    let train = Arc::new(split.train.clone());
    let rank = train.popularity_rank_of();
    let n_top15 = (train.n_items() as f64 * 0.15).ceil() as usize;
    let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);

    let mut miner = PopularItemMiner::new(2, 10);
    miner.observe(sim.model());
    while !miner.is_complete() {
        sim.run(4); // sampled once every 4 rounds
        miner.observe(sim.model());
    }
    let precision = mining_precision(miner.mined().unwrap(), &rank, n_top15);
    assert!(precision >= 0.7, "sparse sampling precision {precision}");
}

/// The DL-FRS miner agrees with the MF-FRS miner's picks to a reasonable
/// degree — the property is model-agnostic (both are driven by the long
/// tail, not by model internals).
#[test]
fn mining_is_model_agnostic() {
    let mut results: Vec<f64> = Vec::new();
    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        let cfg = paper_scenario(PaperDataset::Ml100k, kind, 0.12, 5);
        let (_, split, _) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let rank = train.popularity_rank_of();
        let n_top15 = (train.n_items() as f64 * 0.15).ceil() as usize;
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);
        let mut miner = PopularItemMiner::new(2, 10);
        miner.observe(sim.model());
        while !miner.is_complete() {
            sim.run_round();
            miner.observe(sim.model());
        }
        results.push(mining_precision(miner.mined().unwrap(), &rank, n_top15));
    }
    assert!(results.iter().all(|&p| p >= 0.7), "precisions {results:?}");
}
