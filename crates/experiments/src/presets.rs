//! Paper-faithful scenario presets with scale-aware adjustments.
//!
//! The paper's protocol parameters are tied to dataset size (256 users
//! sampled per round on ML-100K/ML-1M, 1024 on AZ for MF). When a dataset is
//! scaled down for CI, the round batch must scale with it, otherwise every
//! client participates every round and both attack and defense dynamics
//! change character. This module centralizes those couplings so every
//! experiment binary builds identical baselines.
//!
//! Besides the three synthetic presets, [`PaperDataset::File`] points a
//! scenario at a *real* MovieLens dump (`u.data` / `ratings.dat`) loaded
//! through `frs_data::movielens` — `--dataset file:PATH` in the CLI. File
//! datasets run as-is: `--scale` shrinks neither the file nor the round
//! batch, and no poison-scale compensation applies.

use frs_data::DatasetSpec;
use frs_federation::ClientsPerRound;
use frs_model::ModelKind;
use serde::{Deserialize, Serialize};

use crate::scenario::ScenarioConfig;

/// Which dataset a scenario models: one of the paper's three synthetic
/// presets, or a real MovieLens-format file on disk.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    Ml100k,
    Ml1m,
    Az,
    /// A real MovieLens-format dump (`file:PATH` in the CLI). The file's
    /// SHA-256 joins the suite cache key, so cached cells can never go
    /// stale when the dump changes (see `crate::cache::scenario_key`).
    File(String),
}

impl PaperDataset {
    /// The synthetic paper datasets, in Table VIII order.
    pub fn all() -> [PaperDataset; 3] {
        [Self::Ml100k, Self::Ml1m, Self::Az]
    }

    /// The CLI name (`ml100k`, `ml1m`, `az`, or `file:PATH`).
    pub fn name(&self) -> String {
        match self {
            Self::Ml100k => "ml100k".into(),
            Self::Ml1m => "ml1m".into(),
            Self::Az => "az".into(),
            Self::File(path) => format!("file:{path}"),
        }
    }

    /// Parses the CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ml100k" => Some(Self::Ml100k),
            "ml1m" => Some(Self::Ml1m),
            "az" => Some(Self::Az),
            _ => name
                .strip_prefix("file:")
                .filter(|path| !path.is_empty())
                .map(|path| Self::File(path.to_string())),
        }
    }

    /// The unscaled generator (or loader) spec.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Self::Ml100k => DatasetSpec::ml100k_like(),
            Self::Ml1m => DatasetSpec::ml1m_like(),
            Self::Az => DatasetSpec::az_like(),
            Self::File(path) => DatasetSpec::from_file(path.clone()),
        }
    }

    /// Clients sampled per round at full scale (paper Section VII-A2):
    /// 256 everywhere except 1024 for AZ under MF. File datasets follow the
    /// MovieLens protocol (256).
    pub fn clients_per_round(&self, kind: ModelKind) -> usize {
        match (self, kind) {
            (Self::Az, ModelKind::Mf) => 1024,
            _ => 256,
        }
    }

    /// True for file-backed datasets (which ignore `--scale`).
    pub fn is_file(&self) -> bool {
        matches!(self, Self::File(_))
    }
}

/// Builds the paper-faithful baseline scenario for (dataset, model) at the
/// given scale: the dataset shrinks shape-preservingly and the per-round user
/// batch shrinks proportionally (floored so rounds stay meaningful). File
/// datasets are used verbatim — no shrinking, no poison-scale compensation.
pub fn paper_scenario(
    dataset: PaperDataset,
    kind: ModelKind,
    scale: f64,
    seed: u64,
) -> ScenarioConfig {
    let shrink = scale < 1.0 && !dataset.is_file();
    let spec = if shrink {
        dataset.spec().scaled(scale)
    } else {
        dataset.spec()
    };
    let mut cfg = ScenarioConfig::baseline(spec, kind, seed);
    let full_batch = dataset.clients_per_round(kind);
    cfg.federation.clients_per_round = ClientsPerRound::Count(if shrink {
        (((full_batch as f64) * scale).round() as usize).max(16)
    } else {
        full_batch
    });
    // Benign per-example gradients carry a 1/|D_i| factor, so shrinking the
    // dataset by `scale` strengthens them by 1/scale relative to poison;
    // compensate to keep the attack/defense balance scale-invariant. Real
    // files never shrink, so they need no compensation.
    cfg.poison_scale = if shrink { (1.0 / scale) as f32 } else { 1.0 };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names() {
        assert_eq!(
            PaperDataset::from_name("ml100k"),
            Some(PaperDataset::Ml100k)
        );
        assert_eq!(PaperDataset::from_name("ml1m"), Some(PaperDataset::Ml1m));
        assert_eq!(PaperDataset::from_name("az"), Some(PaperDataset::Az));
        assert_eq!(PaperDataset::from_name("x"), None);
        assert_eq!(
            PaperDataset::from_name("file:data/u.data"),
            Some(PaperDataset::File("data/u.data".into()))
        );
        assert_eq!(PaperDataset::from_name("file:"), None);
    }

    #[test]
    fn names_round_trip() {
        for d in PaperDataset::all() {
            assert_eq!(PaperDataset::from_name(&d.name()), Some(d));
        }
        let f = PaperDataset::File("/tmp/u.data".into());
        assert_eq!(PaperDataset::from_name(&f.name()), Some(f));
    }

    #[test]
    fn az_mf_uses_large_batch() {
        assert_eq!(PaperDataset::Az.clients_per_round(ModelKind::Mf), 1024);
        assert_eq!(PaperDataset::Az.clients_per_round(ModelKind::Ncf), 256);
        assert_eq!(PaperDataset::Ml100k.clients_per_round(ModelKind::Mf), 256);
    }

    #[test]
    fn batch_scales_with_dataset() {
        let full = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 1.0, 0);
        let quarter = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.25, 0);
        assert_eq!(
            full.federation.clients_per_round,
            ClientsPerRound::Count(256)
        );
        assert_eq!(
            quarter.federation.clients_per_round,
            ClientsPerRound::Count(64)
        );
        assert!(quarter.dataset.n_users < full.dataset.n_users);
    }

    #[test]
    fn batch_floor_respected() {
        let tiny = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.01, 0);
        assert_eq!(
            tiny.federation.clients_per_round,
            ClientsPerRound::Count(16)
        );
    }

    #[test]
    fn file_datasets_ignore_scale() {
        let dataset = PaperDataset::File("/tmp/whatever_u.data".into());
        let cfg = paper_scenario(dataset.clone(), ModelKind::Mf, 0.1, 0);
        assert_eq!(
            cfg.federation.clients_per_round,
            ClientsPerRound::Count(256)
        );
        assert_eq!(cfg.poison_scale, 1.0);
        assert_eq!(
            cfg.dataset.file_path(),
            Some("/tmp/whatever_u.data"),
            "spec carries the file source"
        );
        assert_eq!(cfg.dataset.name, "file:/tmp/whatever_u.data");
    }
}
