//! Unified result rendering for the experiment harness.
//!
//! [`Table`] is the column-aligned data holder every experiment fills;
//! [`Report`] groups titled table sections (one per sweep or figure panel)
//! and renders the whole thing as GitHub-flavoured Markdown, RFC-4180-style
//! CSV, or JSON — the three sinks the `paper` CLI exposes via `--csv` /
//! `--json`.

use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Creates a table from owned column headers.
    pub fn from_header(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row; panics if the width differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal + formatted cells.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as a GitHub-flavoured Markdown table. Literal `|` in cells
    /// (e.g. the `|T|=3` variant labels) is escaped so GFM keeps the
    /// column structure.
    pub fn to_markdown(&self) -> String {
        let escape = |cells: &[String]| -> Vec<String> {
            cells.iter().map(|c| c.replace('|', "\\|")).collect()
        };
        let header = escape(&self.header);
        let rows: Vec<Vec<String>> = self.rows.iter().map(|r| escape(r)).collect();
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&Self::render_row(&header, &widths));
        let dashes: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&Self::render_row(&dashes, &widths));
        for row in &rows {
            out.push_str(&Self::render_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (header first; fields quoted when they contain
    /// separators, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&Self::render_csv_row(&self.header));
        for row in &self.rows {
            out.push_str(&Self::render_csv_row(row));
        }
        out
    }

    /// Renders as a JSON array of `{header: cell}` objects.
    pub fn to_json_rows(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    let mut obj = Map::new();
                    for (key, cell) in self.header.iter().zip(row) {
                        obj.insert(key.clone(), Value::String(cell.clone()));
                    }
                    Value::Object(obj)
                })
                .collect(),
        )
    }

    fn render_csv_row(cells: &[String]) -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                line.push('"');
                line.push_str(&cell.replace('"', "\"\""));
                line.push('"');
            } else {
                line.push_str(cell);
            }
        }
        line.push('\n');
        line
    }

    fn render_row(cells: &[String], widths: &[usize]) -> String {
        let mut line = String::from("|");
        for (cell, &w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    }
}

/// Formats a percentage the way the paper's tables do (two decimals).
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Output format of a [`Report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    Markdown,
    Csv,
    Json,
}

impl ReportFormat {
    /// File extension used by [`Report::write_to`].
    pub fn extension(&self) -> &'static str {
        match self {
            ReportFormat::Markdown => "md",
            ReportFormat::Csv => "csv",
            ReportFormat::Json => "json",
        }
    }
}

/// One titled table within a report (one sweep, one figure panel).
#[derive(Debug, Clone)]
pub struct Section {
    pub heading: String,
    pub table: Table,
    pub notes: Vec<String>,
}

/// A complete experiment report: titled sections rendered through one sink.
#[derive(Debug, Clone)]
pub struct Report {
    /// File-name stem for [`Report::write_to`] (e.g. `table4`).
    pub slug: String,
    /// Human title (e.g. `Table IV — defenses`).
    pub title: String,
    pub sections: Vec<Section>,
}

impl Report {
    pub fn new(slug: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            slug: slug.into(),
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a section and returns it for note attachment.
    pub fn section(&mut self, heading: impl Into<String>, table: Table) -> &mut Section {
        self.sections.push(Section {
            heading: heading.into(),
            table,
            notes: Vec::new(),
        });
        self.sections.last_mut().expect("just pushed")
    }

    /// Renders in the requested format.
    pub fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Markdown => self.to_markdown(),
            ReportFormat::Csv => self.to_csv(),
            ReportFormat::Json => {
                let mut text = serde_json::to_string_pretty(&self.to_json()).expect("report JSON");
                text.push('\n');
                text
            }
        }
    }

    /// Markdown: `##` title, `###` section headings, aligned tables, notes.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n", self.title);
        for section in &self.sections {
            out.push_str(&format!("\n### {}\n\n", section.heading));
            out.push_str(&section.table.to_markdown());
            for note in &section.notes {
                out.push_str(&format!("\n{note}\n"));
            }
        }
        out
    }

    /// CSV: one block per section, prefixed by a `# heading` comment line
    /// (single-section reports are directly machine-readable; multi-section
    /// ones split on blank lines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("# {}\n", section.heading));
            out.push_str(&section.table.to_csv());
        }
        out
    }

    /// JSON: `{slug, title, sections: [{heading, columns, rows, notes}]}`.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let sections: Vec<Value> = self
            .sections
            .iter()
            .map(|s| {
                let mut obj = Map::new();
                obj.insert("heading".into(), Value::String(s.heading.clone()));
                obj.insert(
                    "columns".into(),
                    Value::Array(
                        s.table
                            .header()
                            .iter()
                            .map(|h| Value::String(h.clone()))
                            .collect(),
                    ),
                );
                obj.insert("rows".into(), s.table.to_json_rows());
                obj.insert(
                    "notes".into(),
                    Value::Array(s.notes.iter().map(|n| Value::String(n.clone())).collect()),
                );
                Value::Object(obj)
            })
            .collect();
        let mut root = Map::new();
        root.insert("slug".into(), Value::String(self.slug.clone()));
        root.insert("title".into(), Value::String(self.title.clone()));
        root.insert("sections".into(), Value::Array(sections));
        Value::Object(root)
    }

    /// Writes `<dir>/<slug>.<ext>`, creating `dir` when missing, and returns
    /// the path.
    pub fn write_to(&self, dir: &Path, format: ReportFormat) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.{}", self.slug, format.extension()));
        std::fs::write(&path, self.render(format))?;
        Ok(path)
    }
}

impl Section {
    /// Attaches a free-form note below the section's table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["Attack", "ER@10"]);
        t.row_strs(&["NoAttack", "0.23"]);
        t.row_strs(&["PIECK-UEA", "93.39"]);
        t
    }

    #[test]
    fn renders_aligned_markdown() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Attack"));
        assert!(lines[1].starts_with("|-") || lines[1].contains("---"));
        assert!(lines[3].contains("PIECK-UEA"));
        // All lines share the same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row_strs(&["only-one"]);
    }

    #[test]
    fn pct_formats_two_decimals() {
        assert_eq!(pct(93.392), "93.39");
        assert_eq!(pct(0.0), "0.00");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_strs(&["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["plain", "1,5"]);
        t.row_strs(&["with \"quote\"", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,\"1,5\"");
        assert_eq!(lines[2], "\"with \"\"quote\"\"\",x");
    }

    #[test]
    fn json_rows_key_by_header() {
        let json = sample().to_json_rows();
        let rows = json.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_object().unwrap();
        assert_eq!(first.get("Attack").unwrap().as_str(), Some("NoAttack"));
        assert_eq!(first.get("ER@10").unwrap().as_str(), Some("0.23"));
    }

    #[test]
    fn report_renders_all_formats() {
        let mut report = Report::new("demo", "Demo report");
        report.section("Panel A", sample()).note("a note");
        report.section("Panel B", sample());

        let md = report.render(ReportFormat::Markdown);
        assert!(md.starts_with("## Demo report"));
        assert!(md.contains("### Panel A") && md.contains("### Panel B"));
        assert!(md.contains("a note"));

        let csv = report.render(ReportFormat::Csv);
        assert!(csv.starts_with("# Panel A\nAttack,ER@10\n"));
        assert!(csv.contains("\n# Panel B\n"));

        let json = report.render(ReportFormat::Json);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("slug").unwrap().as_str(), Some("demo"));
        assert_eq!(obj.get("sections").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn report_writes_files() {
        let dir = std::env::temp_dir().join("frs-report-sink-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut report = Report::new("t", "T");
        report.section("S", sample());
        for format in [
            ReportFormat::Markdown,
            ReportFormat::Csv,
            ReportFormat::Json,
        ] {
            let path = report.write_to(&dir, format).unwrap();
            assert!(path.ends_with(format!("t.{}", format.extension())));
            assert!(std::fs::read_to_string(&path).unwrap().len() > 10);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
