//! Section V-A, executable: *why* server-side filtering cannot stop PIECK.
//!
//! For each item we compute p_j (Eq. 12–13: the probability a benign user's
//! round dataset contains it) and Ẽ(v_j) (Eq. 11: the expected fraction of
//! poisonous gradients among the item's uploads). A majority-seeking defense
//! needs Ẽ < 0.5 — true for popular items, false for the cold items
//! attackers actually target.
//!
//! Run with: `cargo run --release --example defense_analysis`

use pieck_frs::data::{synth, DatasetSpec};
use pieck_frs::pieck::analysis::{required_p_j, DefenseFeasibility};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = DatasetSpec::ml100k_like().scaled(0.25);
    let data = synth::generate(&spec, &mut StdRng::seed_from_u64(7));
    let p_tilde = 0.05;
    println!(
        "dataset: {} users × {} items; malicious ratio p̃ = {:.0}%",
        data.n_users(),
        data.n_items(),
        p_tilde * 100.0
    );
    println!(
        "majority defenses need p_j > p̃/(1−p̃) = {:.4}\n",
        required_p_j(p_tilde)
    );

    let ranking = data.popularity_ranking();
    let probes = [
        ("most popular", ranking[0]),
        ("median item", ranking[ranking.len() / 2]),
        ("coldest (attack target)", *ranking.last().unwrap()),
    ];
    println!(
        "{:<26} {:>8} {:>10} {:>22}",
        "item", "p_j", "Ẽ(v_j)", "majority defense works?"
    );
    for (label, item) in probes {
        let v = DefenseFeasibility::evaluate(&data, 1, p_tilde, item);
        println!(
            "{:<26} {:>8.4} {:>10.4} {:>22}",
            label,
            v.p_j,
            v.expected_poison_fraction,
            if v.majority_defense_feasible {
                "yes"
            } else {
                "NO — poison majority"
            }
        );
    }
    // The effect is starkest on sparse catalogues (AZ-like: rate 10 over
    // ~12k items) — exactly the regime the paper's Eq. 11 argument targets.
    let az = DatasetSpec::az_like().scaled(0.25);
    let az_data = synth::generate(&az, &mut StdRng::seed_from_u64(7));
    let cold = *az_data.popularity_ranking().last().unwrap();
    let v = DefenseFeasibility::evaluate(&az_data, 1, p_tilde, cold);
    println!(
        "\naz-like (sparse, {} items): cold-target p_j = {:.5}, Ẽ(v_j) = {:.3} → {}",
        az_data.n_items(),
        v.p_j,
        v.expected_poison_fraction,
        if v.majority_defense_feasible {
            "defensible"
        } else {
            "POISON IS THE MAJORITY — no filter can help"
        }
    );
    println!(
        "\nConclusion (paper Eq. 11): the colder the target and the sparser the\n\
         data, the larger the poisonous share of its gradients — filtering\n\
         can't find a benign majority that isn't there. Hence the paper's\n\
         client-side Re1/Re2 defense."
    );
}
