//! The long-lived query daemon: Unix-socket and TCP listeners answering the
//! wire protocol against a multi-scenario [`Router`].
//!
//! Concurrency model: a **fixed worker pool** sized by a [`CoreLease`] from
//! the invocation's shared `CoreBudget` — the same ledger the trainer
//! leases from — so query handling and training split the `--threads` grant
//! fairly instead of oversubscribing the machine. Each worker multiplexes
//! any number of non-blocking connections (accepting from the shared
//! listener as clients arrive), so a worker pool smaller than the
//! connection count still serves everyone: pipelined requests on one
//! connection are answered in order while other connections make progress.
//!
//! The read path is bounded: request lines longer than
//! [`ServerConfig::max_line`] earn a protocol error and the connection
//! resynchronizes at the next newline instead of growing its buffer
//! without limit; a connection idle past [`ServerConfig::idle_timeout`] is
//! closed, and a client that stops draining responses is disconnected once
//! a write stalls past [`ServerConfig::write_timeout`] — a stalled client
//! can never pin a worker.
//!
//! Shutdown is drain-based: [`ServerHandle::shutdown`] raises the stop
//! flag; every worker answers the complete request lines already buffered
//! on its connections and exits — no query is ever cut off mid-response.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use frs_federation::CoreLease;

use crate::router::Router;
use crate::wire::{ErrorResponse, Request, StatusResponse, TopKResponse, DEFAULT_K};

/// Tuning knobs for a daemon listener. [`Default`] is the production shape;
/// tests shrink the timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; `None` sizes the pool to the lease's width at spawn.
    pub workers: Option<usize>,
    /// Longest accepted request line (bytes, newline excluded).
    pub max_line: usize,
    /// Close a connection that has been silent this long.
    pub idle_timeout: Duration,
    /// Disconnect a client whose response write stalls this long.
    pub write_timeout: Duration,
    /// Worker sleep between sweeps when every connection is quiet.
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: None,
            max_line: crate::wire::MAX_LINE_BYTES,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            poll: Duration::from_millis(1),
        }
    }
}

/// Answers one request line against `router`, returning the JSON response
/// line (no trailing newline). Counts answered top-K queries into the
/// router's per-scenario and daemon-wide counters. Pure aside from the
/// counters — the unit under test for protocol behaviour.
pub fn respond_line(line: &str, router: &Router) -> String {
    fn error(error: String) -> String {
        serialize_response(&ErrorResponse { error })
    }
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => return error(format!("bad request: {e}")),
    };
    let handle = match router.resolve(request.scenario.as_deref()) {
        Ok(handle) => handle,
        Err(e) => return error(e),
    };
    let snapshot = handle.latest();
    match request.user {
        None => serialize_response(&StatusResponse {
            round: snapshot.round(),
            training_done: snapshot.training_done(),
            n_users: snapshot.n_users(),
            n_items: snapshot.n_items(),
            queries_served: router.queries_served(),
            scenarios: router.scenarios().iter().map(|h| h.status()).collect(),
        }),
        Some(user) => {
            let k = request.k.unwrap_or(DEFAULT_K);
            match snapshot.top_k(user, k) {
                Ok(items) => {
                    router.count_query(handle);
                    serialize_response(&TopKResponse {
                        user,
                        k,
                        round: snapshot.round(),
                        training_done: snapshot.training_done(),
                        items,
                        scenario: handle.name().to_string(),
                    })
                }
                Err(e) => error(e),
            }
        }
    }
}

/// Response serialization can only fail on a malformed float or a broken
/// derive — neither is worth a worker thread. The fallback is a hand-built
/// constant error line, so the answer path is infallible and the client
/// still gets valid JSON and keeps its connection.
fn serialize_response<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|_| r#"{"error":"internal: response serialization failed"}"#.to_string())
}

/// A listening endpoint, transport-erased.
#[derive(Debug)]
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// An accepted connection, transport-erased.
#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn configure(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(true),
            Stream::Tcp(s) => {
                // Pipelined line-sized responses must not wait on Nagle.
                s.set_nodelay(true)?;
                s.set_nonblocking(true)
            }
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

fn is_would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Longest a single pump may keep reading one connection before yielding to
/// its siblings (chunks of 4 KiB — a bound on per-sweep monopoly, not on
/// request size).
const READS_PER_PUMP: usize = 64;

/// One multiplexed connection's state.
struct Conn {
    stream: Stream,
    /// Bytes received but not yet framed into a complete line.
    buf: Vec<u8>,
    /// An oversized line was rejected; bytes are dropped until its newline.
    discarding: bool,
    last_activity: Instant,
}

/// What one pump of a connection observed.
enum Pump {
    /// Bytes moved (or the peer closed after a final answered batch).
    Progress,
    /// Nothing to do.
    Idle,
    /// Connection finished or failed; drop it.
    Closed,
}

impl Conn {
    fn new(stream: Stream) -> io::Result<Self> {
        stream.configure()?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            discarding: false,
            last_activity: Instant::now(),
        })
    }

    /// Writes `bytes` fully, sleeping through `WouldBlock` up to the write
    /// timeout — a client that stops draining responses is an error, not a
    /// pinned worker.
    fn write_all(&mut self, bytes: &[u8], cfg: &ServerConfig) -> io::Result<()> {
        let deadline = Instant::now() + cfg.write_timeout;
        let mut written = 0;
        while written < bytes.len() {
            // lint:allow(panic-in-daemon): the loop guard keeps `written` <= len, so the range slice cannot panic
            match self.stream.write(&bytes[written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => written += n,
                Err(e) if is_would_block(&e) => {
                    if Instant::now() >= deadline {
                        return Err(io::ErrorKind::TimedOut.into());
                    }
                    std::thread::sleep(cfg.poll);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Answers every complete line currently buffered (responses batched
    /// into one write). An `Err` means the connection is beyond saving.
    fn answer_buffered(&mut self, router: &Router, cfg: &ServerConfig) -> io::Result<()> {
        let mut out = Vec::new();
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            if self.discarding {
                // The tail of a line already rejected as oversized: the
                // error went out when the bound tripped; just resync.
                self.discarding = false;
                continue;
            }
            // lint:allow(panic-in-daemon): `drain(..=pos)` guarantees the line is non-empty and newline-terminated
            let line = String::from_utf8_lossy(&line[..line.len() - 1]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let response = if line.len() > cfg.max_line {
                oversize_error(cfg.max_line)
            } else {
                respond_line(line, router)
            };
            out.extend_from_slice(response.as_bytes());
            out.push(b'\n');
        }
        // Unterminated remainder past the bound: reject now (the newline
        // may never come), then discard until it does.
        if !self.discarding && self.buf.len() > cfg.max_line {
            self.buf.clear();
            self.discarding = true;
            out.extend_from_slice(oversize_error(cfg.max_line).as_bytes());
            out.push(b'\n');
        }
        if !out.is_empty() {
            self.write_all(&out, cfg)?;
        }
        Ok(())
    }

    /// One service sweep: ingest available bytes, answer complete lines.
    fn pump(&mut self, router: &Router, cfg: &ServerConfig, chunk: &mut [u8]) -> Pump {
        let mut moved = false;
        for _ in 0..READS_PER_PUMP {
            match self.stream.read(chunk) {
                Ok(0) => {
                    // EOF: answer what the peer already sent, then close.
                    let _ = self.answer_buffered(router, cfg);
                    return Pump::Closed;
                }
                Ok(n) => {
                    moved = true;
                    self.last_activity = Instant::now();
                    // lint:allow(panic-in-daemon): `read` returns n <= chunk.len() by contract
                    self.ingest(&chunk[..n]);
                    if self.answer_buffered(router, cfg).is_err() {
                        return Pump::Closed;
                    }
                }
                Err(e) if is_would_block(&e) => break,
                Err(_) => return Pump::Closed,
            }
        }
        if moved {
            Pump::Progress
        } else {
            Pump::Idle
        }
    }

    /// Appends received bytes, honouring discard mode (bytes belonging to a
    /// rejected oversized line are dropped up to and including its newline).
    fn ingest(&mut self, bytes: &[u8]) {
        if !self.discarding {
            self.buf.extend_from_slice(bytes);
            return;
        }
        // Otherwise we're still inside the oversized line: drop everything
        // up to (and including) its terminating newline.
        if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
            self.discarding = false;
            // lint:allow(panic-in-daemon): `position` returned pos < len, so pos + 1 <= len and the range slice holds
            self.buf.extend_from_slice(&bytes[pos + 1..]);
        }
    }
}

fn oversize_error(max_line: usize) -> String {
    serialize_response(&ErrorResponse {
        error: format!("request line exceeds {max_line} bytes"),
    })
}

/// Where a running daemon listens.
#[derive(Debug)]
enum Endpoint {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the workers running for the process
/// lifetime; call `shutdown` for a clean drain.
#[derive(Debug)]
pub struct ServerHandle {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    router: Arc<Router>,
    workers: Vec<JoinHandle<()>>,
    /// Keeps the daemon's share of the core budget accounted until shutdown.
    _lease: CoreLease,
}

impl ServerHandle {
    /// The Unix socket path this daemon listens on, if it is a Unix daemon.
    pub fn socket(&self) -> Option<&Path> {
        match &self.endpoint {
            Endpoint::Unix(path) => Some(path),
            Endpoint::Tcp(_) => None,
        }
    }

    /// The bound TCP address, if this is a TCP daemon (with port 0 in the
    /// bind address, this is where the kernel actually put the listener).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.endpoint {
            Endpoint::Unix(_) => None,
            Endpoint::Tcp(addr) => Some(*addr),
        }
    }

    /// The scenario router this daemon answers from.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Top-K queries answered so far (all scenarios, all transports sharing
    /// the router).
    pub fn queries_served(&self) -> u64 {
        self.router.queries_served()
    }

    /// Stops accepting, drains every buffered request, removes the socket
    /// file (Unix), and returns the router's total query count.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        self.router.queries_served()
    }
}

/// Binds `socket` and spawns the worker pool with default tuning. An
/// existing socket file is reclaimed only if nothing answers on it — a live
/// daemon is an `AddrInUse` error, a leftover from a dead one is silently
/// replaced.
pub fn spawn(
    socket: impl Into<PathBuf>,
    router: Arc<Router>,
    lease: CoreLease,
) -> io::Result<ServerHandle> {
    spawn_with(socket, router, lease, ServerConfig::default())
}

/// [`spawn`] with explicit [`ServerConfig`] tuning.
pub fn spawn_with(
    socket: impl Into<PathBuf>,
    router: Arc<Router>,
    lease: CoreLease,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let socket = socket.into();
    if socket.exists() {
        if UnixStream::connect(&socket).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("{} is already being served", socket.display()),
            ));
        }
        std::fs::remove_file(&socket)?;
    }
    let listener = UnixListener::bind(&socket)?;
    spawn_pool(
        Listener::Unix(listener),
        Endpoint::Unix(socket),
        router,
        lease,
        config,
    )
}

/// Binds a TCP address (e.g. `127.0.0.1:7411`, or port `0` for an
/// ephemeral port — read it back via [`ServerHandle::local_addr`]) and
/// spawns the worker pool with default tuning.
pub fn spawn_tcp(addr: &str, router: Arc<Router>, lease: CoreLease) -> io::Result<ServerHandle> {
    spawn_tcp_with(addr, router, lease, ServerConfig::default())
}

/// [`spawn_tcp`] with explicit [`ServerConfig`] tuning.
pub fn spawn_tcp_with(
    addr: &str,
    router: Arc<Router>,
    lease: CoreLease,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    spawn_pool(
        Listener::Tcp(listener),
        Endpoint::Tcp(bound),
        router,
        lease,
        config,
    )
}

fn spawn_pool(
    listener: Listener,
    endpoint: Endpoint,
    router: Arc<Router>,
    lease: CoreLease,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    listener.set_nonblocking()?;
    let stop = Arc::new(AtomicBool::new(false));
    // The pool is *fixed* at spawn: the lease's width is the daemon's fair
    // share of the budget at boot (workers multiplex connections, so a
    // small pool still serves any number of clients).
    let n_workers = config.workers.unwrap_or_else(|| lease.width()).max(1);
    let listener = Arc::new(listener);
    let workers = (0..n_workers)
        .map(|_| {
            let listener = Arc::clone(&listener);
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::spawn(move || worker_loop(&listener, &router, &config, &stop))
        })
        .collect();
    Ok(ServerHandle {
        endpoint,
        stop,
        router,
        workers,
        _lease: lease,
    })
}

/// One pool worker: accept whatever is pending, pump every owned
/// connection, sleep only when fully quiet. On stop, answer the complete
/// lines already buffered (the drain guarantee) and exit.
fn worker_loop(listener: &Listener, router: &Router, cfg: &ServerConfig, stop: &AtomicBool) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                        progressed = true;
                    }
                }
                Err(e) if is_would_block(&e) => break,
                Err(_) => break, // listener hiccup; retry next sweep
            }
        }
        if stop.load(Ordering::SeqCst) {
            for conn in &mut conns {
                let _ = conn.answer_buffered(router, cfg);
            }
            return;
        }
        conns.retain_mut(|conn| match conn.pump(router, cfg, &mut chunk) {
            Pump::Progress => {
                progressed = true;
                true
            }
            Pump::Idle => conn.last_activity.elapsed() < cfg.idle_timeout,
            Pump::Closed => false,
        });
        if !progressed {
            std::thread::sleep(cfg.poll);
        }
    }
}
