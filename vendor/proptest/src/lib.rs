//! Offline stand-in for `proptest`.
//!
//! Re-implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `pattern in strategy` arguments and an optional
//! `#![proptest_config(..)]` header, range/tuple/collection strategies,
//! [`Strategy::prop_map`], `any::<T>()`, and the `prop_assert!` family.
//!
//! Cases are generated from a deterministic RNG (overridable via the
//! `PROPTEST_SEED` environment variable) so failures reproduce exactly.
//! There is no shrinking: a failing case reports its index and message.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG driving case generation.
pub fn test_rng() -> StdRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x50_50_7E_57_u64);
    StdRng::seed_from_u64(seed)
}

/// A generator of random values for one test argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values, mirroring `proptest`'s `prop_map`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Full-range strategy for a primitive, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Element count for a generated collection: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// `Vec` strategy with element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` strategy; duplicate keys collapse, as in proptest.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Property-test entry macro. Supports the `proptest!` shape used in this
/// workspace: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pattern in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])+
          fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng();
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case when both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f32..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_and_map_compose(
            (a, b) in (0u64..10, 1u64..3).prop_map(|(x, y)| (x * y, y))
        ) {
            prop_assert!(b >= 1 && a <= 18);
            prop_assert_eq!(a % b, 0);
        }

        #[test]
        fn btree_map_strategy(m in prop::collection::btree_map(0u32..50, 0i64..5, 0..8)) {
            prop_assert!(m.len() < 8);
        }

        #[test]
        fn any_is_deterministic_per_run(s in any::<u64>()) {
            let _ = s;
        }
    }

    #[test]
    fn default_config_runs() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert!(ProptestConfig::default().cases > 0);
    }
}
