//! Neural-collaborative-filtering global model (DL-FRS).
//!
//! The global model couples the item-embedding table with the learnable
//! interaction MLP of Eq. (1). Unlike MF-FRS, the MLP parameters are shared
//! and aggregated across clients, opening the interaction-function poisoning
//! surface that A-RA/A-HUM exploit.
//!
//! The MLP input follows the NeuMF formulation of the NCF paper \[16\]:
//! `z₀ = u ⊕ v ⊕ (u ⊙ v)` — the concatenation augmented with the GMF
//! element-wise product path. The product features make the learned score
//! genuinely *multiplicative* in (user, item); without them a narrow MLP
//! degenerates to an additive `f(u) + g(v)` scorer, in which promoting an
//! item for anyone promotes it for everyone and no embedding-geometry
//! defense could possibly matter (see DESIGN.md §5).

use frs_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gradients::MlpGradients;
use crate::mlp::{Mlp, MlpCache};

/// DL-FRS global parameters: item table + interaction MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NcfModel {
    items: Matrix,
    mlp: Mlp,
    dim: usize,
}

impl NcfModel {
    /// Builds the item table and the MLP stack; `shapes` chain from `3·dim`
    /// (the `u ⊕ v ⊕ u⊙v` NeuMF input).
    pub fn new<R: Rng + ?Sized>(
        n_items: usize,
        dim: usize,
        shapes: &[(usize, usize)],
        scale: f32,
        rng: &mut R,
    ) -> Self {
        assert_eq!(
            shapes[0].0,
            3 * dim,
            "MLP input must be 3·dim (u ⊕ v ⊕ u⊙v)"
        );
        Self {
            items: Matrix::uniform(n_items, dim, scale, rng),
            mlp: Mlp::new(shapes, rng),
            dim,
        }
    }

    #[inline]
    pub fn n_items(&self) -> usize {
        self.items.rows()
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn item_embedding(&self, item: u32) -> &[f32] {
        self.items.row(item as usize)
    }

    #[inline]
    pub fn item_embedding_mut(&mut self, item: u32) -> &mut [f32] {
        self.items.row_mut(item as usize)
    }

    #[inline]
    pub fn items(&self) -> &Matrix {
        &self.items
    }

    #[inline]
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Builds the NeuMF input `u ⊕ v ⊕ (u ⊙ v)` into `buf`.
    fn build_input(&self, user_emb: &[f32], item_emb: &[f32], buf: &mut Vec<f32>) {
        debug_assert_eq!(user_emb.len(), self.dim);
        debug_assert_eq!(item_emb.len(), self.dim);
        buf.clear();
        buf.extend_from_slice(user_emb);
        buf.extend_from_slice(item_emb);
        buf.extend(user_emb.iter().zip(item_emb).map(|(a, b)| a * b));
    }

    /// Splits `∂L/∂z₀` into user/item parts with the product rule:
    /// `∂L/∂u = dz[0..d] + dz[2d..3d] ⊙ v`, `∂L/∂v = dz[d..2d] + dz[2d..3d] ⊙ u`.
    fn split_input_grad(
        &self,
        d_input: &[f32],
        user_emb: &[f32],
        item_emb: &[f32],
    ) -> (Vec<f32>, Vec<f32>) {
        let d = self.dim;
        let (du_part, rest) = d_input.split_at(d);
        let (dv_part, dprod) = rest.split_at(d);
        let du: Vec<f32> = du_part
            .iter()
            .zip(dprod.iter().zip(item_emb))
            .map(|(&g, (&p, &v))| g + p * v)
            .collect();
        let dv: Vec<f32> = dv_part
            .iter()
            .zip(dprod.iter().zip(user_emb))
            .map(|(&g, (&p, &u))| g + p * u)
            .collect();
        (du, dv)
    }

    /// Raw (pre-sigmoid) interaction logit for explicit embedding pair —
    /// the attacker-facing surface: PIECK-UEA plugs a popular item's
    /// embedding into the user slot.
    pub fn logit_with_embeddings(&self, user_emb: &[f32], item_emb: &[f32]) -> f32 {
        let mut buf = Vec::with_capacity(3 * self.dim);
        self.build_input(user_emb, item_emb, &mut buf);
        self.mlp.forward_logit_only(&buf)
    }

    /// Raw (pre-sigmoid) interaction logit for a stored item.
    pub fn logit(&self, user_emb: &[f32], item: u32) -> f32 {
        self.logit_with_embeddings(user_emb, self.item_embedding(item))
    }

    /// Logits of *every* stored item for one user, batched: the MLP work that
    /// depends only on the user slot (the first-layer fold over `u`) runs
    /// once, and all activation scratch is reused across the item axis via
    /// [`crate::mlp::BatchScorer`]. Bitwise-identical to calling
    /// [`Self::logit`] per item, with zero allocations per item.
    pub fn scores_for_user_into(&self, user_emb: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(user_emb.len(), self.dim);
        let mut scorer = self.mlp.batch_scorer(user_emb);
        let mut suffix = vec![0.0f32; 2 * self.dim];
        out.clear();
        out.reserve(self.n_items());
        for j in 0..self.n_items() {
            let item_emb = self.items.row(j);
            suffix[..self.dim].copy_from_slice(item_emb);
            for k in 0..self.dim {
                suffix[self.dim + k] = user_emb[k] * item_emb[k];
            }
            out.push(scorer.logit(&suffix));
        }
    }

    /// Forward with cache for a training example.
    pub fn forward(&self, user_emb: &[f32], item: u32) -> (f32, MlpCache) {
        let mut buf = Vec::with_capacity(3 * self.dim);
        self.build_input(user_emb, self.item_embedding(item), &mut buf);
        self.mlp.forward(&buf)
    }

    /// Backward for one example: accumulates MLP parameter gradients into
    /// `mlp_grads`, accumulates `∂L/∂u` into `d_user`, and returns `∂L/∂v`.
    pub fn backward(
        &self,
        user_emb: &[f32],
        item: u32,
        cache: &MlpCache,
        delta: f32,
        d_user: &mut [f32],
        mlp_grads: &mut MlpGradients,
    ) -> Vec<f32> {
        let d_input = self.mlp.backward(cache, delta, mlp_grads);
        let (du, dv) = self.split_input_grad(&d_input, user_emb, self.item_embedding(item));
        for (acc, g) in d_user.iter_mut().zip(du) {
            *acc += g;
        }
        dv
    }

    /// Gradient of the logit w.r.t. an explicit item embedding, holding the
    /// user slot and MLP parameters constant (Eq. 5 for DL-FRS).
    pub fn item_grad_with_embeddings(&self, user_emb: &[f32], item_emb: &[f32]) -> Vec<f32> {
        let mut buf = Vec::with_capacity(3 * self.dim);
        self.build_input(user_emb, item_emb, &mut buf);
        let (_, cache) = self.mlp.forward(&buf);
        let d_input = self.mlp.backward_input_only(&cache, 1.0);
        self.split_input_grad(&d_input, user_emb, item_emb).1
    }

    /// Gradient of the logit w.r.t. the stored item embedding.
    pub fn item_grad_of_logit(&self, user_emb: &[f32], item: u32) -> Vec<f32> {
        self.item_grad_with_embeddings(user_emb, self.item_embedding(item))
    }

    /// Gradient of the logit w.r.t. the *user* embedding, everything else
    /// constant (hard-user mining needs this).
    pub fn user_grad_of_logit(&self, user_emb: &[f32], item: u32) -> Vec<f32> {
        let item_emb = self.item_embedding(item);
        let mut buf = Vec::with_capacity(3 * self.dim);
        self.build_input(user_emb, item_emb, &mut buf);
        let (_, cache) = self.mlp.forward(&buf);
        let d_input = self.mlp.backward_input_only(&cache, 1.0);
        self.split_input_grad(&d_input, user_emb, item_emb).0
    }

    /// Applies `v_j ← v_j − lr·g` for one item.
    pub fn apply_item_gradient(&mut self, item: u32, grad: &[f32], lr: f32) {
        frs_linalg::axpy(-lr, grad, self.items.row_mut(item as usize));
    }

    /// Applies MLP parameter gradients.
    pub fn apply_mlp_gradients(&mut self, grads: &MlpGradients, lr: f32) {
        self.mlp.apply_gradients(grads, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> NcfModel {
        let mut rng = StdRng::seed_from_u64(3);
        NcfModel::new(6, 4, &[(12, 6), (6, 3)], 0.3, &mut rng)
    }

    #[test]
    fn logit_matches_forward() {
        let m = model();
        let u = [0.1, -0.2, 0.3, 0.05];
        let (logit, _) = m.forward(&u, 2);
        assert_eq!(m.logit(&u, 2), logit);
        assert_eq!(m.logit_with_embeddings(&u, m.item_embedding(2)), logit);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn backward_splits_user_item_gradients() {
        let m = model();
        let u = [0.4, -0.1, 0.2, 0.3];
        let (_, cache) = m.forward(&u, 1);
        let mut d_user = vec![0.0; 4];
        let mut mlp_grads = m.mlp().zero_gradients();
        let d_item = m.backward(&u, 1, &cache, 1.0, &mut d_user, &mut mlp_grads);
        assert_eq!(d_item.len(), 4);

        // Finite-difference check of d_item (product rule included).
        let eps = 1e-2;
        let mut m2 = m.clone();
        for i in 0..4 {
            let orig = m2.item_embedding(1)[i];
            m2.item_embedding_mut(1)[i] = orig + eps;
            let up = m2.logit(&u, 1);
            m2.item_embedding_mut(1)[i] = orig - eps;
            let dn = m2.logit(&u, 1);
            m2.item_embedding_mut(1)[i] = orig;
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (d_item[i] - fd).abs() < 1e-2,
                "item grad {i}: {} vs {fd}",
                d_item[i]
            );
        }

        // Finite-difference check of d_user.
        for i in 0..4 {
            let mut up_u = u;
            up_u[i] += eps;
            let mut dn_u = u;
            dn_u[i] -= eps;
            let fd = (m.logit(&up_u, 1) - m.logit(&dn_u, 1)) / (2.0 * eps);
            assert!(
                (d_user[i] - fd).abs() < 1e-2,
                "user grad {i}: {} vs {fd}",
                d_user[i]
            );
        }
    }

    #[test]
    fn item_grad_of_logit_matches_backward() {
        let m = model();
        let u = [0.2, 0.2, -0.3, 0.1];
        let (_, cache) = m.forward(&u, 4);
        let mut d_user = vec![0.0; 4];
        let mut g = m.mlp().zero_gradients();
        let via_backward = m.backward(&u, 4, &cache, 1.0, &mut d_user, &mut g);
        let direct = m.item_grad_of_logit(&u, 4);
        for (a, b) in via_backward.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn user_grad_matches_finite_difference() {
        let m = model();
        let u = [0.3, -0.25, 0.15, 0.2];
        let g = m.user_grad_of_logit(&u, 3);
        let eps = 1e-2;
        for i in 0..4 {
            let mut up = u;
            up[i] += eps;
            let mut dn = u;
            dn[i] -= eps;
            let fd = (m.logit(&up, 3) - m.logit(&dn, 3)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-2, "coord {i}");
        }
    }

    #[test]
    fn score_is_multiplicative_not_additive() {
        // With product features, zeroing the user must change the *item
        // sensitivity* of the score: ∂logit/∂v at u and at 2u differ beyond
        // a constant — catch regressions to an additive scorer.
        let m = model();
        let u: Vec<f32> = vec![0.4, -0.3, 0.2, 0.5];
        let u2: Vec<f32> = u.iter().map(|x| 2.0 * x).collect();
        let g1 = m.item_grad_of_logit(&u, 0);
        let g2 = m.item_grad_of_logit(&u2, 0);
        let diff: f32 = g1.iter().zip(&g2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "item gradient must depend on the user: {diff}");
    }

    #[test]
    fn apply_gradients_moves_score() {
        let mut m = model();
        let u = [0.5, 0.5, 0.5, 0.5];
        let before = m.logit(&u, 0);
        let g = m.item_grad_of_logit(&u, 0);
        let neg: Vec<f32> = g.iter().map(|&x| -x).collect();
        m.apply_item_gradient(0, &neg, 0.5);
        assert!(m.logit(&u, 0) >= before);
    }
}
