//! Δ-Norm tracking (Eq. 7): `Δ-Norm_j^r = ‖v_j^{r+1} − v_j^r‖₂`.
//!
//! The tracker keeps the previous round's item table and, on every update,
//! returns/accumulates the per-item embedding displacement. It backs both the
//! Fig. 4 preliminary experiment (who dominates the top-50 Δ-Norm ranks) and
//! serves as the reference implementation that `pieck-core`'s Algorithm 1 is
//! tested against.

use frs_linalg::{l2_distance, Matrix};

/// Accumulates per-item Δ-Norm values across consecutive model snapshots.
#[derive(Debug, Clone)]
pub struct DeltaNormTracker {
    previous: Option<Matrix>,
    accumulated: Vec<f32>,
    observations: usize,
}

impl DeltaNormTracker {
    /// Tracker for `n_items` items.
    pub fn new(n_items: usize) -> Self {
        Self {
            previous: None,
            accumulated: vec![0.0; n_items],
            observations: 0,
        }
    }

    /// Observes the item table at a new round. Returns the per-item Δ-Norm
    /// against the previous observation (`None` on the first call, which only
    /// establishes the baseline).
    pub fn observe(&mut self, items: &Matrix) -> Option<Vec<f32>> {
        assert_eq!(items.rows(), self.accumulated.len(), "item count changed");
        let deltas = self.previous.as_ref().map(|prev| {
            let per_item: Vec<f32> = (0..items.rows())
                .map(|j| l2_distance(items.row(j), prev.row(j)))
                .collect();
            for (acc, &d) in self.accumulated.iter_mut().zip(&per_item) {
                *acc += d;
            }
            self.observations += 1;
            per_item
        });
        self.previous = Some(items.clone());
        deltas
    }

    /// Accumulated Δ-Norm per item over all observed transitions.
    pub fn accumulated(&self) -> &[f32] {
        &self.accumulated
    }

    /// Number of transitions observed so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Item ids of the top-`n` accumulated Δ-Norm values, descending.
    pub fn top_n(&self, n: usize) -> Vec<u32> {
        frs_linalg::top_k_desc(&self.accumulated, n)
            .into_iter()
            .map(|i| i as u32) // lint:allow(lossy-index-cast): top_k_desc indices are below the u32-keyed catalog size
            .collect()
    }

    /// Resets accumulation but keeps the latest snapshot as baseline.
    pub fn reset_accumulation(&mut self) {
        self.accumulated.iter_mut().for_each(|v| *v = 0.0);
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(values: &[&[f32]]) -> Matrix {
        let cols = values[0].len();
        let flat: Vec<f32> = values.iter().flat_map(|r| r.iter().copied()).collect();
        Matrix::from_vec(values.len(), cols, flat)
    }

    #[test]
    fn first_observation_is_baseline_only() {
        let mut t = DeltaNormTracker::new(2);
        assert!(t.observe(&table(&[&[1.0, 0.0], &[0.0, 1.0]])).is_none());
        assert_eq!(t.observations(), 0);
    }

    #[test]
    fn deltas_measure_row_displacement() {
        let mut t = DeltaNormTracker::new(2);
        t.observe(&table(&[&[0.0, 0.0], &[1.0, 1.0]]));
        let d = t.observe(&table(&[&[3.0, 4.0], &[1.0, 1.0]])).unwrap();
        assert!((d[0] - 5.0).abs() < 1e-6);
        assert_eq!(d[1], 0.0);
    }

    #[test]
    fn accumulation_sums_over_rounds() {
        let mut t = DeltaNormTracker::new(1);
        t.observe(&table(&[&[0.0]]));
        t.observe(&table(&[&[1.0]]));
        t.observe(&table(&[&[3.0]]));
        assert!((t.accumulated()[0] - 3.0).abs() < 1e-6);
        assert_eq!(t.observations(), 2);
    }

    #[test]
    fn top_n_ranks_by_accumulated_change() {
        let mut t = DeltaNormTracker::new(3);
        t.observe(&table(&[&[0.0], &[0.0], &[0.0]]));
        t.observe(&table(&[&[1.0], &[5.0], &[2.0]]));
        assert_eq!(t.top_n(2), vec![1, 2]);
    }

    #[test]
    fn reset_keeps_baseline() {
        let mut t = DeltaNormTracker::new(1);
        t.observe(&table(&[&[0.0]]));
        t.observe(&table(&[&[2.0]]));
        t.reset_accumulation();
        assert_eq!(t.accumulated()[0], 0.0);
        // Next observation diffs against the *latest* snapshot (2.0), not the
        // original baseline.
        let d = t.observe(&table(&[&[3.0]])).unwrap();
        assert!((d[0] - 1.0).abs() < 1e-6);
    }
}
