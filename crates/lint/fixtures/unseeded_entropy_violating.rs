//! Violating fixture: ambient entropy and wall clocks in result-path code.

use std::time::Instant;

pub fn stamp_results() -> Instant {
    Instant::now()
}

pub fn sample_users() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..10)
}
