//! Krum, MultiKrum \[5\], and Bulyan \[25\] over whole uploads.
//!
//! These defenses compare *entire client uploads* in one Euclidean space
//! (items absent from an upload count as zero — see
//! [`frs_federation::upload_squared_distance`]):
//!
//! - **Krum** scores each upload by the sum of squared distances to its
//!   `n − f − 2` nearest neighbours and applies only the minimum-score
//!   upload. One honest client's gradients per round ⇒ strong filtering,
//!   slow learning (the paper's Table IV: ER 0, lowest HR of all defenses).
//! - **MultiKrum** keeps the `n − 2f` best-scoring uploads and sums them —
//!   much better quality, but a poison cluster whose norm resembles benign
//!   uploads slips through the looser selection.
//! - **Bulyan** applies MultiKrum selection, then a per-item coordinate
//!   trimmed mean over the selected uploads.
//!
//! All three fall back to plain summation when the round is too small for
//! the rule (`n ≤ f + 2`).
//!
//! All three consume the *same* shared pairwise-distance layer: one
//! [`frs_federation::upload_distance_matrix`] per round (views + blocked
//! kernels, see `UploadView`), with [`frs_linalg::DistanceMatrix::krum_scores`]
//! on top. Bulyan's selection additionally deactivates matrix rows as it
//! prunes instead of recomputing anything. Every path is bitwise-identical to
//! the original scalar implementation — the `kernel-parity` CI job and the
//! golden tests in `tests/krum_parity.rs` pin that.

use frs_federation::{sum_uploads, upload_distance_matrix, Aggregator};
use frs_linalg::coordinate_trimmed_mean;
use frs_model::GlobalGradients;

use crate::median::reduce_upload_refs;

/// Krum score per upload as `(upload index, score)` pairs, via the round's
/// shared distance matrix. `None` when the rule is undefined for `n`.
fn krum_scores(uploads: &[GlobalGradients], f: usize) -> Option<Vec<(usize, f32)>> {
    upload_distance_matrix(uploads).krum_scores(f)
}

/// Indices of the `m` lowest-scoring uploads (ties by index).
fn best_m(scores: &[(usize, f32)], m: usize) -> Vec<usize> {
    let mut order = scores.to_vec();
    order.sort_unstable_by(|(ai, a), (bi, b)| a.total_cmp(b).then(ai.cmp(bi)));
    order.truncate(m.max(1));
    order.into_iter().map(|(i, _)| i).collect()
}

/// Assumed malicious upload count among `n` for a configured ratio.
fn f_of(n: usize, ratio: f64) -> usize {
    ((n as f64) * ratio).ceil() as usize
}

/// Classic Krum: apply the single most central upload.
#[derive(Debug, Clone, Copy)]
pub struct Krum {
    /// Assumed malicious fraction `p̃`.
    pub malicious_ratio: f64,
}

impl Krum {
    /// Creates the defense for an assumed malicious ratio in `[0, 0.5)`.
    pub fn new(malicious_ratio: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&malicious_ratio),
            "ratio must be in [0, 0.5)"
        );
        Self { malicious_ratio }
    }
}

impl Aggregator for Krum {
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients {
        let f = f_of(uploads.len(), self.malicious_ratio);
        match krum_scores(uploads, f) {
            Some(scores) => {
                // One representative upload stands in for the whole batch;
                // rescale to sum magnitude (see median.rs for the rationale).
                let mut chosen = uploads[best_m(&scores, 1)[0]].clone();
                chosen.scale(uploads.len() as f32);
                chosen
            }
            None => sum_uploads(uploads),
        }
    }

    fn name(&self) -> &'static str {
        "Krum"
    }
}

/// MultiKrum: sum the `n − 2f` most central uploads.
#[derive(Debug, Clone, Copy)]
pub struct MultiKrum {
    /// Assumed malicious fraction `p̃`.
    pub malicious_ratio: f64,
}

impl MultiKrum {
    /// Creates the defense for an assumed malicious ratio in `[0, 0.5)`.
    pub fn new(malicious_ratio: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&malicious_ratio),
            "ratio must be in [0, 0.5)"
        );
        Self { malicious_ratio }
    }
}

impl MultiKrum {
    fn select<'a>(&self, uploads: &'a [GlobalGradients]) -> Option<Vec<&'a GlobalGradients>> {
        let n = uploads.len();
        let f = f_of(n, self.malicious_ratio);
        let scores = krum_scores(uploads, f)?;
        let m = n.saturating_sub(2 * f).max(1);
        Some(
            best_m(&scores, m)
                .into_iter()
                .map(|i| &uploads[i])
                .collect(),
        )
    }
}

impl Aggregator for MultiKrum {
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients {
        match self.select(uploads) {
            Some(selected) => {
                let mut out = GlobalGradients::new();
                for u in selected {
                    out.axpy(1.0, u);
                }
                out
            }
            None => sum_uploads(uploads),
        }
    }

    fn name(&self) -> &'static str {
        "MultiKrum"
    }
}

/// Bulyan: MultiKrum selection, then per-item coordinate trimmed mean scaled
/// back to sum magnitude (so learning speed stays comparable).
#[derive(Debug, Clone, Copy)]
pub struct Bulyan {
    /// Assumed malicious fraction `p̃`.
    pub malicious_ratio: f64,
}

impl Bulyan {
    /// Creates the defense for an assumed malicious ratio in `[0, 0.5)`.
    pub fn new(malicious_ratio: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&malicious_ratio),
            "ratio must be in [0, 0.5)"
        );
        Self { malicious_ratio }
    }
}

impl Aggregator for Bulyan {
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients {
        let n = uploads.len();
        let f = f_of(n, self.malicious_ratio);
        let mut matrix = upload_distance_matrix(uploads);
        let Some(scores) = matrix.krum_scores(f) else {
            return sum_uploads(uploads);
        };
        let m = n.saturating_sub(2 * f).max(1);
        // Pruning loop: repeatedly pick the lowest-scoring active upload
        // (ties toward the lower index — the unique minimum under the
        // lexicographic comparator) and deactivate its row/column, which
        // masks it out of the shared matrix in O(1) instead of recomputing
        // the surviving submatrix. Over fixed scores this selects exactly
        // the `m` best, in score order.
        let mut selected: Vec<&GlobalGradients> = Vec::with_capacity(m);
        while selected.len() < m {
            let Some(&(i, _)) = scores
                .iter()
                .filter(|&&(i, _)| matrix.is_active(i))
                .min_by(|(ai, a), (bi, b)| a.total_cmp(b).then(ai.cmp(bi)))
            else {
                break;
            };
            matrix.deactivate(i);
            selected.push(&uploads[i]);
        }
        // Trimmed mean per item over the selected uploads — the trim budget
        // is proportional to the item's uploader count (a global `f` would
        // always degenerate to a median for sparsely-uploaded items) —
        // rescaled by the kept count to keep sum-like magnitude.
        reduce_upload_refs(&selected, |grads| {
            let trim = (((grads.len() as f64) * self.malicious_ratio).ceil() as usize)
                .min(grads.len().saturating_sub(1) / 2);
            let mut combined = coordinate_trimmed_mean(grads, trim);
            let kept = grads.len().saturating_sub(2 * trim).max(1) as f32;
            frs_linalg::scale(&mut combined, kept);
            combined
        })
    }

    fn name(&self) -> &'static str {
        "Bulyan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(pairs: &[(u32, Vec<f32>)]) -> GlobalGradients {
        let mut g = GlobalGradients::new();
        for (item, grad) in pairs {
            g.add_item_grad(*item, grad);
        }
        g
    }

    /// 6 benign uploads over overlapping items + 2 poison uploads that hammer
    /// a single cold item with a large gradient.
    fn round_uploads() -> Vec<GlobalGradients> {
        let mut v = vec![
            upload(&[(0, vec![0.1, 0.0]), (1, vec![0.05, 0.02])]),
            upload(&[(0, vec![0.09, 0.01]), (2, vec![0.03, 0.0])]),
            upload(&[(1, vec![0.04, 0.03]), (2, vec![0.02, 0.01])]),
            upload(&[(0, vec![0.11, -0.01]), (1, vec![0.06, 0.01])]),
            upload(&[(0, vec![0.1, 0.02]), (2, vec![0.04, 0.02])]),
            upload(&[(1, vec![0.05, 0.0]), (2, vec![0.03, 0.01])]),
        ];
        v.push(upload(&[(9, vec![8.0, -8.0])]));
        v.push(upload(&[(9, vec![8.1, -7.9])]));
        v
    }

    #[test]
    fn krum_selects_a_benign_upload() {
        let uploads = round_uploads();
        let out = Krum::new(0.25).aggregate(&uploads);
        assert!(
            !out.items.contains_key(&9),
            "the poison-only item must be filtered: {:?}",
            out.items.keys()
        );
    }

    #[test]
    fn krum_output_is_a_rescaled_upload() {
        let uploads = round_uploads();
        let out = Krum::new(0.25).aggregate(&uploads);
        let n = uploads.len() as f32;
        assert!(uploads.iter().any(|u| {
            let mut scaled = u.clone();
            scaled.scale(n);
            scaled == out
        }));
    }

    #[test]
    fn krum_falls_back_to_sum_for_tiny_rounds() {
        let uploads = vec![upload(&[(0, vec![1.0])]), upload(&[(0, vec![3.0])])];
        let out = Krum::new(0.2).aggregate(&uploads);
        assert_eq!(out.items[&0], vec![4.0]);
    }

    #[test]
    fn multikrum_keeps_most_uploads() {
        let uploads = round_uploads();
        let out = MultiKrum::new(0.25).aggregate(&uploads);
        // n=8, f=2 → m=4 central uploads summed; benign items survive.
        assert!(out.items.contains_key(&0));
        assert!(out.items.contains_key(&1) || out.items.contains_key(&2));
    }

    #[test]
    fn bulyan_filters_large_poison() {
        let uploads = round_uploads();
        let out = Bulyan::new(0.25).aggregate(&uploads);
        if let Some(g) = out.items.get(&9) {
            assert!(frs_linalg::l2_norm(g) < 1.0, "poison attenuated: {g:?}");
        }
    }

    #[test]
    fn all_fall_back_gracefully_on_empty() {
        assert!(Krum::new(0.1).aggregate(&[]).is_empty());
        assert!(MultiKrum::new(0.1).aggregate(&[]).is_empty());
        assert!(Bulyan::new(0.1).aggregate(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn invalid_ratio_rejected() {
        Krum::new(0.7);
    }
}
