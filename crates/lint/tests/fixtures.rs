//! Every builtin rule against its committed clean/violating fixture pair,
//! plus the waiver fixtures. Fixtures live in `crates/lint/fixtures/`,
//! outside every cargo target tree, so they are neither compiled nor
//! scanned by the workspace self-lint.

use std::path::Path;

use frs_lint::{builtin_rule_ids, builtin_rules, lint_source, LintConfig, Violation};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// A config scoping every builtin rule to every package — fixtures are
/// linted as production code of a synthetic package.
fn all_rules_config() -> LintConfig {
    let ids = builtin_rule_ids();
    let text: String = ids
        .iter()
        .map(|id| format!("[rule.{id}]\ncrates = [\"*\"]\n"))
        .collect();
    LintConfig::parse(&text, &ids).expect("synthetic config parses")
}

fn lint_fixture(name: &str) -> Vec<Violation> {
    lint_source(
        name,
        &fixture(name),
        "fixture-pkg",
        &all_rules_config(),
        &builtin_rules(),
        false,
    )
}

#[test]
fn each_rule_fires_on_its_violating_fixture_only() {
    let cases = [
        ("map-iter-order", "map_iter_order", 2),
        ("unseeded-entropy", "unseeded_entropy", 2),
        ("panic-in-daemon", "panic_in_daemon", 3),
        ("float-reduction-order", "float_reduction_order", 3),
        ("lossy-index-cast", "lossy_index_cast", 2),
    ];
    for (rule, stem, expected) in cases {
        let bad = lint_fixture(&format!("{stem}_violating.rs"));
        assert_eq!(
            bad.iter().filter(|v| v.rule == rule).count(),
            expected,
            "{rule} on its violating fixture: {bad:?}"
        );
        assert_eq!(
            bad.len(),
            expected,
            "{stem}_violating.rs must trigger only {rule}: {bad:?}"
        );
        assert!(bad.iter().all(|v| !v.waived), "no waivers in {stem}");
    }
}

#[test]
fn clean_fixtures_produce_nothing_under_every_rule() {
    for stem in [
        "map_iter_order",
        "unseeded_entropy",
        "panic_in_daemon",
        "float_reduction_order",
        "lossy_index_cast",
    ] {
        let good = lint_fixture(&format!("{stem}_clean.rs"));
        assert!(good.is_empty(), "{stem}_clean.rs: {good:?}");
    }
}

#[test]
fn reasoned_waivers_silence_but_stay_in_the_report() {
    let vs = lint_fixture("waivers_reasoned.rs");
    assert_eq!(vs.len(), 2, "{vs:?}");
    assert!(
        vs.iter().all(|v| v.waived),
        "every violation carries a reasoned waiver: {vs:?}"
    );
    let rules: Vec<&str> = vs.iter().map(|v| v.rule.as_str()).collect();
    assert!(rules.contains(&"lossy-index-cast") && rules.contains(&"float-reduction-order"));
}

#[test]
fn bare_waiver_silences_nothing_and_is_itself_flagged() {
    let vs = lint_fixture("waivers_bare.rs");
    let unwaived: Vec<&Violation> = vs.iter().filter(|v| !v.waived).collect();
    assert_eq!(unwaived.len(), 2, "{vs:?}");
    assert!(unwaived.iter().any(|v| v.rule == "lossy-index-cast"));
    assert!(unwaived
        .iter()
        .any(|v| v.rule == "invalid-waiver" && v.message.contains("reason")));
}

#[test]
fn unknown_rule_waiver_is_flagged() {
    let vs = lint_fixture("waivers_unknown_rule.rs");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, "invalid-waiver");
    assert!(vs[0].message.contains("no-such-rule"), "{}", vs[0].message);
    assert!(!vs[0].waived);
}
