//! End-to-end checks for the shared core budget: suite-level workers and
//! intra-round fan-out draw from one ledger, reports stay byte-identical
//! at every width/policy, and progress events record effective widths.

use pieck_frs::attacks::AttackKind;
use pieck_frs::experiments::report::ReportFormat;
use pieck_frs::experiments::suite::{ExecOptions, ExperimentSuite, RunOptions, Sweep};
use pieck_frs::experiments::{MemorySink, SuiteCache};
use pieck_frs::federation::{CoreBudget, RoundThreads};

fn small_suite() -> ExperimentSuite {
    ExperimentSuite::new("budget", "Budget test").sweep(Sweep::new("grid", "Grid").over_attacks([
        AttackKind::NoAttack,
        AttackKind::PieckIpe,
        AttackKind::PieckUea,
    ]))
}

fn opts(threads: usize, round_threads: RoundThreads) -> RunOptions {
    RunOptions {
        scale: 0.05,
        seed: 31,
        rounds: Some(8),
        threads,
        round_threads,
        ..RunOptions::default()
    }
}

#[test]
fn auto_budget_reports_are_byte_identical_to_sequential() {
    let suite = small_suite();
    let sequential = suite.run(&opts(1, RoundThreads::Fixed(1)));
    for round_threads in [RoundThreads::Fixed(4), RoundThreads::Auto] {
        let parallel = suite.run(&opts(4, round_threads));
        for format in [
            ReportFormat::Markdown,
            ReportFormat::Csv,
            ReportFormat::Json,
        ] {
            assert_eq!(
                sequential.report().render(format),
                parallel.report().render(format),
                "{round_threads:?}"
            );
        }
    }
}

#[test]
fn auto_cells_lease_round_width_from_the_shared_budget() {
    let suite = small_suite();
    let budget = CoreBudget::new(8);
    let sink = MemorySink::new();
    // One suite worker at a time ⇒ each executing cell is the sole lease
    // holder and gets the whole 8-core budget for its round fan-out.
    suite
        .run_with(
            &opts(1, RoundThreads::Auto),
            &ExecOptions {
                cache: None,
                sink: Some(&sink),
                budget: Some(&budget),
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap();
    let events = sink.events();
    assert_eq!(events.len(), 3);
    assert!(
        events.iter().all(|e| e.round_threads == 8),
        "expected every cell to record the full lease width: {:?}",
        events.iter().map(|e| e.round_threads).collect::<Vec<_>>()
    );
    assert_eq!(budget.active_leases(), 0, "leases returned after the run");
}

#[test]
fn warm_cache_replays_identically_across_widths() {
    let dir = std::env::temp_dir().join(format!("frs-budget-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = SuiteCache::open(&dir).unwrap();
    let suite = small_suite();

    // Cold: sequential, no budget in play.
    let cold = suite
        .run_with(
            &opts(1, RoundThreads::Fixed(1)),
            &ExecOptions {
                cache: Some(&cache),
                sink: None,
                budget: None,
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap();

    // Warm: different worker count AND different round policy — the cache
    // key normalizes the execution knobs, so every cell replays.
    let warm_sink = MemorySink::new();
    let budget = CoreBudget::new(8);
    let warm = suite
        .run_with(
            &opts(4, RoundThreads::Auto),
            &ExecOptions {
                cache: Some(&cache),
                sink: Some(&warm_sink),
                budget: Some(&budget),
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap();
    assert_eq!(warm_sink.hits(), 3, "execution-only knobs must not re-key");
    for format in [
        ReportFormat::Markdown,
        ReportFormat::Csv,
        ReportFormat::Json,
    ] {
        assert_eq!(cold.report().render(format), warm.report().render(format));
    }
    // Replayed events carry the widths of the run that computed them.
    assert!(warm_sink.events().iter().all(|e| e.round_threads == 1));
    let _ = std::fs::remove_dir_all(&dir);
}
