//! Poison-crafting cost per malicious client per round: the IPE alignment
//! gradient, the UEA inner optimization, and A-HUM's hard-user mining —
//! the paper's claim that PIECK adds negligible per-round cost.

use criterion::{criterion_group, criterion_main, Criterion};
use frs_attacks::{hard_user_mining, random_user_embeddings};
use frs_model::{GlobalModel, ModelConfig};
use pieck_core::{ipe, uea, IpeConfig, UeaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn attack_crafting(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let model = GlobalModel::new(&ModelConfig::mf(16), 2000, &mut rng);
    let popular: Vec<u32> = (0..50).collect();
    let popular_embs: Vec<&[f32]> = popular.iter().map(|&j| model.item_embedding(j)).collect();
    let target_emb = model.item_embedding(1500).to_vec();

    let mut group = c.benchmark_group("attack_crafting");
    let ipe_cfg = IpeConfig::default();
    group.bench_function("ipe_gradient_50_popular", |b| {
        b.iter(|| criterion::black_box(ipe::ipe_gradient(&ipe_cfg, &popular_embs, &target_emb)));
    });
    let uea_cfg = UeaConfig::default();
    group.bench_function("uea_poison_gradient", |b| {
        b.iter(|| {
            criterion::black_box(uea::uea_poison_gradient(
                &uea_cfg, &model, &popular, 1500, 1.0,
            ))
        });
    });
    group.bench_function("ahum_hard_user_mining_32x10", |b| {
        b.iter(|| {
            let mut users = random_user_embeddings(32, 16, 0.1, &mut rng);
            hard_user_mining(&model, &mut users, 1500, 10, 0.2);
            criterion::black_box(users.len())
        });
    });
    group.finish();
}

criterion_group!(benches, attack_crafting);
criterion_main!(benches);
