//! Dense linear-algebra and statistics primitives for the PIECK reproduction.
//!
//! Every numeric building block the federated-recommendation stack needs lives
//! here: embedding vectors ([`vector`]), row-major embedding tables
//! ([`matrix`]), numerically stable activations ([`activation`]), softmax-based
//! KL divergence with analytic gradients ([`mod@softmax`]), robust statistics used
//! by the server-side defenses ([`stats`]), ranking / top-k selection used
//! by recommendation lists and the popular-item miner ([`rank`]), and the
//! shared pairwise-distance kernel the robust aggregators consume
//! ([`distance`]).
//!
//! The crate is deliberately dependency-light (only `rand` for initializers)
//! and every operation is deterministic given its inputs, which keeps the whole
//! simulation reproducible from a single seed.

pub mod activation;
pub mod distance;
pub mod matrix;
pub mod rank;
pub mod rng;
pub mod softmax;
pub mod stats;
pub mod vector;

pub use activation::{
    leaky_relu, leaky_relu_grad, log_sigmoid, relu, relu_grad, relu_inplace, sigmoid,
};
pub use distance::{dot_blocked, squared_distance_blocked, DistanceMatrix, DISTANCE_BLOCK};
pub use matrix::Matrix;
pub use rank::{
    argsort_desc, rank_of, sum_k_smallest, top_k_desc, top_k_desc_filtered,
    top_k_desc_filtered_into,
};
pub use rng::SeedStream;
pub use softmax::{kl_divergence, kl_grad_wrt_p, kl_grad_wrt_q, log_softmax, softmax};
pub use stats::{
    coordinate_median, coordinate_trimmed_mean, mean, median_inplace, trimmed_mean_inplace,
    variance,
};
pub use vector::{
    add_assign, axpy, clip_l2_norm, cosine, cosine_grad_wrt_b, dot, l2_distance, l2_norm,
    mean_vector, scale, squared_l2_distance, sub,
};
