//! Integration tests of the attack-side registry redesign (the mirror of
//! `defense_registry.rs`): attacks built through the parameterized open
//! registry are byte-identical to the pre-refactor hard-wired dispatch and
//! to the deleted `table6`/`table9` runtime-registered closures; every
//! `AttackSel` params flip re-keys the suite cache; and an out-of-crate
//! *parameterized* attack — defined right here, never touching
//! `AttackKind` — registers through `register_attack` and runs end to end
//! through an `ExperimentSuite`.

use pieck_frs::attacks::{
    register_attack, AttackKind, AttackSel, FnAttackFactory, ParamSpec, ScaledClient,
};
use pieck_frs::data::DatasetSpec;
use pieck_frs::experiments::cache::scenario_key;
use pieck_frs::experiments::progress::MemorySink;
use pieck_frs::experiments::scenario::{self, ScenarioConfig};
use pieck_frs::experiments::suite::ExecOptions;
use pieck_frs::experiments::{ConfigPatch, ExperimentSuite, RunOptions, Sweep};
use pieck_frs::federation::{Client, RoundContext};
use pieck_frs::model::{GlobalGradients, GlobalModel, ModelKind};
use pieck_frs::pieck::{
    IpeConfig, MultiTargetStrategy, PieckClient, PieckConfig, SimilarityMetric,
};
use proptest::prelude::*;

fn attacked_cfg(attack: AttackSel) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 42);
    cfg.federation.clients_per_round = pieck_frs::federation::ClientsPerRound::Count(24);
    cfg.rounds = 30;
    cfg.attack = attack;
    cfg.mined_top_n = 12;
    cfg.poison_scale = 4.0;
    cfg
}

fn assert_outcomes_identical(
    label: &str,
    a: &scenario::ScenarioOutcome,
    b: &scenario::ScenarioOutcome,
) {
    assert_eq!(a.targets, b.targets, "{label}: targets");
    assert_eq!(
        a.er_percent, b.er_percent,
        "{label}: ER must be bit-identical"
    );
    assert_eq!(
        a.hr_percent, b.hr_percent,
        "{label}: HR must be bit-identical"
    );
    assert_eq!(a.ndcg, b.ndcg, "{label}: NDCG must be bit-identical");
}

/// Golden test, builtin rows: the registry-built attacks produce
/// byte-identical `ScenarioOutcome`s to the pre-params hard-wired enum
/// dispatch. The right-hand side reproduces exactly what the old
/// `AttackKind::build_clients` match performed: shared sybil seed, the
/// scenario's mined N, and a norm-capped `ScaledClient` wrap for
/// gradient-style attacks whenever `poison_scale ≠ 1` (never for UEA).
#[test]
fn registry_built_attacks_match_the_old_hard_wired_dispatch_exactly() {
    for kind in [AttackKind::PieckIpe, AttackKind::PieckUea, AttackKind::ARa] {
        let cfg = attacked_cfg(kind.into());
        let via_registry = scenario::run(&cfg);
        let via_hand = scenario::run_with(&cfg, |first_id, count, targets| {
            (0..count)
                .map(|i| {
                    let id = first_id + i;
                    let client_seed = cfg.federation.seed ^ 0xA77AC;
                    let client: Box<dyn Client> = match kind {
                        AttackKind::PieckIpe => {
                            let mut pieck = PieckConfig::ipe(targets.to_vec());
                            pieck.top_n = cfg.mined_top_n;
                            Box::new(PieckClient::new(id, pieck))
                        }
                        AttackKind::PieckUea => {
                            let mut pieck = PieckConfig::uea(targets.to_vec());
                            pieck.top_n = cfg.mined_top_n;
                            Box::new(PieckClient::new(id, pieck))
                        }
                        AttackKind::ARa => Box::new(pieck_frs::attacks::ARaClient::new(
                            id,
                            targets.to_vec(),
                            32,
                            client_seed,
                        )),
                        other => unreachable!("{other:?}"),
                    };
                    let scalable = kind != AttackKind::PieckUea;
                    if scalable && (cfg.poison_scale - 1.0).abs() > f32::EPSILON {
                        Box::new(ScaledClient::new(client, cfg.poison_scale).with_cap(2.0))
                            as Box<dyn Client>
                    } else {
                        client
                    }
                })
                .collect()
        });
        assert_outcomes_identical(kind.label(), &via_registry, &via_hand);
    }
}

/// Golden test, ablation rows: the builtin `ipe-ablation-*` /
/// `pieck-*-together|copy` catalog entries reproduce the deleted
/// runtime-registered closures bit for bit — including the unconditional
/// norm-capped wrap the IPE closures carried and Table IX's pinned
/// per-solution mined-set sizes.
#[test]
fn variant_catalog_entries_match_the_old_runtime_closures_exactly() {
    // table6's PKL row.
    let cfg = attacked_cfg(AttackSel::named("ipe-ablation-pkl"));
    let via_registry = scenario::run(&cfg);
    let ipe = IpeConfig {
        metric: SimilarityMetric::Kl,
        use_rank_weights: false,
        use_sign_partition: false,
        lambda: 1.0,
    };
    let via_hand = scenario::run_with(&cfg, |first_id, count, targets| {
        (0..count)
            .map(|i| {
                let mut pieck = PieckConfig::ipe(targets.to_vec());
                pieck.variant = pieck_frs::pieck::PieckVariant::Ipe(ipe.clone());
                pieck.top_n = cfg.mined_top_n;
                let client: Box<dyn Client> = Box::new(PieckClient::new(first_id + i, pieck));
                Box::new(ScaledClient::new(client, cfg.poison_scale).with_cap(2.0))
                    as Box<dyn Client>
            })
            .collect()
    });
    assert_outcomes_identical("ipe-ablation-pkl", &via_registry, &via_hand);

    // table9's UEA × TrainTogether row: pinned N=30 regardless of the
    // scenario's mined_top_n, no scaling wrap.
    let cfg = attacked_cfg(AttackSel::named("pieck-uea-together"));
    let via_registry = scenario::run(&cfg);
    let via_hand = scenario::run_with(&cfg, |first_id, count, targets| {
        (0..count)
            .map(|i| {
                let mut pieck = PieckConfig::uea(targets.to_vec());
                pieck.multi_target = MultiTargetStrategy::TrainTogether;
                pieck.top_n = 30;
                Box::new(PieckClient::new(first_id + i, pieck)) as Box<dyn Client>
            })
            .collect()
    });
    assert_outcomes_identical("pieck-uea-together", &via_registry, &via_hand);
}

/// A deliberately simple parameterized poisoning client living only in this
/// test crate: every round it uploads a constant gradient of magnitude
/// `strength` pulling its targets' embeddings upward. `strength = 0` is a
/// no-op attacker — observable proof the param actually reached the client.
struct FloodClient {
    id: usize,
    targets: Vec<u32>,
    strength: f32,
}

impl Client for FloodClient {
    fn id(&self) -> usize {
        self.id
    }

    fn is_malicious(&self) -> bool {
        true
    }

    fn local_round(&mut self, _ctx: &RoundContext, model: &GlobalModel) -> GlobalGradients {
        let mut grads = GlobalGradients::new();
        for &t in &self.targets {
            // The server applies θ ← θ − η·g, so a negative constant raises
            // every coordinate of the target embedding.
            grads.add_item_grad(t, &vec![-self.strength; model.dim()]);
        }
        grads
    }
}

#[test]
fn out_of_crate_parameterized_attack_runs_through_a_suite() {
    register_attack(
        FnAttackFactory::parameterized("flood", "Flood", |ctx, params| {
            let strength = params.get_f32("strength")?.unwrap_or(0.2);
            if strength < 0.0 {
                return Err(format!("param `strength` must be ≥ 0, got {strength}"));
            }
            Ok((0..ctx.count)
                .map(|i| {
                    Box::new(FloodClient {
                        id: ctx.first_id + i,
                        targets: ctx.targets.to_vec(),
                        strength,
                    }) as Box<dyn Client>
                })
                .collect())
        })
        .with_param_schema([ParamSpec::new("strength", "upload magnitude", "0.2")])
        // PR-3 contract: runtime registrations fingerprint themselves so
        // same-name re-registrations re-key cached cells.
        .with_fingerprint("flood-v1 strength-default=0.2"),
    );

    let suite = ExperimentSuite::new("custom-atk", "Custom attack suite").sweep(
        Sweep::new("grid", "inert vs full strength").over_attacks([
            AttackSel::named("flood").with_param("strength", 0.0f32),
            AttackSel::named("flood").with_param("strength", 0.3f32),
        ]),
    );
    let opts = RunOptions {
        scale: 0.08,
        seed: 11,
        rounds: Some(40),
        threads: 2,
        ..RunOptions::default()
    };
    let sink = MemorySink::new();
    let result = suite
        .run_with(
            &opts,
            &ExecOptions {
                cache: None,
                sink: Some(&sink),
                budget: None,
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap();
    let cells: Vec<_> = result.all_cells().collect();
    assert_eq!(cells.len(), 2);
    let er_of = |params: &str| {
        cells
            .iter()
            .find(|c| c.cell.attack.params().to_string() == params)
            .unwrap()
            .outcome
            .er_percent
    };
    assert!(
        er_of("strength=0.3") > er_of("strength=0"),
        "a stronger flood must expose the target more: {} vs {}",
        er_of("strength=0.3"),
        er_of("strength=0")
    );
    // Events record the attack params the cells actually ran with, and the
    // registered label renders in reports.
    let mut event_params: Vec<String> =
        sink.events().into_iter().map(|e| e.attack_params).collect();
    event_params.sort();
    assert_eq!(event_params, ["strength=0", "strength=0.3"]);
    assert!(result.report().to_markdown().contains("Flood"));

    // Bad values surface as clean errors through try_build_clients, the
    // same path the CLI probes at startup.
    let bad = AttackSel::named("flood").with_param("strength", "huge");
    let probe = pieck_frs::attacks::AttackBuildCtx::minimal(0, 0, &[]);
    assert!(bad.try_build_clients(&probe).is_err());
}

/// A parameterized attack selection round-trips through the scenario config
/// JSON (the object `{name, params}` wire form).
#[test]
fn parameterized_scenario_config_round_trips() {
    let cfg = attacked_cfg(
        AttackSel::named("pieck-uea")
            .with_param("scale", 2.0f32)
            .with_param("top_n", 20usize),
    );
    let json = serde_json::to_string(&cfg).unwrap();
    assert!(json.contains("\"params\""), "{json}");
    let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.attack, cfg.attack);
    assert_eq!(back.canonical_json(), cfg.canonical_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every `AttackSel` params field flip re-keys the suite cache: keys
    /// are stable under re-hashing, insensitive to insertion order, and
    /// sensitive to each individual parameter — the port of the PR 4
    /// defense-params proptests onto the attack payload.
    #[test]
    fn every_attack_params_field_flip_rekeys_the_cache(
        scale in 0.1f32..8.0,
        top_n in 1usize..40,
        mining_rounds in 1usize..5,
        lambda in 0.01f32..0.99,
    ) {
        let sel = AttackSel::named("ipe-ablation-full")
            .with_param("scale", scale)
            .with_param("top_n", top_n)
            .with_param("mining_rounds", mining_rounds)
            .with_param("lambda", lambda);
        let cfg = attacked_cfg(sel.clone());
        let key = scenario_key(&cfg);

        // Stable: same config, same key; insertion order is canonicalized.
        prop_assert_eq!(&key, &scenario_key(&cfg.clone()));
        let reordered = attacked_cfg(
            AttackSel::named("ipe-ablation-full")
                .with_param("lambda", lambda)
                .with_param("mining_rounds", mining_rounds)
                .with_param("top_n", top_n)
                .with_param("scale", scale),
        );
        prop_assert_eq!(&key, &scenario_key(&reordered));

        // The bare selection (defaults) addresses a different cell.
        let bare = attacked_cfg(AttackSel::named("ipe-ablation-full"));
        prop_assert_ne!(&key, &scenario_key(&bare));

        // Each individual field flip re-keys.
        let flips: [AttackSel; 4] = [
            sel.clone().with_param("scale", scale + 0.5),
            sel.clone().with_param("top_n", top_n + 1),
            sel.clone().with_param("mining_rounds", mining_rounds + 1),
            sel.clone().with_param("lambda", lambda / 2.0),
        ];
        for flipped in flips {
            prop_assert_ne!(&key, &scenario_key(&attacked_cfg(flipped)));
        }
    }
}

/// Attack overrides at the run level (`--attack`) collapse the sweep's
/// attack axis to the single overriding selection, and the `ConfigPatch`
/// attack knobs route into its params only when the schema declares them.
#[test]
fn run_level_attack_override_collapses_the_axis() {
    let sweep = Sweep::new("s", "S").over_attacks(AttackKind::all());
    let plain = sweep.expand(&RunOptions {
        rounds: Some(1),
        ..RunOptions::default()
    });
    assert_eq!(plain.len(), 7);

    let overridden = sweep.expand(&RunOptions {
        rounds: Some(1),
        attack: Some(AttackSel::parse("pieck-uea:scale=2.0").unwrap()),
        ..RunOptions::default()
    });
    assert_eq!(overridden.len(), 1, "axis collapses to the override");
    assert_eq!(overridden[0].attack.name(), "pieck-uea");
    assert_eq!(
        overridden[0]
            .config
            .attack
            .params()
            .get_f32("scale")
            .unwrap(),
        Some(2.0)
    );
    // The override still matches the sweep's per-attack mined-N policy
    // (name-only comparison against AttackKind::PieckUea).
    assert_eq!(overridden[0].config.mined_top_n, 30);

    // An override to a mining-free attack running through variants that
    // sweep the attack knobs skips the inapplicable keys instead of
    // panicking at build time.
    let knobs = Sweep::new("k", "K")
        .over_attacks([AttackKind::PieckIpe])
        .over_variants([ConfigPatch {
            label: "N=17 s=3".into(),
            mined_top_n: Some(17),
            poison_scale: Some(3.0),
            ..ConfigPatch::default()
        }]);
    let ara = knobs.expand(&RunOptions {
        rounds: Some(1),
        attack: Some(AttackSel::named("a-ra")),
        ..RunOptions::default()
    });
    // a-ra declares `scale` but not `top_n`.
    assert_eq!(
        ara[0].config.attack.to_string(),
        "a-ra:scale=3",
        "top_n is skipped, scale applies"
    );
    let ctx = ara[0].config.attack_ctx(0, 0, &[]);
    assert!(ara[0].config.attack.try_build_clients(&ctx).is_ok());
    let none = knobs.expand(&RunOptions {
        rounds: Some(1),
        attack: Some(AttackSel::named("none")),
        ..RunOptions::default()
    });
    assert!(
        none[0].config.attack.params().is_empty(),
        "the no-attack baseline accepts no knobs: {}",
        none[0].config.attack
    );
    // Without the override both knobs land as pieck-ipe params.
    let ipe = knobs.expand(&RunOptions {
        rounds: Some(1),
        ..RunOptions::default()
    });
    assert_eq!(
        ipe[0].config.attack.to_string(),
        "pieck-ipe:scale=3,top_n=17"
    );
}
