//! Algorithm 1 cost: Δ-Norm accumulation per observed model (the dominant
//! term — an O(items × dim) sweep) and the top-N extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frs_model::{GlobalModel, ModelConfig};
use pieck_core::PopularItemMiner;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("popular_item_mining");
    for n_items in [500usize, 2000, 8000] {
        let mut rng = StdRng::seed_from_u64(1);
        let model_a = GlobalModel::new(&ModelConfig::mf(16), n_items, &mut rng);
        let model_b = GlobalModel::new(&ModelConfig::mf(16), n_items, &mut rng);
        group.bench_with_input(BenchmarkId::new("observe", n_items), &n_items, |b, _| {
            b.iter(|| {
                let mut miner = PopularItemMiner::new(1, 10);
                miner.observe(&model_a);
                miner.observe(&model_b);
                criterion::black_box(miner.mined().unwrap().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, mining);
criterion_main!(benches);
