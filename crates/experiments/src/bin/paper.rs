//! `paper` — the one CLI reproducing every table and figure of the PIECK
//! paper.
//!
//! ```text
//! paper <command> [operands] [--scale f] [--rounds n] [--seed s] [--full]
//!                 [--threads n] [--json dir] [--csv dir] [--quiet]
//!
//! paper list                 # available commands
//! paper table4 --scale 0.25  # Table IV at quarter scale
//! paper table3 ml100k ml1m   # Table III on two datasets
//! paper all --json out/      # everything, with JSON reports in out/
//! ```
//!
//! Every command prints a Markdown report to stdout (unless `--quiet`) and
//! optionally writes the same report as JSON/CSV. Suite-backed commands run
//! their scenario grid in parallel across `--threads` workers; results are
//! identical regardless of thread count.

use frs_experiments::paper::PaperCommand;
use frs_experiments::{CommonArgs, Report, ReportFormat};

fn print_usage() {
    eprintln!("usage: paper <command> [operands] [--scale f] [--rounds n] [--seed s] [--full]");
    eprintln!("                       [--threads n] [--json dir] [--csv dir] [--quiet]");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  list             list every reproduction command");
    eprintln!("  all              run every table and figure");
    for cmd in PaperCommand::all() {
        eprintln!("  {:<16} {}", cmd.name(), cmd.description());
    }
}

fn emit(report: &Report, args: &CommonArgs) {
    if !args.quiet {
        print!("{}", report.to_markdown());
    }
    if let Some(dir) = &args.json {
        match report.write_to(dir, ReportFormat::Json) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write JSON report: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = &args.csv {
        match report.write_to(dir, ReportFormat::Csv) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write CSV report: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_or_exit(cmd: PaperCommand, args: &CommonArgs) -> Report {
    cmd.run(args).unwrap_or_else(|msg| {
        eprintln!("paper {}: {msg}", cmd.name());
        std::process::exit(2);
    })
}

fn main() {
    let args = CommonArgs::parse();
    let Some(command) = args.positional.first().map(String::as_str) else {
        print_usage();
        std::process::exit(2);
    };

    match command {
        "list" => {
            for cmd in PaperCommand::all() {
                println!("{:<16} {}", cmd.name(), cmd.description());
            }
        }
        "all" => {
            for cmd in PaperCommand::all() {
                eprintln!("== paper {} ==", cmd.name());
                emit(&run_or_exit(cmd, &args), &args);
            }
        }
        name => match PaperCommand::from_name(name) {
            Some(cmd) => emit(&run_or_exit(cmd, &args), &args),
            None => {
                eprintln!("unknown command `{name}`");
                print_usage();
                std::process::exit(2);
            }
        },
    }
}
