//! Integration tests of the defense-side registry redesign: the paper's
//! defense built through the open registry is byte-identical to the
//! pre-refactor hand-wired special case; every `DefenseSel` params flip
//! re-keys the suite cache; and an out-of-crate *client-side* defense —
//! defined right here, never touching `DefenseKind` — runs end to end
//! through an `ExperimentSuite`.

use std::sync::Arc;

use pieck_frs::attacks::AttackKind;
use pieck_frs::data::DatasetSpec;
use pieck_frs::defense::{register_defense, DefenseKind, DefenseSel, FnDefenseFactory, ParamSpec};
use pieck_frs::experiments::cache::scenario_key;
use pieck_frs::experiments::scenario::{self, build_world, ScenarioConfig};
use pieck_frs::experiments::{ExperimentSuite, RunOptions, Sweep};
use pieck_frs::federation::{
    BenignClient, Client, LocalRegularizer, RoundContext, Simulation, SumAggregator,
};
use pieck_frs::metrics::{ExposureReport, QualityReport};
use pieck_frs::model::{GlobalGradients, GlobalModel, ModelKind};
use pieck_frs::pieck::{DefenseConfig, PieckDefense};
use proptest::prelude::*;

fn ours_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 42);
    cfg.federation.clients_per_round = pieck_frs::federation::ClientsPerRound::Count(24);
    cfg.rounds = 40;
    cfg.attack = AttackKind::PieckUea.into();
    cfg.defense = DefenseSel::named("ours");
    cfg.mined_top_n = 12;
    cfg
}

/// Golden test: the registry-built `"ours"` produces a byte-identical
/// `ScenarioOutcome` to the pre-refactor special case. The right-hand side
/// reproduces exactly what `scenario::build_simulation_with` hard-coded
/// before the redesign: every benign client armed with
/// `PieckDefense::new({top_n: mined_top_n.max(1), ..model-tuned defaults})`
/// plus plain-sum aggregation.
#[test]
fn registry_built_ours_matches_the_old_special_case_exactly() {
    let cfg = ours_cfg();

    // New path: everything through the registry.
    let via_registry = scenario::run(&cfg);

    // Old path, hand-wired. Same world, same seeds, same client order.
    let (_, split, targets) = build_world(&cfg);
    let train = Arc::new(split.train.clone());
    let mut rng =
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.federation.seed ^ 0x0DE1);
    let model = GlobalModel::new(&cfg.model, train.n_items(), &mut rng);
    let n_benign = train.n_users();
    let mut clients: Vec<Box<dyn Client>> = Vec::new();
    for u in 0..n_benign {
        // MF defaults were DefenseConfig::default() with the scenario's
        // mined N — the construction the deleted special case performed.
        let def_cfg = DefenseConfig {
            top_n: cfg.mined_top_n.max(1),
            ..DefenseConfig::default()
        };
        let client = BenignClient::new(
            u,
            Arc::clone(&train),
            cfg.model.embedding_dim,
            cfg.model.init_scale,
            cfg.federation.seed ^ ((u as u64) << 16) ^ 0xBE9,
        )
        .with_regularizer(Box::new(PieckDefense::new(def_cfg)));
        clients.push(Box::new(client));
    }
    let n_mal = cfg.n_malicious(n_benign);
    clients.extend(
        cfg.attack
            .build_clients(&cfg.attack_ctx(n_benign, n_mal, &targets)),
    );
    let mut sim = Simulation::builder(model)
        .clients(clients)
        .aggregator(Box::new(SumAggregator))
        .config(cfg.federation.clone())
        .build();
    sim.run(cfg.rounds);
    let benign = sim.benign_ids();
    let embs = sim.user_embeddings();
    let er = ExposureReport::compute(sim.model(), &embs, &benign, &train, &targets, cfg.eval_k);
    let hr = QualityReport::compute(sim.model(), &embs, &benign, &split, cfg.eval_k);

    assert_eq!(via_registry.targets, targets);
    assert_eq!(
        via_registry.er_percent,
        er.mean_percent(),
        "ER must be bit-identical"
    );
    assert_eq!(
        via_registry.hr_percent,
        hr.hr_percent(),
        "HR must be bit-identical"
    );
    assert_eq!(via_registry.ndcg, hr.ndcg, "NDCG must be bit-identical");
}

/// The NCF-tuned β/γ defaults moved from `ScenarioConfig::baseline` into
/// the build context; explicit params must override them and the defaults
/// must differ from MF's (the paper tunes per base model).
#[test]
fn model_tuned_defaults_flow_through_the_context() {
    let mf = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 1).defense_ctx();
    let ncf = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Ncf, 1).defense_ctx();
    assert_eq!((mf.default_beta, mf.default_gamma), (0.5, 0.5));
    assert_eq!((ncf.default_beta, ncf.default_gamma), (5.0, 10.0));
    assert_eq!(mf.model, ModelKind::Mf);
    assert_eq!(ncf.model, ModelKind::Ncf);
    assert_eq!(mf.embedding_dim, 16);
}

/// A deliberately blunt client-side defense living only in this test crate:
/// scales every uploaded item gradient by `tau`. With `tau = 0` benign
/// clients upload nothing, so the global model cannot learn — observable
/// proof the regularizer actually ran inside every client.
struct Attenuator {
    tau: f32,
}

impl LocalRegularizer for Attenuator {
    fn observe(&mut self, _ctx: &RoundContext, _model: &GlobalModel) {}

    fn apply(
        &mut self,
        _ctx: &RoundContext,
        _model: &GlobalModel,
        _user_embedding: &[f32],
        _local_items: &[u32],
        grads: &mut GlobalGradients,
        _d_user: &mut [f32],
    ) {
        for grad in grads.items.values_mut() {
            for v in grad.iter_mut() {
                *v *= self.tau;
            }
        }
    }

    fn name(&self) -> &'static str {
        "attenuate"
    }
}

#[test]
fn out_of_crate_client_side_defense_runs_through_a_suite() {
    register_defense(
        FnDefenseFactory::new("attenuate", "Attenuate", |_| Box::new(SumAggregator))
            .with_param_schema([ParamSpec::new("tau", "upload scale factor", "1.0")])
            .with_params_regularizer(|_ctx, params, _client_id| {
                Box::new(Attenuator {
                    tau: params
                        .get_f32("tau")
                        .expect("tau is numeric")
                        .unwrap_or(1.0),
                })
            })
            // PR-3 contract: runtime registrations fingerprint themselves so
            // same-name re-registrations re-key cached cells.
            .with_fingerprint("attenuate-v1 tau-default=1.0"),
    );
    assert!(DefenseSel::named("attenuate").is_client_side());

    let suite = ExperimentSuite::new("custom-def", "Custom defense suite").sweep(
        Sweep::new("grid", "none vs attenuated").over_defenses([
            DefenseSel::none(),
            DefenseSel::named("attenuate").with_param("tau", 0.0f32),
        ]),
    );
    let opts = RunOptions {
        scale: 0.08,
        seed: 11,
        rounds: Some(60),
        threads: 2,
        ..RunOptions::default()
    };
    let result = suite.run(&opts);
    let cells: Vec<_> = result.all_cells().collect();
    assert_eq!(cells.len(), 2);
    let hr_of = |name: &str| {
        cells
            .iter()
            .find(|c| c.cell.defense.name() == name)
            .unwrap()
            .outcome
            .hr_percent
    };
    assert!(
        hr_of("attenuate") < hr_of("none"),
        "zeroed uploads must hurt quality: {} vs {}",
        hr_of("attenuate"),
        hr_of("none")
    );
    // The registered label renders in reports.
    assert!(result.report().to_markdown().contains("Attenuate"));
}

/// A parameterized selection round-trips through the scenario config JSON
/// (the object `{name, params}` wire form).
#[test]
fn parameterized_scenario_config_round_trips() {
    let mut cfg = ours_cfg();
    cfg.defense = DefenseSel::named("ours")
        .with_param("beta", 0.75f32)
        .with_param("re1", false);
    let json = serde_json::to_string(&cfg).unwrap();
    assert!(json.contains("\"params\""), "{json}");
    let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.defense, cfg.defense);
    assert_eq!(back.canonical_json(), cfg.canonical_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every `DefenseSel` params field flip re-keys the suite cache: keys
    /// are stable under re-hashing, insensitive to insertion order, and
    /// sensitive to each individual parameter.
    #[test]
    fn every_params_field_flip_rekeys_the_cache(
        beta in 0.01f32..4.0,
        gamma in 0.01f32..4.0,
        mining_rounds in 1usize..5,
        top_n in 1usize..40,
        re1 in 0usize..2,
        re2 in 0usize..2,
    ) {
        let (re1, re2) = (re1 == 1, re2 == 1);
        let sel = DefenseSel::named("ours")
            .with_param("beta", beta)
            .with_param("gamma", gamma)
            .with_param("mining_rounds", mining_rounds)
            .with_param("top_n", top_n)
            .with_param("re1", re1)
            .with_param("re2", re2);
        let mut cfg = ours_cfg();
        cfg.defense = sel.clone();
        let key = scenario_key(&cfg);

        // Stable: same config, same key; insertion order is canonicalized.
        prop_assert_eq!(&key, &scenario_key(&cfg.clone()));
        let mut reordered = ours_cfg();
        reordered.defense = DefenseSel::named("ours")
            .with_param("re2", re2)
            .with_param("top_n", top_n)
            .with_param("re1", re1)
            .with_param("mining_rounds", mining_rounds)
            .with_param("gamma", gamma)
            .with_param("beta", beta);
        prop_assert_eq!(&key, &scenario_key(&reordered));

        // The bare selection (defaults) addresses a different cell.
        let mut bare = ours_cfg();
        bare.defense = DefenseSel::named("ours");
        prop_assert_ne!(&key, &scenario_key(&bare));

        // Each individual field flip re-keys.
        let flips: [DefenseSel; 6] = [
            sel.clone().with_param("beta", beta + 0.5),
            sel.clone().with_param("gamma", gamma + 0.5),
            sel.clone().with_param("mining_rounds", mining_rounds + 1),
            sel.clone().with_param("top_n", top_n + 1),
            sel.clone().with_param("re1", !re1),
            sel.clone().with_param("re2", !re2),
        ];
        for flipped in flips {
            let mut other = ours_cfg();
            other.defense = flipped.clone();
            prop_assert_ne!(&key, &scenario_key(&other));
        }
    }
}

/// Defense overrides at the run level (`--defense`) collapse the sweep's
/// defense axis to the single overriding selection.
#[test]
fn run_level_defense_override_collapses_the_axis() {
    let sweep = Sweep::new("s", "S").over_defenses(DefenseKind::all());
    let plain = sweep.expand(&RunOptions {
        rounds: Some(1),
        ..RunOptions::default()
    });
    assert_eq!(plain.len(), 8);

    let overridden = sweep.expand(&RunOptions {
        rounds: Some(1),
        defense: Some(DefenseSel::parse("ours:beta=0.5").unwrap()),
        ..RunOptions::default()
    });
    assert_eq!(overridden.len(), 1, "axis collapses to the override");
    assert_eq!(overridden[0].defense.name(), "ours");
    assert_eq!(
        overridden[0]
            .config
            .defense
            .params()
            .get_f32("beta")
            .unwrap(),
        Some(0.5)
    );

    // An override to a server-side rule running through `ours`-specific
    // ablation variants (the table6 shape) skips the inapplicable re1/re2
    // knobs instead of panicking at build time.
    use pieck_frs::experiments::ConfigPatch;
    let ablation = Sweep::new("a", "A")
        .over_defenses([DefenseKind::Ours])
        .over_variants([ConfigPatch {
            label: "Re1− Re2−".into(),
            use_re1: Some(false),
            use_re2: Some(false),
            ..ConfigPatch::default()
        }]);
    let krum = ablation.expand(&RunOptions {
        rounds: Some(1),
        defense: Some(DefenseSel::named("krum")),
        ..RunOptions::default()
    });
    assert!(
        krum[0].config.defense.params().is_empty(),
        "krum accepts no re1/re2: {}",
        krum[0].config.defense
    );
    assert!(krum[0]
        .config
        .defense
        .try_build(&krum[0].config.defense_ctx())
        .is_ok());
    // Without the override the ablation switches land as params.
    let ours = ablation.expand(&RunOptions {
        rounds: Some(1),
        ..RunOptions::default()
    });
    assert_eq!(
        ours[0].config.defense.to_string(),
        "ours:re1=false,re2=false"
    );

    // The dataset override collapses its axis the same way.
    use pieck_frs::experiments::PaperDataset;
    let sweep = Sweep::new("d", "D").over_datasets([PaperDataset::Ml100k, PaperDataset::Ml1m]);
    let overridden = sweep.expand(&RunOptions {
        rounds: Some(1),
        dataset: Some(PaperDataset::File("data/u.data".into())),
        ..RunOptions::default()
    });
    assert_eq!(overridden.len(), 1);
    assert_eq!(overridden[0].dataset.name(), "file:data/u.data");
    assert_eq!(
        overridden[0].config.dataset.file_path(),
        Some("data/u.data")
    );
}

/// `ConfigPatch`'s re1/re2/β/γ knobs now write into the selection's params
/// payload (there is no `our_defense` side channel anymore).
#[test]
fn config_patch_defense_knobs_route_into_selection_params() {
    use pieck_frs::experiments::ConfigPatch;

    let mut cfg = ours_cfg();
    let patch = ConfigPatch {
        label: "ablate".into(),
        use_re1: Some(false),
        beta: Some(2.5),
        ..ConfigPatch::default()
    };
    patch.apply(&mut cfg);
    assert_eq!(cfg.defense.params().get_bool("re1").unwrap(), Some(false));
    assert_eq!(cfg.defense.params().get_f32("beta").unwrap(), Some(2.5));
    assert_eq!(cfg.defense.params().get_bool("re2").unwrap(), None);
    // And the patched scenario still builds + runs through the registry.
    cfg.rounds = 4;
    let out = scenario::run(&cfg);
    assert!(out.er_percent.is_finite() && out.hr_percent.is_finite());
}
