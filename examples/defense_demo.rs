//! The paper's defense in action: the same PIECK attacks, with benign
//! clients adding the Re1/Re2 regularizers (Eq. 14–16) — exposure collapses
//! while recommendation quality is preserved.
//!
//! Run with: `cargo run --release --example defense_demo`

use pieck_frs::attacks::AttackKind;
use pieck_frs::defense::DefenseKind;
use pieck_frs::experiments::{paper_scenario, run, PaperDataset};
use pieck_frs::model::ModelKind;

fn main() {
    println!(
        "{:<12} {:<12} {:>8} {:>8}",
        "attack", "defense", "ER@10", "HR@10"
    );
    for attack in [AttackKind::PieckIpe, AttackKind::PieckUea] {
        for defense in [DefenseKind::NoDefense, DefenseKind::Ours] {
            let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.25, 7);
            cfg.attack = attack.into();
            cfg.defense = defense.into();
            cfg.rounds = 150;
            cfg.mined_top_n = if attack == AttackKind::PieckUea {
                30
            } else {
                10
            };
            let out = run(&cfg);
            println!(
                "{:<12} {:<12} {:>7.2}% {:>7.2}%",
                attack.label(),
                defense.label(),
                out.er_percent,
                out.hr_percent
            );
        }
    }
}
