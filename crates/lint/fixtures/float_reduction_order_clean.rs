//! Clean fixture: exact integer reductions, element types annotated.

pub fn count_sum(ns: &[u64]) -> u64 {
    ns.iter().sum::<u64>()
}

pub fn int_total(ns: &[u64]) -> u64 {
    ns.iter().fold(0, |acc, n| acc + n)
}
