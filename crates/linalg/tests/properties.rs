//! Property-based tests for the numeric primitives.
//!
//! These pin down the mathematical invariants the rest of the stack relies on:
//! metric properties of distances, bounds on cosine, simplex membership of
//! softmax, non-negativity of KL, robustness bounds of median/trimmed-mean,
//! and consistency between ranking primitives.

use frs_linalg::*;
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn cosine_bounded(a in vec_strategy(8), b in vec_strategy(8)) {
        let c = cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn cosine_symmetric(a in vec_strategy(6), b in vec_strategy(6)) {
        prop_assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn cosine_scale_invariant(a in vec_strategy(5), b in vec_strategy(5), s in 0.1f32..10.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
        prop_assert!((cosine(&scaled, &b) - cosine(&a, &b)).abs() < 1e-4);
    }

    #[test]
    fn l2_distance_triangle_inequality(
        a in vec_strategy(6), b in vec_strategy(6), c in vec_strategy(6)
    ) {
        let ab = l2_distance(&a, &b);
        let bc = l2_distance(&b, &c);
        let ac = l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-4);
    }

    #[test]
    fn l2_distance_symmetric_and_identity(a in vec_strategy(6), b in vec_strategy(6)) {
        prop_assert!((l2_distance(&a, &b) - l2_distance(&b, &a)).abs() < 1e-5);
        prop_assert!(l2_distance(&a, &a) < 1e-6);
    }

    #[test]
    fn softmax_is_simplex_point(a in vec_strategy(7)) {
        let s = softmax(&a);
        prop_assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        prop_assert!(s.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn kl_nonnegative(a in vec_strategy(6), b in vec_strategy(6)) {
        prop_assert!(kl_divergence(&a, &b) >= 0.0);
    }

    #[test]
    fn kl_zero_iff_equal_distribution(a in vec_strategy(6), shift in -5.0f32..5.0) {
        // softmax is shift-invariant, so logits differing by a constant give KL 0.
        let b: Vec<f32> = a.iter().map(|x| x + shift).collect();
        prop_assert!(kl_divergence(&a, &b) < 1e-4);
    }

    #[test]
    fn median_within_input_range(mut xs in prop::collection::vec(-100.0f32..100.0, 1..40)) {
        let lo = xs.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let m = median_inplace(&mut xs);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn trimmed_mean_within_surviving_range(
        mut xs in prop::collection::vec(-100.0f32..100.0, 1..40),
        trim in 0usize..10,
    ) {
        let lo = xs.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let m = trimmed_mean_inplace(&mut xs, trim);
        prop_assert!(m >= lo - 1e-4 && m <= hi + 1e-4);
    }

    #[test]
    fn coordinate_median_bounded_per_dim(
        vs in prop::collection::vec(vec_strategy(4), 1..12)
    ) {
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let med = coordinate_median(&refs);
        for d in 0..4 {
            let lo = vs.iter().map(|v| v[d]).fold(f32::INFINITY, f32::min);
            let hi = vs.iter().map(|v| v[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(med[d] >= lo - 1e-6 && med[d] <= hi + 1e-6);
        }
    }

    #[test]
    fn top_k_is_sorted_prefix_of_argsort(scores in vec_strategy(20), k in 0usize..25) {
        let full = argsort_desc(&scores);
        let top = top_k_desc(&scores, k);
        prop_assert_eq!(&top[..], &full[..k.min(scores.len())]);
    }

    #[test]
    fn rank_of_agrees_with_argsort_position(scores in vec_strategy(15)) {
        let order = argsort_desc(&scores);
        for (pos, &i) in order.iter().enumerate() {
            prop_assert_eq!(rank_of(&scores, i), pos);
        }
    }

    #[test]
    fn clip_l2_norm_enforces_bound(mut a in vec_strategy(6), max in 0.1f32..5.0) {
        clip_l2_norm(&mut a, max);
        prop_assert!(l2_norm(&a) <= max * (1.0 + 1e-4));
    }

    #[test]
    fn sigmoid_in_unit_interval(x in -50.0f32..50.0) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((log_sigmoid(x) - s.max(1e-30).ln()).abs() < 1e-3);
    }

    #[test]
    fn seed_stream_deterministic(seed in any::<u64>(), idx in any::<u64>()) {
        let s1 = SeedStream::new(seed);
        let s2 = SeedStream::new(seed);
        prop_assert_eq!(s1.derive("label", idx), s2.derive("label", idx));
    }

    #[test]
    fn matvec_linearity(
        data in prop::collection::vec(-5.0f32..5.0, 12),
        x in vec_strategy(4),
        y in vec_strategy(4),
    ) {
        let m = Matrix::from_vec(3, 4, data);
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for i in 0..3 {
            prop_assert!((lhs[i] - (mx[i] + my[i])).abs() < 1e-3);
        }
    }
}
