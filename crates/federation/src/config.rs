//! Federation-level hyper-parameters.

use frs_model::LossKind;
use serde::{Deserialize, Serialize};

/// Width policy for the per-round client fan-out (see
/// [`Simulation::run_round`](crate::Simulation::run_round)).
///
/// Execution-only: results are bit-identical under every policy and width
/// (uploads are re-ordered by client id before aggregation), so suite caches
/// normalize this field out of their keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundThreads {
    /// A frozen width: exactly `n` threads every round (1 = sequential).
    Fixed(usize),
    /// Take the width from the [`CoreLease`](crate::CoreLease) attached to
    /// the simulation, re-read every round — so a long run picks up cores
    /// released by finished sibling workloads mid-flight. Without an
    /// attached lease this runs sequentially: parallelism is something the
    /// budget grants, never assumed.
    Auto,
}

impl Default for RoundThreads {
    fn default() -> Self {
        Self::Fixed(1)
    }
}

impl RoundThreads {
    /// Parses the CLI form: `auto` or a positive thread count.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(Self::Auto);
        }
        match s.parse::<usize>() {
            Ok(0) => Err("round threads must be ≥ 1 (or `auto`)".into()),
            Ok(n) => Ok(Self::Fixed(n)),
            Err(_) => Err(format!("bad round threads `{s}`; use a count or `auto`")),
        }
    }

    /// True for the budget-driven policy.
    pub fn is_auto(&self) -> bool {
        matches!(self, Self::Auto)
    }
}

impl std::fmt::Display for RoundThreads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fixed(n) => write!(f, "{n}"),
            Self::Auto => f.write_str("auto"),
        }
    }
}

// Serialized as what the CLI accepts: a number, or the string "auto".
impl serde::Serialize for RoundThreads {
    fn to_value(&self) -> serde::Value {
        match self {
            Self::Fixed(n) => serde::Value::Number(serde::Number::U64(*n as u64)),
            Self::Auto => serde::Value::String("auto".into()),
        }
    }
}

impl serde::Deserialize for RoundThreads {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(n) = v.as_u64() {
            return usize::try_from(n)
                .map(Self::Fixed)
                .map_err(|_| serde::Error::new(format!("thread count {n} exceeds usize")));
        }
        match v.as_str() {
            Some("auto") => Ok(Self::Auto),
            _ => Err(serde::Error::new(format!(
                "expected thread count or \"auto\", got {}",
                v.kind()
            ))),
        }
    }
}

/// Per-round participation width `|U^r|`: how many of the registered
/// clients the server samples each round.
///
/// A paper-style cell pins an absolute [`Count`](Self::Count) (256; 1024 for
/// AZ+MF). Million-client populations instead give a
/// [`Fraction`](Self::Fraction) of the registry, so the same config scales
/// with `n_users`. Either way the sample is drawn by the same seeded
/// partial Fisher–Yates shuffle, so reports are byte-stable at any round
/// width and cache-replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientsPerRound {
    /// Exactly `n` clients (capped at the population size).
    Count(usize),
    /// A fraction of the registered population, in `(0, 1]`; the effective
    /// count is rounded to the nearest client and clamped to `[1, n]`.
    Fraction(f64),
}

impl Default for ClientsPerRound {
    fn default() -> Self {
        Self::Count(256)
    }
}

impl ClientsPerRound {
    /// The concrete sample size for a population of `n` clients.
    pub fn effective(&self, n: usize) -> usize {
        match *self {
            Self::Count(k) => k.min(n),
            Self::Fraction(_) if n == 0 => 0,
            // Rounding to an integer count is the point of the cast; the
            // clamp keeps it in [1, n] regardless of f.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Self::Fraction(f) => (((n as f64) * f).round() as usize).clamp(1, n),
        }
    }

    /// Parses the CLI form: a count (`256`), a fraction (`0.01`), or a
    /// percentage (`25%`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some(pct) = s.strip_suffix('%') {
            let p: f64 = pct
                .trim()
                .parse()
                .map_err(|_| format!("bad percentage `{s}`"))?;
            return Self::Fraction(p / 100.0).validated();
        }
        if s.contains(['.', 'e', 'E']) {
            let f: f64 = s.parse().map_err(|_| format!("bad fraction `{s}`"))?;
            return Self::Fraction(f).validated();
        }
        match s.parse::<usize>() {
            Ok(n) => Self::Count(n).validated(),
            Err(_) => Err(format!(
                "bad clients-per-round `{s}`; use a count, fraction, or percentage"
            )),
        }
    }

    fn validated(self) -> Result<Self, String> {
        match self {
            Self::Count(0) => Err("clients_per_round count must be ≥ 1".into()),
            Self::Fraction(f) if !(f.is_finite() && f > 0.0 && f <= 1.0) => {
                Err("clients_per_round fraction must lie in (0, 1]".into())
            }
            ok => Ok(ok),
        }
    }
}

impl std::fmt::Display for ClientsPerRound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Count(n) => write!(f, "{n}"),
            Self::Fraction(x) => write!(f, "{x}"),
        }
    }
}

// Serialized as a bare number: integers mean a count, anything fractional a
// fraction — matching what the CLI accepts. Deserialization matches the
// `Number` variant directly (the shim's `as_u64` coerces integral floats,
// which would silently turn `1.0` = "everyone" into a count of 1).
impl serde::Serialize for ClientsPerRound {
    fn to_value(&self) -> serde::Value {
        match *self {
            Self::Count(n) => serde::Value::Number(serde::Number::U64(n as u64)),
            Self::Fraction(f) => serde::Value::Number(serde::Number::F64(f)),
        }
    }
}

impl serde::Deserialize for ClientsPerRound {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Number(serde::Number::U64(n)) => usize::try_from(*n)
                .map(Self::Count)
                .map_err(|_| serde::Error::new(format!("client count {n} exceeds usize"))),
            serde::Value::Number(serde::Number::I64(n)) if *n >= 0 => usize::try_from(*n)
                .map(Self::Count)
                .map_err(|_| serde::Error::new(format!("client count {n} exceeds usize"))),
            serde::Value::Number(serde::Number::F64(f)) => Ok(Self::Fraction(*f)),
            _ => Err(serde::Error::new(format!(
                "expected client count or fraction, got {}",
                v.kind()
            ))),
        }
    }
}

/// Protocol configuration (paper Section III-A plus the supplementary
/// learning-rate and loss variations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// Server learning rate `η` applied to aggregated gradients.
    pub learning_rate: f32,
    /// Client-side learning rate for the private user embedding. `None`
    /// means "same as the server's" (the paper's standard, consistent
    /// setting); `Some(lr)` reproduces the supplementary Table X
    /// inconsistent-rate scenarios.
    pub client_learning_rate: Option<f32>,
    /// When set, the client learning rate cycles linearly between
    /// `(min, max)` with a 100-round period — the supplementary Table X
    /// "dynamic inconsistent learning rate" scenario.
    pub client_lr_cycle: Option<(f32, f32)>,
    /// Clients sampled per round, `|U^r|` — an absolute count (256 in the
    /// paper; 1024 for AZ+MF) or a fraction of the registered population.
    pub clients_per_round: ClientsPerRound,
    /// Negative-sampling ratio `q` (1 by default, following \[32\]).
    pub negative_ratio: usize,
    /// Training loss (BCE by default; BPR for Table XI).
    pub loss: LossKind,
    /// Root seed — every random decision in the simulation derives from it.
    pub seed: u64,
    /// Per-round client fan-out width policy. Execution-only: results are
    /// identical under every value.
    pub round_threads: RoundThreads,
}

impl Default for FederationConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1.0,
            client_learning_rate: None,
            client_lr_cycle: None,
            clients_per_round: ClientsPerRound::default(),
            negative_ratio: 1,
            loss: LossKind::Bce,
            seed: 0x5eed,
            round_threads: RoundThreads::default(),
        }
    }
}

impl FederationConfig {
    /// Effective client learning rate for a given round (honours the cycling
    /// schedule when configured).
    pub fn client_lr_at(&self, round: usize) -> f32 {
        if let Some((lo, hi)) = self.client_lr_cycle {
            let period = 100.0;
            let phase = (round % 100) as f32 / period;
            return lo + (hi - lo) * phase;
        }
        self.client_lr()
    }

    /// Effective (static) client learning rate.
    pub fn client_lr(&self) -> f32 {
        self.client_learning_rate.unwrap_or(self.learning_rate)
    }

    /// Basic sanity checks, run once when a simulation is built.
    pub fn validate(&self) -> Result<(), String> {
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err("learning_rate must be positive and finite".into());
        }
        if let Some(lr) = self.client_learning_rate {
            if lr <= 0.0 || !lr.is_finite() {
                return Err("client_learning_rate must be positive and finite".into());
            }
        }
        if let Some((lo, hi)) = self.client_lr_cycle {
            if lo <= 0.0 || hi < lo || !hi.is_finite() {
                return Err("client_lr_cycle must satisfy 0 < min ≤ max < ∞".into());
            }
        }
        self.clients_per_round.validated().map(|_| ())?;
        if self.negative_ratio == 0 {
            return Err("negative_ratio must be ≥ 1".into());
        }
        if self.round_threads == RoundThreads::Fixed(0) {
            return Err("round_threads must be ≥ 1 (or auto)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // invalid configs are built field-by-field
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(FederationConfig::default().validate().is_ok());
    }

    #[test]
    fn client_lr_falls_back_to_server() {
        let mut c = FederationConfig::default();
        assert_eq!(c.client_lr(), c.learning_rate);
        c.client_learning_rate = Some(0.01);
        assert_eq!(c.client_lr(), 0.01);
    }

    #[test]
    fn cycling_lr_interpolates_over_period() {
        let mut c = FederationConfig::default();
        c.client_lr_cycle = Some((0.01, 1.0));
        assert!(c.validate().is_ok());
        assert!((c.client_lr_at(0) - 0.01).abs() < 1e-6);
        assert!(c.client_lr_at(50) > 0.4 && c.client_lr_at(50) < 0.6);
        assert!((c.client_lr_at(100) - 0.01).abs() < 1e-6, "period wraps");
        let mut bad = FederationConfig::default();
        bad.client_lr_cycle = Some((1.0, 0.5));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn invalid_values_rejected() {
        let mut c = FederationConfig::default();
        c.learning_rate = 0.0;
        assert!(c.validate().is_err());
        let mut c = FederationConfig::default();
        c.clients_per_round = ClientsPerRound::Count(0);
        assert!(c.validate().is_err());
        let mut c = FederationConfig::default();
        c.clients_per_round = ClientsPerRound::Fraction(0.0);
        assert!(c.validate().is_err());
        let mut c = FederationConfig::default();
        c.clients_per_round = ClientsPerRound::Fraction(1.5);
        assert!(c.validate().is_err());
        let mut c = FederationConfig::default();
        c.negative_ratio = 0;
        assert!(c.validate().is_err());
        let mut c = FederationConfig::default();
        c.client_learning_rate = Some(f32::NAN);
        assert!(c.validate().is_err());
        let mut c = FederationConfig::default();
        c.round_threads = RoundThreads::Fixed(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn round_threads_parse_and_display() {
        assert_eq!(RoundThreads::parse("auto"), Ok(RoundThreads::Auto));
        assert_eq!(RoundThreads::parse("AUTO"), Ok(RoundThreads::Auto));
        assert_eq!(RoundThreads::parse("4"), Ok(RoundThreads::Fixed(4)));
        assert!(RoundThreads::parse("0").is_err());
        assert!(RoundThreads::parse("several").is_err());
        assert_eq!(RoundThreads::Auto.to_string(), "auto");
        assert_eq!(RoundThreads::Fixed(8).to_string(), "8");
        assert!(RoundThreads::Auto.is_auto());
        assert!(!RoundThreads::default().is_auto());
    }

    #[test]
    fn round_threads_serde_round_trips() {
        use serde::{Deserialize as _, Serialize as _};
        for policy in [
            RoundThreads::Auto,
            RoundThreads::Fixed(1),
            RoundThreads::Fixed(7),
        ] {
            let v = policy.to_value();
            assert_eq!(RoundThreads::from_value(&v), Ok(policy));
        }
        assert!(RoundThreads::from_value(&serde::Value::Bool(true)).is_err());
        assert!(RoundThreads::from_value(&serde::Value::String("fast".into())).is_err());
    }

    #[test]
    fn clients_per_round_effective_counts() {
        assert_eq!(ClientsPerRound::Count(256).effective(1000), 256);
        assert_eq!(ClientsPerRound::Count(256).effective(100), 100, "capped");
        assert_eq!(ClientsPerRound::Fraction(0.25).effective(1000), 250);
        assert_eq!(ClientsPerRound::Fraction(1.0).effective(7), 7);
        assert_eq!(
            ClientsPerRound::Fraction(1e-9).effective(1000),
            1,
            "fraction never rounds to an empty round"
        );
        assert_eq!(ClientsPerRound::Fraction(0.5).effective(0), 0);
    }

    #[test]
    fn clients_per_round_parse_and_display() {
        assert_eq!(
            ClientsPerRound::parse("256"),
            Ok(ClientsPerRound::Count(256))
        );
        assert_eq!(
            ClientsPerRound::parse("0.01"),
            Ok(ClientsPerRound::Fraction(0.01))
        );
        assert_eq!(
            ClientsPerRound::parse("25%"),
            Ok(ClientsPerRound::Fraction(0.25))
        );
        assert_eq!(
            ClientsPerRound::parse("1e-3"),
            Ok(ClientsPerRound::Fraction(0.001))
        );
        assert!(ClientsPerRound::parse("0").is_err());
        assert!(ClientsPerRound::parse("0.0").is_err());
        assert!(ClientsPerRound::parse("1.5").is_err());
        assert!(ClientsPerRound::parse("150%").is_err());
        assert!(ClientsPerRound::parse("lots").is_err());
        assert_eq!(ClientsPerRound::Count(64).to_string(), "64");
        assert_eq!(ClientsPerRound::Fraction(0.25).to_string(), "0.25");
    }

    #[test]
    fn clients_per_round_serde_round_trips() {
        use serde::{Deserialize as _, Serialize as _};
        for cpr in [
            ClientsPerRound::Count(1),
            ClientsPerRound::Count(1024),
            ClientsPerRound::Fraction(0.25),
            // Integral fraction: "everyone, every round". The shim's JSON
            // writer prints this as `1.0` and the parser reads it back as an
            // F64 — it must NOT collapse into Count(1).
            ClientsPerRound::Fraction(1.0),
        ] {
            let v = cpr.to_value();
            assert_eq!(ClientsPerRound::from_value(&v), Ok(cpr));
            let json = serde_json::to_string(&v).expect("encode");
            let back = serde_json::from_str(&json).expect("decode");
            assert_eq!(ClientsPerRound::from_value(&back), Ok(cpr), "via {json}");
        }
        assert!(ClientsPerRound::from_value(&serde::Value::String("8".into())).is_err());
    }
}
