//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON text and parses JSON text back, exposing the usual
//! `to_string` / `to_string_pretty` / `from_str` / `to_value` / `from_value`
//! entry points.

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Two-space indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// **Canonical** JSON text, suitable for content hashing: object keys are
/// emitted in sorted (byte-lexicographic) order, there is no insignificant
/// whitespace, and numbers render in the shortest form that round-trips
/// (`u64`/`i64` as plain integers, whole `f64`s with a trailing `.0`).
///
/// Two values that compare equal as [`Value`] trees — regardless of the
/// order their object keys were inserted in — always canonicalize to the
/// same byte string. The shim's [`Map`] is a `BTreeMap`, so plain
/// [`to_string`] already satisfies this; this entry point *documents and
/// guarantees* the property for callers that hash the output (see
/// `frs_experiments::cache`), independent of how `Map` is represented in
/// the future.
pub fn to_string_canonical<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_canonical(&mut out, &value.to_value());
    Ok(out)
}

/// Canonical writer: like the compact writer, but sorts object keys
/// explicitly instead of relying on the map's iteration order.
fn write_canonical(out: &mut String, v: &Value) {
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            let mut entries: Vec<(&String, &Value)> = map.iter().collect();
            entries.sort_by_key(|(k, _)| k.as_bytes());
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_canonical(out, value);
            }
            out.push('}');
        }
        scalar => write_value(out, scalar, None, 0),
    }
}

// ------------------------------------------------------------------ writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Object(map) => {
            let entries: Vec<(&String, &Value)> = map.iter().collect();
            write_seq(out, indent, level, '{', '}', entries.len(), |out, i| {
                write_string(out, entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, entries[i].1, indent, level + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            let _ = write!(out, "{:1$}", "", width * (level + 1));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        let _ = write!(out, "{:1$}", "", width * level);
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::F64(x) if !x.is_finite() => out.push_str("null"),
        Number::F64(x) if x.fract() == 0.0 && x.abs() < 1e15 => {
            let _ = write!(out, "{x:.1}");
        }
        Number::F64(x) => {
            // `{}` prints the shortest representation that round-trips.
            let _ = write!(out, "{x}");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing JSON input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                c as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|_| Value::Null),
            b't' => self.eat_keyword("true").map(|_| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|_| Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u codepoint"))?,
                            );
                        }
                        c => return Err(Error::new(format!("bad escape `\\{}`", c as char))),
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .ok_or_else(|| Error::new("truncated UTF-8"))?;
                        out.push_str(
                            std::str::from_utf8(chunk).map_err(|_| Error::new("bad UTF-8"))?,
                        );
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected number at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "42", "-7", "1.5", "\"hi\\n\""] {
            let v = parse(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json, "{json}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let json = r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#;
        let v = parse(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = parse(r#"{"a":[1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]\n"), "{pretty}");
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX.to_string();
        let v = parse(&big).unwrap();
        assert_eq!(to_string(&v).unwrap(), big);
    }

    #[test]
    fn float_whole_numbers_keep_a_decimal_point() {
        // Distinguishes f64 2.0 from integer 2 so round-trips stay typed.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(f32, f32)> = vec![(1.0, 2.5), (-3.0, 0.125)];
        let json = to_string(&v).unwrap();
        let back: Vec<(f32, f32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn canonical_matches_compact_and_sorts_keys() {
        let json = r#"{"b":{"z":1,"a":[true,null]},"a":2.5}"#;
        let v = parse(json).unwrap();
        let canonical = to_string_canonical(&v).unwrap();
        assert_eq!(canonical, r#"{"a":2.5,"b":{"a":[true,null],"z":1}}"#);
        // With a BTreeMap-backed Map the compact writer agrees.
        assert_eq!(canonical, to_string(&v).unwrap());
    }

    #[test]
    fn canonical_is_insertion_order_independent() {
        let pairs = [("zeta", 0u64), ("alpha", 1), ("Mid", 2), ("03", 3)];
        let mut forward = Map::new();
        let mut backward = Map::new();
        for &(key, n) in pairs.iter() {
            forward.insert(key.to_string(), Value::Number(Number::U64(n)));
        }
        for &(key, n) in pairs.iter().rev() {
            backward.insert(key.to_string(), Value::Number(Number::U64(n)));
        }
        assert_eq!(
            to_string_canonical(&Value::Object(forward)).unwrap(),
            to_string_canonical(&Value::Object(backward)).unwrap()
        );
    }

    #[test]
    fn canonical_round_trips() {
        let json = r#"{"seed":18446744073709551615,"w":[1.5,-2.0,"x"]}"#;
        let v = parse(json).unwrap();
        let canonical = to_string_canonical(&v).unwrap();
        assert_eq!(parse(&canonical).unwrap(), v);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
