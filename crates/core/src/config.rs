//! PIECK attack configuration.

use serde::{Deserialize, Serialize};

use crate::ipe::IpeConfig;
use crate::uea::UeaConfig;

/// Which PIECK solution a malicious client runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PieckVariant {
    /// PIECK-IPE (Algorithm 2): item-popularity enhancement.
    Ipe(IpeConfig),
    /// PIECK-UEA (Algorithm 3): user-embedding approximation.
    Uea(UeaConfig),
}

impl PieckVariant {
    /// Table label ("PIECK-IPE" / "PIECK-UEA").
    pub fn label(&self) -> &'static str {
        match self {
            PieckVariant::Ipe(_) => "PIECK-IPE",
            PieckVariant::Uea(_) => "PIECK-UEA",
        }
    }
}

/// How multiple target items are promoted (supplementary Table IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MultiTargetStrategy {
    /// Craft a separate poisonous gradient per target.
    TrainTogether,
    /// Optimize one target and upload `|T|` copies of its gradient — the
    /// paper's cheap, interference-free strategy (used in Section VI-G).
    TrainOneThenCopy,
}

/// Full configuration of a PIECK malicious client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PieckConfig {
    /// `R̃`: mining transitions before attacking (paper default 2).
    pub mining_rounds: usize,
    /// `N`: mined popular-set size (10 for IPE, larger for UEA in the paper).
    pub top_n: usize,
    /// The attack solution and its parameters.
    pub variant: PieckVariant,
    /// Target items `T` to promote.
    pub targets: Vec<u32>,
    /// Multi-target handling.
    pub multi_target: MultiTargetStrategy,
    /// Scale applied to uploaded poison (1.0 = the raw Algorithm 2/3
    /// gradient). Exposed for ablations on attack strength.
    pub gradient_scale: f32,
}

impl PieckConfig {
    /// Paper-default IPE attack on the given targets.
    pub fn ipe(targets: Vec<u32>) -> Self {
        Self {
            mining_rounds: 2,
            top_n: 10,
            variant: PieckVariant::Ipe(IpeConfig::default()),
            targets,
            multi_target: MultiTargetStrategy::TrainOneThenCopy,
            gradient_scale: 1.0,
        }
    }

    /// Paper-default UEA attack on the given targets.
    pub fn uea(targets: Vec<u32>) -> Self {
        Self {
            mining_rounds: 2,
            top_n: 50,
            variant: PieckVariant::Uea(UeaConfig::default()),
            targets,
            multi_target: MultiTargetStrategy::TrainOneThenCopy,
            gradient_scale: 1.0,
        }
    }

    /// Sanity checks (run when a client is built).
    pub fn validate(&self) -> Result<(), String> {
        if self.mining_rounds == 0 {
            return Err("mining_rounds must be ≥ 1".into());
        }
        if self.top_n == 0 {
            return Err("top_n must be ≥ 1".into());
        }
        if self.targets.is_empty() {
            return Err("need at least one target item".into());
        }
        if self.gradient_scale <= 0.0 || !self.gradient_scale.is_finite() {
            return Err("gradient_scale must be positive and finite".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(PieckConfig::ipe(vec![3]).validate().is_ok());
        assert!(PieckConfig::uea(vec![3, 4]).validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = PieckConfig::ipe(vec![1]);
        c.targets.clear();
        assert!(c.validate().is_err());
        let mut c = PieckConfig::ipe(vec![1]);
        c.mining_rounds = 0;
        assert!(c.validate().is_err());
        let mut c = PieckConfig::ipe(vec![1]);
        c.gradient_scale = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(PieckConfig::ipe(vec![1]).variant.label(), "PIECK-IPE");
        assert_eq!(PieckConfig::uea(vec![1]).variant.label(), "PIECK-UEA");
    }
}
