//! Ranking and top-k selection.
//!
//! Recommendation lists are "top-K by predicted score over uninteracted
//! items"; the popular-item miner is "top-N by accumulated Δ-Norm". Both run
//! over every item, so selection uses a partial `select_nth_unstable` pass
//! (O(m) expected) followed by a sort of only the k survivors.

/// Indices `0..scores.len()` sorted by descending score. Ties break by
/// ascending index so results are deterministic.
pub fn argsort_desc(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx
}

/// The `k` indices with the highest scores, in descending score order.
/// Returns all indices when `k >= len`.
pub fn top_k_desc(scores: &[f32], k: usize) -> Vec<usize> {
    let n = scores.len();
    if k == 0 || n == 0 {
        return Vec::new();
    }
    if k >= n {
        return argsort_desc(scores);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    // Partition so the k largest (by score, ties by low index) sit in idx[..k].
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        scores[b].total_cmp(&scores[a]).then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx
}

/// Like [`top_k_desc`] but only considers indices for which `eligible` returns
/// true — e.g. ranking uninteracted items only (ER@K excludes interacted
/// items, Eq. 3).
pub fn top_k_desc_filtered(
    scores: &[f32],
    k: usize,
    eligible: impl FnMut(usize) -> bool,
) -> Vec<usize> {
    let mut out = Vec::new();
    top_k_desc_filtered_into(scores, k, eligible, &mut out);
    out
}

/// [`top_k_desc_filtered`] writing into a caller-owned buffer so per-user
/// metric loops (ER@K over the whole population) allocate nothing after the
/// first user. `out` is cleared, used as the candidate scratch for the partial
/// select, and left holding the result.
pub fn top_k_desc_filtered_into(
    scores: &[f32],
    k: usize,
    mut eligible: impl FnMut(usize) -> bool,
    out: &mut Vec<usize>,
) {
    out.clear();
    out.extend((0..scores.len()).filter(|&i| eligible(i)));
    if out.is_empty() || k == 0 {
        out.clear();
        return;
    }
    if k < out.len() {
        out.select_nth_unstable_by(k - 1, |&a, &b| {
            scores[b].total_cmp(&scores[a]).then(a.cmp(&b))
        });
        out.truncate(k);
    }
    out.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
}

/// Sum of the `k` smallest values, accumulated in ascending value order.
///
/// Uses a partial `select_nth_unstable` pass and sorts only the surviving
/// prefix, but the summed value sequence — and therefore every intermediate
/// rounding step — is exactly the one a full ascending sort would produce, so
/// the result is bitwise-identical to `sort + prefix sum`. (Values tied at the
/// selection boundary are equal, so which of them land in the prefix cannot
/// change the sum.) Reorders `values` in place.
pub fn sum_k_smallest(values: &mut [f32], k: usize) -> f32 {
    let k = k.min(values.len());
    if k == 0 {
        // `Iterator::sum::<f32>()` of nothing is -0.0 (the IEEE additive
        // identity); return the same bits the reference prefix sum would.
        return values[..0].iter().sum();
    }
    if k < values.len() {
        values.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
    }
    values[..k].sort_unstable_by(|a, b| a.total_cmp(b));
    values[..k].iter().sum()
}

/// Zero-based rank of `target` when all entries are sorted descending, i.e.
/// the number of entries strictly greater than `scores[target]` (earlier
/// indices win ties, matching [`argsort_desc`]). Used by HR@K: a hit means
/// `rank_of(...) < K`.
pub fn rank_of(scores: &[f32], target: usize) -> usize {
    let t = scores[target];
    scores
        .iter()
        .enumerate()
        .filter(|&(i, &s)| s > t || (s == t && i < target))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_orders_descending() {
        assert_eq!(argsort_desc(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
    }

    #[test]
    fn argsort_breaks_ties_by_index() {
        assert_eq!(argsort_desc(&[1.0, 1.0, 2.0]), vec![2, 0, 1]);
    }

    #[test]
    fn top_k_matches_argsort_prefix() {
        let scores = [0.3, 0.7, 0.7, -0.2, 1.5, 0.0, 0.9];
        for k in 0..=scores.len() + 1 {
            let full = argsort_desc(&scores);
            let got = top_k_desc(&scores, k);
            assert_eq!(got, full[..k.min(scores.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn top_k_filtered_excludes_ineligible() {
        let scores = [10.0, 9.0, 8.0, 7.0];
        let got = top_k_desc_filtered(&scores, 2, |i| i != 0);
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn top_k_filtered_fewer_candidates_than_k() {
        let scores = [1.0, 2.0, 3.0];
        let got = top_k_desc_filtered(&scores, 10, |i| i % 2 == 0);
        assert_eq!(got, vec![2, 0]);
    }

    #[test]
    fn rank_of_counts_strictly_greater() {
        let scores = [0.5, 2.0, 1.0, 0.5];
        assert_eq!(rank_of(&scores, 1), 0);
        assert_eq!(rank_of(&scores, 2), 1);
        assert_eq!(rank_of(&scores, 0), 2);
        assert_eq!(rank_of(&scores, 3), 3); // tie resolved toward earlier index
    }

    #[test]
    fn top_k_filtered_into_reuses_buffer() {
        let scores = [0.3, 0.7, 0.7, -0.2, 1.5, 0.0, 0.9];
        let mut buf = vec![99usize; 32];
        for k in 0..=scores.len() + 1 {
            top_k_desc_filtered_into(&scores, k, |i| i != 4, &mut buf);
            assert_eq!(buf, top_k_desc_filtered(&scores, k, |i| i != 4), "k={k}");
        }
        top_k_desc_filtered_into(&scores, 3, |_| false, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn sum_k_smallest_matches_sorted_prefix() {
        let base = [3.5f32, -1.0, 2.25, -1.0, 0.0, 7.5, 2.25, -4.0, 0.5];
        for k in 0..=base.len() + 1 {
            let mut xs = base.to_vec();
            let got = sum_k_smallest(&mut xs, k);
            let mut sorted = base.to_vec();
            sorted.sort_unstable_by(f32::total_cmp);
            let want: f32 = sorted[..k.min(sorted.len())].iter().sum();
            assert_eq!(got.to_bits(), want.to_bits(), "k={k}");
        }
        assert_eq!(sum_k_smallest(&mut [], 3), 0.0);
    }

    #[test]
    fn rank_consistent_with_argsort() {
        let scores = [0.3, 0.7, -0.1, 0.7, 0.0];
        let order = argsort_desc(&scores);
        for (pos, &i) in order.iter().enumerate() {
            assert_eq!(rank_of(&scores, i), pos, "item {i}");
        }
    }
}
