//! Per-round and cumulative training statistics (cost analysis, Fig. 6b).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// What one communication round did and cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundStats {
    pub round: usize,
    /// Clients sampled this round.
    pub n_selected: usize,
    /// Of those, how many were attacker-controlled.
    pub n_malicious_selected: usize,
    /// Distinct items that received gradient uploads.
    pub n_items_updated: usize,
    /// Serialized size of all uploads, in bytes (wire encoding).
    pub upload_bytes: usize,
    /// Fan-out width the round's client computation actually used (under
    /// `RoundThreads::Auto` this can change between rounds as the shared
    /// core budget's lease grows or shrinks).
    pub n_threads: usize,
    /// Wall-clock time of the whole round.
    #[serde(skip, default)]
    pub elapsed: Duration,
}

/// Aggregate over a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingStats {
    pub rounds: usize,
    pub total_selected: usize,
    pub total_malicious_selected: usize,
    pub total_upload_bytes: usize,
    /// Largest per-round fan-out width observed across the run.
    pub max_round_threads: usize,
    #[serde(skip, default)]
    pub total_elapsed: Duration,
}

impl TrainingStats {
    /// Folds one round into the running totals.
    pub fn absorb(&mut self, round: &RoundStats) {
        self.rounds += 1;
        self.total_selected += round.n_selected;
        self.total_malicious_selected += round.n_malicious_selected;
        self.total_upload_bytes += round.upload_bytes;
        self.max_round_threads = self.max_round_threads.max(round.n_threads);
        self.total_elapsed += round.elapsed;
    }

    /// Mean wall-clock time per round — the Fig. 6(b) measure.
    pub fn mean_round_time(&self) -> Duration {
        if self.rounds == 0 {
            Duration::ZERO
        } else {
            #[allow(clippy::cast_possible_truncation)]
            {
                // lint:allow(lossy-index-cast): round counts are experiment-scale, far below u32
                self.total_elapsed / self.rounds as u32
            }
        }
    }

    /// Empirical fraction of sampled clients that were malicious.
    pub fn malicious_selection_rate(&self) -> f64 {
        if self.total_selected == 0 {
            0.0
        } else {
            self.total_malicious_selected as f64 / self.total_selected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(n_sel: usize, n_mal: usize) -> RoundStats {
        RoundStats {
            round: 0,
            n_selected: n_sel,
            n_malicious_selected: n_mal,
            n_items_updated: 10,
            upload_bytes: 100,
            n_threads: 2,
            elapsed: Duration::from_millis(10),
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut t = TrainingStats::default();
        t.absorb(&round(10, 1));
        t.absorb(&round(10, 0));
        assert_eq!(t.rounds, 2);
        assert_eq!(t.total_selected, 20);
        assert_eq!(t.total_malicious_selected, 1);
        assert!((t.malicious_selection_rate() - 0.05).abs() < 1e-12);
        assert_eq!(t.mean_round_time(), Duration::from_millis(10));
        assert_eq!(t.max_round_threads, 2);
    }

    #[test]
    fn empty_stats_are_safe() {
        let t = TrainingStats::default();
        assert_eq!(t.mean_round_time(), Duration::ZERO);
        assert_eq!(t.malicious_selection_rate(), 0.0);
    }
}
