//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`] — with
//! a deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! Determinism is the only contract the simulation relies on: the same seed
//! always produces the same stream, on every platform. Statistical quality is
//! that of xoshiro256++, which comfortably exceeds what the synthetic data
//! generator and the samplers need.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (full range for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro requires a nonzero state; SplitMix64 of any seed
            // produces one except with vanishing probability — guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }

    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn range_covers_endpoints_eventually() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn works_through_unsized_generic() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen_range(-1.0f32..=1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((-1.0..=1.0).contains(&x));
    }
}
