//! The open attack registry.
//!
//! The experiment harness used to dispatch over the closed [`AttackKind`]
//! enum; every new attack meant editing core crates. This module inverts
//! that: attacks are [`AttackFactory`] trait objects registered *by name* in
//! a process-wide table. The enum still exists as a thin, backwards
//! compatible wrapper over registry lookups, and out-of-crate attacks plug in
//! through [`register_attack`] without touching any core code:
//!
//! ```
//! use frs_attacks::{register_attack, AttackBuildCtx, AttackFactory, FnAttackFactory};
//!
//! register_attack(FnAttackFactory::new("my-attack", "MyAttack", |ctx: &AttackBuildCtx| {
//!     Vec::new() // build `ctx.count` malicious clients here
//! }));
//! assert!(frs_attacks::attack_factory("my-attack").is_some());
//! ```
//!
//! [`AttackKind`]: crate::AttackKind

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use frs_federation::Client;

use crate::catalog::AttackKind;

/// Everything a factory gets to build one scenario's malicious population.
#[derive(Debug, Clone)]
pub struct AttackBuildCtx<'a> {
    /// First client id to assign; ids must be dense `first_id..first_id+count`.
    pub first_id: usize,
    /// Number of malicious clients to build.
    pub count: usize,
    /// Target items `T` to promote.
    pub targets: &'a [u32],
    /// Mined popular-set size `N` (PIECK variants and mining-based attacks).
    pub mined_top_n: usize,
    /// Scale applied to gradient-style poison uploads.
    pub poison_scale: f32,
    /// Scenario root seed.
    pub seed: u64,
}

/// A named attack that can populate a scenario with malicious clients.
pub trait AttackFactory: Send + Sync {
    /// Stable registry key (kebab-case).
    fn name(&self) -> &str;

    /// Row label for experiment tables; defaults to the registry name.
    fn label(&self) -> &str {
        self.name()
    }

    /// Builds `ctx.count` malicious clients with dense ids starting at
    /// `ctx.first_id`.
    fn build_clients(&self, ctx: &AttackBuildCtx<'_>) -> Vec<Box<dyn Client>>;

    /// Optional behaviour fingerprint, mixed into suite cache keys.
    ///
    /// Scenario configs reference attacks by *name*, so a cache cannot see
    /// the parameters a runtime-registered factory closed over — two
    /// factories registered under the same name with different behaviour
    /// would share cache entries. A factory that returns a fingerprint
    /// describing its parameters (any stable string; `format!("{cfg:?}")`
    /// of its config is typical) closes that hole: the fingerprint is
    /// hashed alongside the scenario config, so re-registering the name
    /// with different parameters re-keys every affected cell. `None` (the
    /// default, and what the built-ins use — their behaviour is code,
    /// versioned by the cache schema) keeps name-only addressing.
    fn fingerprint(&self) -> Option<String> {
        None
    }
}

type AttackBuildFn = Box<dyn Fn(&AttackBuildCtx<'_>) -> Vec<Box<dyn Client>> + Send + Sync>;

/// Closure-backed [`AttackFactory`] for ad-hoc attacks (ablations, tests,
/// downstream experiments).
pub struct FnAttackFactory {
    name: String,
    label: String,
    fingerprint: Option<String>,
    build: AttackBuildFn,
}

impl FnAttackFactory {
    pub fn new(
        name: impl Into<String>,
        label: impl Into<String>,
        build: impl Fn(&AttackBuildCtx<'_>) -> Vec<Box<dyn Client>> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            label: label.into(),
            fingerprint: None,
            build: Box::new(build),
        })
    }

    /// Like [`FnAttackFactory::new`], additionally carrying a behaviour
    /// fingerprint (see [`AttackFactory::fingerprint`]) so suite caches can
    /// tell apart same-named registrations with different parameters.
    pub fn fingerprinted(
        name: impl Into<String>,
        label: impl Into<String>,
        fingerprint: impl Into<String>,
        build: impl Fn(&AttackBuildCtx<'_>) -> Vec<Box<dyn Client>> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            label: label.into(),
            fingerprint: Some(fingerprint.into()),
            build: Box::new(build),
        })
    }
}

impl AttackFactory for FnAttackFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn build_clients(&self, ctx: &AttackBuildCtx<'_>) -> Vec<Box<dyn Client>> {
        (self.build)(ctx)
    }

    fn fingerprint(&self) -> Option<String> {
        self.fingerprint.clone()
    }
}

type Registry = RwLock<BTreeMap<String, Arc<dyn AttackFactory>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let mut map: BTreeMap<String, Arc<dyn AttackFactory>> = BTreeMap::new();
        for kind in AttackKind::all() {
            map.insert(kind.name().to_string(), Arc::new(kind));
        }
        RwLock::new(map)
    })
}

/// Registers (or replaces) an attack under `factory.name()`. Returns the
/// previously registered factory of that name, if any.
pub fn register_attack(factory: Arc<dyn AttackFactory>) -> Option<Arc<dyn AttackFactory>> {
    registry()
        .write()
        .expect("attack registry poisoned")
        .insert(factory.name().to_string(), factory)
}

/// Looks an attack up by registry name.
pub fn attack_factory(name: &str) -> Option<Arc<dyn AttackFactory>> {
    registry()
        .read()
        .expect("attack registry poisoned")
        .get(name)
        .cloned()
}

/// All registered attack names, sorted.
pub fn registered_attacks() -> Vec<String> {
    registry()
        .read()
        .expect("attack registry poisoned")
        .keys()
        .cloned()
        .collect()
}

/// A serializable, registry-backed reference to an attack — what scenario
/// configurations carry instead of the closed enum. Serializes as its plain
/// name string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttackSel {
    name: String,
}

impl AttackSel {
    /// References a registered (or to-be-registered) attack by name.
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }

    /// The benign baseline.
    pub fn none() -> Self {
        AttackKind::NoAttack.into()
    }

    /// Registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True for the no-attack baseline.
    pub fn is_no_attack(&self) -> bool {
        self.name == AttackKind::NoAttack.name()
    }

    /// Table row label: the factory's, falling back to the raw name for
    /// not-yet-registered references.
    pub fn label(&self) -> String {
        match attack_factory(&self.name) {
            Some(f) => f.label().to_string(),
            None => self.name.clone(),
        }
    }

    /// Resolves through the registry.
    pub fn resolve(&self) -> Option<Arc<dyn AttackFactory>> {
        attack_factory(&self.name)
    }

    /// The resolved factory's behaviour fingerprint, if it declares one
    /// (unregistered names and fingerprint-less factories yield `None`).
    pub fn fingerprint(&self) -> Option<String> {
        self.resolve().and_then(|f| f.fingerprint())
    }

    /// Builds the malicious population; panics with the list of known
    /// attacks when the name is not registered (a configuration error).
    pub fn build_clients(&self, ctx: &AttackBuildCtx<'_>) -> Vec<Box<dyn Client>> {
        match self.resolve() {
            Some(f) => f.build_clients(ctx),
            None => panic!(
                "attack `{}` is not registered (known: {:?})",
                self.name,
                registered_attacks()
            ),
        }
    }
}

impl From<AttackKind> for AttackSel {
    fn from(kind: AttackKind) -> Self {
        AttackSel {
            name: kind.name().to_string(),
        }
    }
}

impl From<&AttackKind> for AttackSel {
    fn from(kind: &AttackKind) -> Self {
        (*kind).into()
    }
}

impl PartialEq<AttackKind> for AttackSel {
    fn eq(&self, kind: &AttackKind) -> bool {
        self.name == kind.name()
    }
}

impl PartialEq<AttackSel> for AttackKind {
    fn eq(&self, sel: &AttackSel) -> bool {
        sel == self
    }
}

impl std::fmt::Display for AttackSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

impl serde::Serialize for AttackSel {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name.clone())
    }
}

impl serde::Deserialize for AttackSel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        v.as_str()
            .map(AttackSel::named)
            .ok_or_else(|| serde::Error::new(format!("expected attack name, got {}", v.kind())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        for kind in AttackKind::all() {
            let f = attack_factory(kind.name()).unwrap_or_else(|| panic!("{kind:?}"));
            assert_eq!(f.name(), kind.name());
            assert_eq!(f.label(), kind.label());
        }
        assert!(registered_attacks().len() >= AttackKind::all().len());
    }

    #[test]
    fn registry_path_matches_enum_path() {
        let ctx = AttackBuildCtx {
            first_id: 40,
            count: 2,
            targets: &[3, 4],
            mined_top_n: 10,
            poison_scale: 1.5,
            seed: 9,
        };
        for kind in AttackKind::all() {
            let via_enum = kind.build_clients(40, 2, &[3, 4], 10, 1.5, 9);
            let via_registry = AttackSel::from(kind).build_clients(&ctx);
            assert_eq!(via_enum.len(), via_registry.len(), "{kind:?}");
            let enum_ids: Vec<usize> = via_enum.iter().map(|c| c.id()).collect();
            let reg_ids: Vec<usize> = via_registry.iter().map(|c| c.id()).collect();
            assert_eq!(enum_ids, reg_ids, "{kind:?}");
        }
    }

    #[test]
    fn fingerprints_surface_through_selections() {
        assert!(AttackSel::named("never-registered").fingerprint().is_none());
        register_attack(FnAttackFactory::new("fp-none", "FpNone", |_| Vec::new()));
        assert!(AttackSel::named("fp-none").fingerprint().is_none());
        register_attack(FnAttackFactory::fingerprinted(
            "fp-some",
            "FpSome",
            "lambda=0.5",
            |_| Vec::new(),
        ));
        assert_eq!(
            AttackSel::named("fp-some").fingerprint().as_deref(),
            Some("lambda=0.5")
        );
        // Built-ins are code, not closures: no fingerprint.
        assert!(AttackSel::from(AttackKind::PieckUea)
            .fingerprint()
            .is_none());
    }

    #[test]
    fn custom_factory_round_trips() {
        register_attack(FnAttackFactory::new("reg-test", "RegTest", |ctx| {
            assert_eq!(ctx.count, 0);
            Vec::new()
        }));
        let sel = AttackSel::named("reg-test");
        assert_eq!(sel.label(), "RegTest");
        let ctx = AttackBuildCtx {
            first_id: 0,
            count: 0,
            targets: &[],
            mined_top_n: 1,
            poison_scale: 1.0,
            seed: 0,
        };
        assert!(sel.build_clients(&ctx).is_empty());
    }

    #[test]
    fn sel_compares_against_kinds_and_serializes_as_string() {
        let sel: AttackSel = AttackKind::PieckUea.into();
        assert_eq!(sel, AttackKind::PieckUea);
        assert_ne!(sel, AttackKind::PieckIpe);
        assert!(AttackSel::none().is_no_attack());
        let v = serde::Serialize::to_value(&sel);
        assert_eq!(v.as_str(), Some("pieck-uea"));
        let back: AttackSel = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, sel);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_attack_panics_with_catalogue() {
        AttackSel::named("does-not-exist").build_clients(&AttackBuildCtx {
            first_id: 0,
            count: 1,
            targets: &[],
            mined_top_n: 1,
            poison_scale: 1.0,
            seed: 0,
        });
    }
}
