//! Fig. 6(a): ER@10 convergence trends of PIECK-IPE vs PIECK-UEA on MF-FRS
//! (paper: ML-1M, 1750 rounds — IPE decays as personalization sharpens while
//! UEA stays high).
//!
//! Usage: `fig6a_trends [--scale f] [--rounds n] [--seed s] [dataset]`

use frs_attacks::AttackKind;
use frs_experiments::report::pct;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_model::ModelKind;

fn main() {
    let args = CommonArgs::parse();
    let dataset = args
        .positional
        .first()
        .map(|n| {
            PaperDataset::from_name(n).unwrap_or_else(|| {
                eprintln!("unknown dataset {n}");
                std::process::exit(2);
            })
        })
        .unwrap_or(PaperDataset::Ml1m);

    let rounds = args.rounds_or(400);
    let every = (rounds / 20).max(1);

    let mut columns: Vec<(String, Vec<(usize, f64, f64)>)> = Vec::new();
    for attack in [AttackKind::PieckIpe, AttackKind::PieckUea] {
        let mut cfg = paper_scenario(dataset, ModelKind::Mf, args.scale, args.seed);
        cfg.attack = attack;
        cfg.rounds = rounds;
        cfg.trend_every = every;
        cfg.mined_top_n = if attack == AttackKind::PieckUea { 30 } else { 10 };
        let out = run(&cfg);
        columns.push((
            attack.label().to_string(),
            out.trend.iter().map(|p| (p.round, p.er, p.hr)).collect(),
        ));
    }

    println!("\n### Fig. 6(a) — ER@10 / HR@10 trend on {:?} (MF-FRS)", dataset);
    let mut table = Table::new(&["Round", "IPE ER", "IPE HR", "UEA ER", "UEA HR"]);
    let n_points = columns[0].1.len();
    for i in 0..n_points {
        let (round, ipe_er, ipe_hr) = columns[0].1[i];
        let (_, uea_er, uea_hr) = columns[1].1[i];
        table.row(&[
            round.to_string(),
            pct(ipe_er),
            pct(ipe_hr),
            pct(uea_er),
            pct(uea_hr),
        ]);
    }
    print!("{}", table.to_markdown());
}
