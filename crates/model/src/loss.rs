//! Training losses.
//!
//! Both losses are expressed in *logit space*: the model produces a raw score
//! `s = hᵀMLP(u⊕v)` (or `u·v` for MF), and the loss layer returns the loss
//! value plus `∂L/∂s` ("logit delta"), which the model then backpropagates.
//! This keeps the BCE numerics stable and makes MF and NCF share one training
//! path.

use frs_linalg::{log_sigmoid, sigmoid};
use serde::{Deserialize, Serialize};

/// Which loss the clients train with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossKind {
    /// Pointwise binary cross-entropy (paper Eq. 2; the default, after
    /// A-HUM \[31\]).
    Bce,
    /// Pairwise Bayesian Personalized Ranking \[30\] (supplementary Table XI).
    Bpr,
}

impl LossKind {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            LossKind::Bce => "BCE",
            LossKind::Bpr => "BPR",
        }
    }
}

/// BCE loss for one (logit, label) pair:
/// `−[x·logσ(s) + (1−x)·log(1−σ(s))]`, computed stably.
#[inline]
pub fn bce_loss(logit: f32, label: f32) -> f32 {
    -(label * log_sigmoid(logit) + (1.0 - label) * log_sigmoid(-logit))
}

/// `∂BCE/∂s = σ(s) − x`.
#[inline]
pub fn bce_logit_delta(logit: f32, label: f32) -> f32 {
    sigmoid(logit) - label
}

/// BPR loss for one (positive, negative) logit pair: `−logσ(s⁺ − s⁻)`.
#[inline]
pub fn bpr_loss(pos_logit: f32, neg_logit: f32) -> f32 {
    -log_sigmoid(pos_logit - neg_logit)
}

/// `(∂BPR/∂s⁺, ∂BPR/∂s⁻) = (σ(s⁺−s⁻) − 1, 1 − σ(s⁺−s⁻))`.
#[inline]
pub fn bpr_logit_deltas(pos_logit: f32, neg_logit: f32) -> (f32, f32) {
    let s = sigmoid(pos_logit - neg_logit);
    (s - 1.0, 1.0 - s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let eps = 1e-3;
        (f(x + eps) - f(x - eps)) / (2.0 * eps)
    }

    #[test]
    fn bce_at_confident_correct_is_small() {
        assert!(bce_loss(10.0, 1.0) < 1e-3);
        assert!(bce_loss(-10.0, 0.0) < 1e-3);
    }

    #[test]
    fn bce_at_confident_wrong_is_large() {
        assert!(bce_loss(10.0, 0.0) > 5.0);
        assert!(bce_loss(-10.0, 1.0) > 5.0);
    }

    #[test]
    fn bce_stable_at_extreme_logits() {
        assert!(bce_loss(1e4, 0.0).is_finite());
        assert!(bce_loss(-1e4, 1.0).is_finite());
    }

    #[test]
    fn bce_delta_matches_finite_difference() {
        for &(logit, label) in &[(0.5f32, 1.0f32), (-1.2, 0.0), (2.0, 0.0), (0.0, 1.0)] {
            let analytic = bce_logit_delta(logit, label);
            let numeric = fd(|s| bce_loss(s, label), logit);
            assert!((analytic - numeric).abs() < 1e-3, "({logit}, {label})");
        }
    }

    #[test]
    fn bpr_prefers_positive_above_negative() {
        assert!(bpr_loss(2.0, -2.0) < bpr_loss(-2.0, 2.0));
        assert!((bpr_loss(0.0, 0.0) - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn bpr_deltas_match_finite_difference() {
        for &(p, n) in &[(0.5f32, -0.3f32), (-1.0, 1.0), (2.0, 1.9)] {
            let (dp, dn) = bpr_logit_deltas(p, n);
            assert!((dp - fd(|s| bpr_loss(s, n), p)).abs() < 1e-3);
            assert!((dn - fd(|s| bpr_loss(p, s), n)).abs() < 1e-3);
        }
    }

    #[test]
    fn bpr_deltas_are_opposite() {
        let (dp, dn) = bpr_logit_deltas(0.7, -0.2);
        assert!((dp + dn).abs() < 1e-6);
        assert!(dp < 0.0, "positive logit should be pushed up");
    }

    #[test]
    fn labels() {
        assert_eq!(LossKind::Bce.label(), "BCE");
        assert_eq!(LossKind::Bpr.label(), "BPR");
    }
}
