//! Sharded-aggregation parity: `ShardedAggregator` over random *sparse*
//! uploads versus the dense (unsharded) path.
//!
//! Invariants pinned here (see the `ShardedAggregator` docs):
//!
//! 1. `shards == 1` delegates outright — **bitwise** identical to the bare
//!    rule, for every rule.
//! 2. Coordinate-wise rules (Sum / Median / TrimmedMean) are **bitwise**
//!    identical to the dense path at *any* shard count: partitioning the
//!    item space does not change the per-item gradient groups they reduce.
//! 3. The MLP part (dense, unsharded by nature) survives sharding
//!    unchanged for coordinate-wise rules.
//!
//! Krum-family rules intentionally select *per shard* at `shards > 1` (a
//! finer-grained defense, not a drifted copy), so only invariant 1 applies
//! to them. Part of the CI `kernel-parity` job; run locally with
//!
//! ```text
//! cargo test --release -p frs-defense --test sharded_parity
//! ```

use frs_defense::{Bulyan, Krum, Median, MultiKrum, TrimmedMean};
use frs_federation::{Aggregator, ShardedAggregator, SumAggregator};
use frs_model::{GlobalGradients, MlpGradients};
use proptest::prelude::*;

const MLP_SHAPES: [(usize, usize); 2] = [(4, 2), (2, 2)];

/// Raw material for one upload: sparse `(item, gradient)` pairs (duplicate
/// items accumulate, as in a real client round) plus an optional MLP part.
type RawUpload = (Vec<(u32, (f32, f32))>, bool, Vec<(f32, f32)>);

fn upload_strategy() -> impl Strategy<Value = RawUpload> {
    (
        prop::collection::vec((0u32..16, (-5.0f32..5.0, -5.0f32..5.0)), 0..8),
        any::<bool>(),
        prop::collection::vec((-2.0f32..2.0, -2.0f32..2.0), 9),
    )
}

fn build_upload(raw: &RawUpload) -> GlobalGradients {
    let (items, with_mlp, mlp_vals) = raw;
    let mut g = GlobalGradients::new();
    for (item, (a, b)) in items {
        g.add_item_grad(*item, &[*a, *b]);
    }
    if *with_mlp {
        let mut mlp = MlpGradients::zeros(&MLP_SHAPES, 2);
        let flat_len = mlp.flatten().len();
        let vals: Vec<f32> = mlp_vals.iter().flat_map(|&(x, y)| [x, y]).collect();
        assert!(vals.len() >= flat_len, "widen mlp_vals for these shapes");
        mlp = mlp.unflatten_like(&vals[..flat_len]);
        g.mlp = Some(mlp);
    }
    g
}

fn assert_bitwise_eq(
    sharded: &GlobalGradients,
    dense: &GlobalGradients,
    what: &str,
) -> Result<(), TestCaseError> {
    let keys: Vec<u32> = sharded.items.keys().copied().collect();
    let dense_keys: Vec<u32> = dense.items.keys().copied().collect();
    prop_assert!(
        keys == dense_keys,
        "{what}: item support differs: {keys:?} vs {dense_keys:?}"
    );
    for (item, grad) in &sharded.items {
        let bits: Vec<u32> = grad.iter().map(|x| x.to_bits()).collect();
        let dense_bits: Vec<u32> = dense.items[item].iter().map(|x| x.to_bits()).collect();
        prop_assert!(bits == dense_bits, "{what}: item {item} differs");
    }
    prop_assert!(
        sharded.mlp.is_some() == dense.mlp.is_some(),
        "{what}: MLP presence differs"
    );
    if let (Some(a), Some(b)) = (&sharded.mlp, &dense.mlp) {
        let bits: Vec<u32> = a.flatten().iter().map(|x| x.to_bits()).collect();
        let dense_bits: Vec<u32> = b.flatten().iter().map(|x| x.to_bits()).collect();
        prop_assert!(bits == dense_bits, "{what}: MLP part differs");
    }
    Ok(())
}

/// Every rule under test, freshly boxed (Aggregator is not Clone).
fn rules(ratio: f64) -> Vec<Box<dyn Aggregator>> {
    vec![
        Box::new(SumAggregator),
        Box::new(Median),
        Box::new(TrimmedMean::new(ratio)),
        Box::new(Krum::new(ratio)),
        Box::new(MultiKrum::new(ratio)),
        Box::new(Bulyan::new(ratio)),
    ]
}

proptest! {
    /// Invariant 1: one shard is the dense path, bit for bit, for all rules.
    #[test]
    fn one_shard_is_bitwise_dense(
        raws in prop::collection::vec(upload_strategy(), 0..9),
        ratio in 0.05f64..0.45,
    ) {
        let uploads: Vec<GlobalGradients> = raws.iter().map(build_upload).collect();
        for (dense_rule, wrapped_rule) in rules(ratio).into_iter().zip(rules(ratio)) {
            let dense = dense_rule.aggregate(&uploads);
            let sharded = ShardedAggregator::new(wrapped_rule, 1).aggregate(&uploads);
            assert_bitwise_eq(
                &sharded,
                &dense,
                &format!("{} shards=1", dense_rule.name()),
            )?;
        }
    }

    /// Invariant 2+3: coordinate-wise rules are shard-count-invariant on
    /// sparse uploads, MLP part included.
    #[test]
    fn coordinate_rules_are_shard_invariant(
        raws in prop::collection::vec(upload_strategy(), 0..9),
        ratio in 0.05f64..0.45,
        shards in 2usize..7,
    ) {
        let uploads: Vec<GlobalGradients> = raws.iter().map(build_upload).collect();
        let coordinate_wise: Vec<(Box<dyn Aggregator>, Box<dyn Aggregator>)> = vec![
            (Box::new(SumAggregator), Box::new(SumAggregator)),
            (Box::new(Median), Box::new(Median)),
            (
                Box::new(TrimmedMean::new(ratio)),
                Box::new(TrimmedMean::new(ratio)),
            ),
        ];
        for (dense_rule, wrapped_rule) in coordinate_wise {
            let dense = dense_rule.aggregate(&uploads);
            let sharded = ShardedAggregator::new(wrapped_rule, shards).aggregate(&uploads);
            assert_bitwise_eq(
                &sharded,
                &dense,
                &format!("{} shards={}", dense_rule.name(), shards),
            )?;
        }
    }
}

/// Deterministic spot check: a sharded Krum still produces a defined,
/// finite result whose support is covered by the input support (selection
/// happens per shard — a different rule than dense Krum, but a sane one).
#[test]
fn sharded_krum_is_well_formed() {
    let mut uploads = Vec::new();
    for i in 0..8 {
        let mut g = GlobalGradients::new();
        for item in 0..12u32 {
            if (item + i) % 3 != 0 {
                g.add_item_grad(item, &[i as f32 * 0.1, 1.0 - i as f32 * 0.05]);
            }
        }
        uploads.push(g);
    }
    let input_support: std::collections::BTreeSet<u32> = uploads
        .iter()
        .flat_map(|u| u.items.keys().copied())
        .collect();
    let out = ShardedAggregator::new(Box::new(Krum::new(0.25)), 4).aggregate(&uploads);
    assert!(!out.items.is_empty());
    for (item, grad) in &out.items {
        assert!(
            input_support.contains(item),
            "item {item} not in any upload"
        );
        assert!(grad.iter().all(|v| v.is_finite()));
    }
}
