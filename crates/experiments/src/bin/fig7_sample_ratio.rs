//! Supplementary Fig. 7: recommendation performance (HR@10) as a function of
//! the negative-sampling ratio q — rises to a plateau, then degrades for
//! large q (MF-FRS, ML-100K, no attack).
//!
//! Usage: `fig7_sample_ratio [--scale f] [--rounds n] [--seed s]`

use frs_experiments::report::pct;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_model::ModelKind;

fn main() {
    let args = CommonArgs::parse();
    println!("\n### Fig. 7 — HR@10 vs sampling ratio q (MF-FRS, ml100k-like)");
    let mut table = Table::new(&["q", "HR@10", "NDCG@10"]);
    for q in [1usize, 2, 4, 6, 8, 10, 12, 16] {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
        cfg.federation.negative_ratio = q;
        cfg.rounds = args.rounds_or(150);
        let out = run(&cfg);
        table.row(&[q.to_string(), pct(out.hr_percent), format!("{:.4}", out.ndcg)]);
    }
    print!("{}", table.to_markdown());
}
