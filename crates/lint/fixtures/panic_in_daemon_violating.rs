//! Violating fixture: a request handler that can take its worker down.

pub fn answer(payload: Option<String>, buf: &[u8]) -> String {
    let body = payload.unwrap();
    let first = buf[0];
    if first == 0 {
        panic!("empty frame");
    }
    body
}
