//! Fig. 6(b) as a microbenchmark: wall-clock time per communication round
//! for the vanilla system, both PIECK variants, and our defense, on both
//! base models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frs_attacks::AttackKind;
use frs_bench::{bench_simulation, bench_simulation_at_width};
use frs_defense::DefenseKind;
use frs_model::ModelKind;

fn round_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_time");
    group.sample_size(10);
    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        for (label, attack, defense) in [
            ("none", AttackKind::NoAttack, DefenseKind::NoDefense),
            ("pieck_ipe", AttackKind::PieckIpe, DefenseKind::NoDefense),
            ("pieck_uea", AttackKind::PieckUea, DefenseKind::NoDefense),
            ("defense_ours", AttackKind::NoAttack, DefenseKind::Ours),
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), label),
                &(kind, attack, defense),
                |b, &(kind, attack, defense)| {
                    let mut sim = bench_simulation(kind, attack, defense);
                    // Warm up past the mining phase so the attack path runs.
                    sim.run(4);
                    b.iter(|| sim.run_round());
                },
            );
        }
    }
    group.finish();
}

/// Per-round wall time as the round pool widens: the hot path the shared
/// core budget hands spare cores to on warm-cache suite runs.
fn round_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_width");
    group.sample_size(10);
    for width in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("mf_uea", width), &width, |b, &width| {
            let mut sim = bench_simulation_at_width(
                ModelKind::Mf,
                AttackKind::PieckUea,
                DefenseKind::NoDefense,
                width,
            );
            // Warm up past the mining phase so the attack path runs.
            sim.run(4);
            b.iter(|| sim.run_round());
        });
    }
    group.finish();
}

criterion_group!(benches, round_time, round_width);
criterion_main!(benches);
