//! Behavioural tests for the derive shim's field attributes.
//!
//! The derive lives in a proc-macro crate and can only be exercised from a
//! crate that links `serde` externally — hence an integration test here
//! rather than a unit test in `serde_derive`.

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Plain {
    a: u32,
    b: f32,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct WithSkip {
    kept: u32,
    #[serde(skip, default)]
    transient: u64,
}

/// A "v2" payload: `extra` was added after `Versioned` payloads were already
/// on disk, so it must tolerate absence.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Versioned {
    base: u32,
    #[serde(default)]
    extra: Vec<f32>,
    #[serde(default)]
    label: String,
}

#[test]
fn plain_round_trips() {
    let x = Plain { a: 7, b: 1.5 };
    assert_eq!(Plain::from_value(&x.to_value()).unwrap(), x);
}

#[test]
fn skip_is_omitted_and_defaulted() {
    let x = WithSkip {
        kept: 3,
        transient: 99,
    };
    let v = x.to_value();
    let obj = v.as_object().unwrap();
    assert!(obj.contains_key("kept"));
    assert!(!obj.contains_key("transient"), "skip must omit the field");
    let back = WithSkip::from_value(&v).unwrap();
    assert_eq!(back.kept, 3);
    assert_eq!(back.transient, 0, "skip deserializes to Default");
}

#[test]
fn default_fields_serialize_normally() {
    let x = Versioned {
        base: 1,
        extra: vec![0.5, -1.0],
        label: "v2".into(),
    };
    let v = x.to_value();
    let obj = v.as_object().unwrap();
    assert!(obj.contains_key("extra"), "default still serializes");
    assert!(obj.contains_key("label"));
    assert_eq!(Versioned::from_value(&v).unwrap(), x);
}

#[test]
fn default_fields_tolerate_missing_on_deserialize() {
    // An old payload written before `extra`/`label` existed.
    let old = Plain { a: 4, b: 0.0 };
    let mut obj = old.to_value().as_object().unwrap().clone();
    obj.remove("b");
    obj.insert("base".into(), 4u32.to_value());
    obj.remove("a");
    let back = Versioned::from_value(&Value::Object(obj)).unwrap();
    assert_eq!(back.base, 4);
    assert_eq!(back.extra, Vec::<f32>::new());
    assert_eq!(back.label, "");
}

#[test]
fn missing_non_default_field_still_errors() {
    let v = Value::Object(serde::Map::new());
    let err = Versioned::from_value(&v).unwrap_err();
    assert!(err.to_string().contains("missing field `base`"), "{err}");
}
