//! The open defense registry — mirror image of `frs_attacks::registry`.
//!
//! Defenses are [`DefenseFactory`] trait objects registered by name. A
//! defense contributes a server-side [`Aggregator`] and, for client-side
//! schemes, optionally a [`LocalRegularizer`] installed into every benign
//! client. The legacy [`DefenseKind`] enum remains as a thin wrapper over
//! registry lookups.
//!
//! [`DefenseKind`]: crate::DefenseKind

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use frs_federation::{Aggregator, LocalRegularizer};

use crate::catalog::DefenseKind;

/// Scenario-level parameters a defense may consume when instantiating.
#[derive(Debug, Clone)]
pub struct DefenseBuildCtx {
    /// Malicious fraction `p̃` the defense is tuned for.
    pub assumed_malicious_ratio: f64,
    /// Clipping threshold for NormBound-style defenses.
    pub norm_bound_threshold: f32,
}

/// A named defense that can arm a scenario.
pub trait DefenseFactory: Send + Sync {
    /// Stable registry key (kebab-case).
    fn name(&self) -> &str;

    /// Row label for experiment tables; defaults to the registry name.
    fn label(&self) -> &str {
        self.name()
    }

    /// True for defenses that run inside benign clients rather than in the
    /// server's aggregation rule.
    fn is_client_side(&self) -> bool {
        false
    }

    /// The server-side aggregation rule (client-side defenses return a plain
    /// sum here).
    fn build_aggregator(&self, ctx: &DefenseBuildCtx) -> Box<dyn Aggregator>;

    /// A fresh per-client regularizer for client-side defenses; `None` for
    /// pure server-side rules. The harness installs one instance into every
    /// benign client. (The paper's own defense is wired specially by the
    /// harness because its configuration lives in the scenario; out-of-crate
    /// client-side defenses hook in here.)
    fn build_regularizer(&self, ctx: &DefenseBuildCtx) -> Option<Box<dyn LocalRegularizer>> {
        let _ = ctx;
        None
    }

    /// Optional behaviour fingerprint, mixed into suite cache keys — same
    /// contract as `AttackFactory::fingerprint` in `frs_attacks`: a stable
    /// string describing closed-over parameters, so re-registering this
    /// name with different behaviour re-keys cached cells. `None` (the
    /// default, used by the built-ins) keeps name-only addressing.
    fn fingerprint(&self) -> Option<String> {
        None
    }
}

type AggregatorBuildFn = Box<dyn Fn(&DefenseBuildCtx) -> Box<dyn Aggregator> + Send + Sync>;

/// Closure-backed [`DefenseFactory`] for ad-hoc defenses.
pub struct FnDefenseFactory {
    name: String,
    label: String,
    client_side: bool,
    fingerprint: Option<String>,
    aggregator: AggregatorBuildFn,
}

impl FnDefenseFactory {
    pub fn new(
        name: impl Into<String>,
        label: impl Into<String>,
        aggregator: impl Fn(&DefenseBuildCtx) -> Box<dyn Aggregator> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            label: label.into(),
            client_side: false,
            fingerprint: None,
            aggregator: Box::new(aggregator),
        })
    }

    /// Like [`FnDefenseFactory::new`], additionally carrying a behaviour
    /// fingerprint (see [`DefenseFactory::fingerprint`]).
    pub fn fingerprinted(
        name: impl Into<String>,
        label: impl Into<String>,
        fingerprint: impl Into<String>,
        aggregator: impl Fn(&DefenseBuildCtx) -> Box<dyn Aggregator> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            label: label.into(),
            client_side: false,
            fingerprint: Some(fingerprint.into()),
            aggregator: Box::new(aggregator),
        })
    }
}

impl DefenseFactory for FnDefenseFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn is_client_side(&self) -> bool {
        self.client_side
    }

    fn build_aggregator(&self, ctx: &DefenseBuildCtx) -> Box<dyn Aggregator> {
        (self.aggregator)(ctx)
    }

    fn fingerprint(&self) -> Option<String> {
        self.fingerprint.clone()
    }
}

type Registry = RwLock<BTreeMap<String, Arc<dyn DefenseFactory>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let mut map: BTreeMap<String, Arc<dyn DefenseFactory>> = BTreeMap::new();
        for kind in DefenseKind::all() {
            map.insert(kind.name().to_string(), Arc::new(kind));
        }
        RwLock::new(map)
    })
}

/// Registers (or replaces) a defense under `factory.name()`. Returns the
/// previously registered factory of that name, if any.
pub fn register_defense(factory: Arc<dyn DefenseFactory>) -> Option<Arc<dyn DefenseFactory>> {
    registry()
        .write()
        .expect("defense registry poisoned")
        .insert(factory.name().to_string(), factory)
}

/// Looks a defense up by registry name.
pub fn defense_factory(name: &str) -> Option<Arc<dyn DefenseFactory>> {
    registry()
        .read()
        .expect("defense registry poisoned")
        .get(name)
        .cloned()
}

/// All registered defense names, sorted.
pub fn registered_defenses() -> Vec<String> {
    registry()
        .read()
        .expect("defense registry poisoned")
        .keys()
        .cloned()
        .collect()
}

/// A serializable, registry-backed reference to a defense. Serializes as its
/// plain name string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DefenseSel {
    name: String,
}

impl DefenseSel {
    /// References a registered (or to-be-registered) defense by name.
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }

    /// The undefended baseline.
    pub fn none() -> Self {
        DefenseKind::NoDefense.into()
    }

    /// Registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True for the undefended baseline.
    pub fn is_no_defense(&self) -> bool {
        self.name == DefenseKind::NoDefense.name()
    }

    /// Table row label.
    pub fn label(&self) -> String {
        match defense_factory(&self.name) {
            Some(f) => f.label().to_string(),
            None => self.name.clone(),
        }
    }

    /// True when the resolved defense runs client-side.
    pub fn is_client_side(&self) -> bool {
        self.resolve().map(|f| f.is_client_side()).unwrap_or(false)
    }

    /// Resolves through the registry.
    pub fn resolve(&self) -> Option<Arc<dyn DefenseFactory>> {
        defense_factory(&self.name)
    }

    /// The resolved factory's behaviour fingerprint, if it declares one.
    pub fn fingerprint(&self) -> Option<String> {
        self.resolve().and_then(|f| f.fingerprint())
    }

    /// Builds the aggregator; panics with the list of known defenses when
    /// the name is not registered.
    pub fn build_aggregator(&self, ctx: &DefenseBuildCtx) -> Box<dyn Aggregator> {
        match self.resolve() {
            Some(f) => f.build_aggregator(ctx),
            None => panic!(
                "defense `{}` is not registered (known: {:?})",
                self.name,
                registered_defenses()
            ),
        }
    }

    /// Builds the per-client regularizer, when the defense provides one.
    pub fn build_regularizer(&self, ctx: &DefenseBuildCtx) -> Option<Box<dyn LocalRegularizer>> {
        self.resolve().and_then(|f| f.build_regularizer(ctx))
    }
}

impl From<DefenseKind> for DefenseSel {
    fn from(kind: DefenseKind) -> Self {
        DefenseSel {
            name: kind.name().to_string(),
        }
    }
}

impl From<&DefenseKind> for DefenseSel {
    fn from(kind: &DefenseKind) -> Self {
        (*kind).into()
    }
}

impl PartialEq<DefenseKind> for DefenseSel {
    fn eq(&self, kind: &DefenseKind) -> bool {
        self.name == kind.name()
    }
}

impl PartialEq<DefenseSel> for DefenseKind {
    fn eq(&self, sel: &DefenseSel) -> bool {
        sel == self
    }
}

impl std::fmt::Display for DefenseSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

impl serde::Serialize for DefenseSel {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name.clone())
    }
}

impl serde::Deserialize for DefenseSel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        v.as_str()
            .map(DefenseSel::named)
            .ok_or_else(|| serde::Error::new(format!("expected defense name, got {}", v.kind())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_federation::SumAggregator;

    #[test]
    fn builtins_are_registered() {
        for kind in DefenseKind::all() {
            let f = defense_factory(kind.name()).unwrap_or_else(|| panic!("{kind:?}"));
            assert_eq!(f.label(), kind.label());
            assert_eq!(f.is_client_side(), kind.is_client_side());
        }
    }

    #[test]
    fn registry_path_matches_enum_path() {
        use frs_model::GlobalGradients;
        let ctx = DefenseBuildCtx {
            assumed_malicious_ratio: 0.05,
            norm_bound_threshold: 0.5,
        };
        let mut u1 = GlobalGradients::new();
        u1.add_item_grad(0, &[0.5, 0.5]);
        let mut u2 = GlobalGradients::new();
        u2.add_item_grad(0, &[0.1, -0.4]);
        let uploads = [u1, u2];
        for kind in DefenseKind::all() {
            let via_enum = kind.build_aggregator(0.05, 0.5).aggregate(&uploads);
            let via_registry = DefenseSel::from(kind)
                .build_aggregator(&ctx)
                .aggregate(&uploads);
            assert_eq!(via_enum, via_registry, "{kind:?}");
        }
    }

    #[test]
    fn custom_defense_round_trips() {
        register_defense(FnDefenseFactory::new("sum-again", "SumAgain", |_| {
            Box::new(SumAggregator)
        }));
        let sel = DefenseSel::named("sum-again");
        assert_eq!(sel.label(), "SumAgain");
        assert!(!sel.is_client_side());
        let ctx = DefenseBuildCtx {
            assumed_malicious_ratio: 0.0,
            norm_bound_threshold: 1.0,
        };
        assert_eq!(sel.build_aggregator(&ctx).name(), "NoDefense");
    }

    #[test]
    fn fingerprints_surface_through_selections() {
        register_defense(FnDefenseFactory::fingerprinted(
            "fp-defense",
            "FpDefense",
            "threshold=0.25",
            |_| Box::new(SumAggregator),
        ));
        assert_eq!(
            DefenseSel::named("fp-defense").fingerprint().as_deref(),
            Some("threshold=0.25")
        );
        assert!(DefenseSel::named("sum-again-absent")
            .fingerprint()
            .is_none());
        assert!(DefenseSel::from(DefenseKind::Ours).fingerprint().is_none());
    }

    #[test]
    fn sel_compares_and_serializes() {
        let sel: DefenseSel = DefenseKind::Ours.into();
        assert_eq!(sel, DefenseKind::Ours);
        assert!(sel.is_client_side());
        assert!(DefenseSel::none().is_no_defense());
        let v = serde::Serialize::to_value(&sel);
        assert_eq!(v.as_str(), Some("ours"));
        let back: DefenseSel = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, sel);
    }
}
