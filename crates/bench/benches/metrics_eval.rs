//! Evaluation-pass cost: ER@K and HR@K over the full benign population —
//! the per-measurement cost of every table in the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use frs_bench::bench_world;
use frs_data::TrainTestSplit;
use frs_metrics::{ExposureReport, QualityReport};

fn metrics_eval(c: &mut Criterion) {
    let (model, users, data) = bench_world();
    let benign: Vec<usize> = (0..data.n_users()).collect();
    let targets = data.coldest_items(1);
    let split = TrainTestSplit {
        train: (*data).clone(),
        test_item: vec![0; data.n_users()],
    };

    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    group.bench_function("er_at_10_full_population", |b| {
        b.iter(|| {
            criterion::black_box(
                ExposureReport::compute(&model, &users, &benign, &data, &targets, 10).mean,
            )
        });
    });
    group.bench_function("hr_at_10_full_population", |b| {
        b.iter(|| {
            criterion::black_box(QualityReport::compute(&model, &users, &benign, &split, 10).hr)
        });
    });
    group.finish();
}

criterion_group!(benches, metrics_eval);
criterion_main!(benches);
