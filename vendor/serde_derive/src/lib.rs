//! Offline stand-in for `serde_derive`.
//!
//! Because the registry (and with it `syn`/`quote`) is unreachable, this
//! derive macro parses the item declaration directly from the raw
//! `proc_macro` token stream. It supports exactly the shapes the workspace
//! declares:
//!
//! - structs with named fields (honouring `#[serde(skip, default)]` and the
//!   bare `#[serde(default)]` — the latter serializes normally but tolerates
//!   a missing field on deserialize, the versioned-struct-evolution hook the
//!   checkpoint format relies on);
//! - enums whose variants are unit or newtype (single unnamed field).
//!
//! Anything else (tuple structs, generics, struct variants) triggers a
//! compile-time panic with a clear message rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// One parsed named field.
struct Field {
    name: String,
    /// `#[serde(skip, default)]` — omit when serializing, `Default` when
    /// deserializing.
    skip: bool,
    /// Bare `#[serde(default)]` — serialized normally; a *missing* field
    /// falls back to `Default::default()` instead of erroring, so structs
    /// can grow fields without invalidating previously written payloads.
    default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// Unit variant when false; newtype (single unnamed payload) when true.
    has_payload: bool,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                inserts.push_str(&format!(
                    "map.insert({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut map = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(map)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                if v.has_payload {
                    arms.push_str(&format!(
                        "{name}::{v}(__inner) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert({v:?}.to_string(), ::serde::Serialize::to_value(__inner));\n\
                             ::serde::Value::Object(map)\n\
                         }}\n",
                        v = v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive produced invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::std::default::Default::default(),\n",
                        n = f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{n}: match obj.get({n:?}) {{\n\
                             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                             ::std::option::Option::None => ::std::default::Default::default(),\n\
                         }},\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: match obj.get({n:?}) {{\n\
                             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                             ::std::option::Option::None => return ::std::result::Result::Err(\n\
                                 ::serde::Error::new(concat!(\"missing field `\", {n:?}, \"` for {name}\"))),\n\
                         }},\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::Error::new(\n\
                             format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                if v.has_payload {
                    payload_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::new(\n\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                                 let (__tag, __inner) = map.iter().next().unwrap();\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::new(\n\
                                         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::new(\n\
                                 format!(\"expected variant of {name}, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive produced invalid Rust")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Tokens = input.into_iter().peekable();
    skip_attributes(&mut toks);
    skip_visibility(&mut toks);
    let kw = expect_ident(&mut toks, "expected `struct` or `enum`");
    let name = expect_ident(&mut toks, "expected item name");
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (on `{name}`)");
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive expects a braced body for `{name}` \
             (tuple/unit structs are unsupported), got {other:?}"
        ),
    };
    match kw.as_str() {
        "struct" => Item::Struct {
            fields: parse_fields(body, &name),
            name,
        },
        "enum" => Item::Enum {
            variants: parse_variants(body, &name),
            name,
        },
        other => panic!("serde shim derive supports struct/enum only, got `{other}`"),
    }
}

fn parse_fields(body: TokenStream, item: &str) -> Vec<Field> {
    let mut toks: Tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    while toks.peek().is_some() {
        let attrs = field_attributes(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_visibility(&mut toks);
        let name = expect_ident(&mut toks, &format!("expected field name in `{item}`"));
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{item}.{name}`, got {other:?}"),
        }
        consume_type(&mut toks);
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(body: TokenStream, item: &str) -> Vec<Variant> {
    let mut toks: Tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    while toks.peek().is_some() {
        skip_attributes(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks, &format!("expected variant name in `{item}`"));
        let mut has_payload = false;
        match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                if top_level_commas(&payload) > 0 {
                    panic!(
                        "serde shim derive supports unit and single-field newtype \
                         variants only; `{item}::{name}` has multiple fields"
                    );
                }
                has_payload = true;
                toks.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde shim derive does not support struct variants (`{item}::{name}`)");
            }
            _ => {}
        }
        match toks.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde shim derive does not support discriminants (`{item}::{name}`)")
            }
            other => panic!("unexpected token after variant `{item}::{name}`: {other:?}"),
        }
        variants.push(Variant { name, has_payload });
    }
    variants
}

/// Consumes a type up to (and including) the next top-level `,`, balancing
/// `<`/`>` so generic arguments containing commas survive.
fn consume_type(toks: &mut Tokens) {
    let mut depth = 0i32;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

fn top_level_commas(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut commas = 0;
    for (i, tt) in tokens.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // A trailing comma does not mean a second field.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && i + 1 < tokens.len() => {
                commas += 1
            }
            _ => {}
        }
    }
    commas
}

/// Skips any `#[...]` attributes.
fn skip_attributes(toks: &mut Tokens) {
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        toks.next(); // the bracketed attribute body
    }
}

/// Flags a `#[serde(...)]` field attribute can request.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

/// Skips attributes, collecting the `skip` / `default` flags from any
/// `#[serde(...)]` among them.
fn field_attributes(toks: &mut Tokens) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        if let Some(TokenTree::Group(g)) = toks.next() {
            let mut inner = g.stream().into_iter();
            if matches!(&inner.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    for t in args.stream() {
                        if let TokenTree::Ident(i) = &t {
                            match i.to_string().as_str() {
                                "skip" => attrs.skip = true,
                                "default" => attrs.default = true,
                                other => panic!(
                                    "serde shim derive does not understand \
                                     `#[serde({other})]` (use skip/default)"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
    attrs
}

fn skip_visibility(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        // `pub(crate)` and friends carry a parenthesised scope.
        if matches!(
            toks.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            toks.next();
        }
    }
}

fn expect_ident(toks: &mut Tokens, msg: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("{msg}, got {other:?}"),
    }
}
