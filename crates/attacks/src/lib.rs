//! Baseline targeted model-poisoning attacks (paper Section II / Table I).
//!
//! | Attack | Prior knowledge | MF-FRS | DL-FRS |
//! |---|---|---|---|
//! | [`FedRecAttack`] \[32\] | historical interactions | ✓ | ✓ |
//! | [`PipAttack`] \[42\] | items' popularity levels | ✓ | ✓ |
//! | [`ARaClient`] (A-RA) \[31\] | none | ✗ (inert) | ✓ |
//! | [`AHumClient`] (A-HUM) \[31\] | none | partially | ✓ |
//!
//! Following the paper's fair-comparison protocol (Section VII-A3), the prior
//! knowledge of FedRecAttack and PipAttack is *masked by default* — each
//! constructor takes an `Option` that the experiment harness leaves `None` —
//! which is exactly what cripples them in Table III. The unmasked variants
//! exist for completeness and for the knowledge-ablation benches.
//!
//! All baselines implement [`frs_federation::Client`] just like
//! [`pieck_core::PieckClient`], so every experiment swaps attacks by swapping
//! client constructors.

pub mod approx;
pub mod catalog;
pub mod fedrecattack;
pub mod interaction;
pub mod pipattack;
pub mod registry;
pub mod scaled;
pub mod variants;

pub use approx::{hard_user_mining, random_user_embeddings};
pub use catalog::AttackKind;
pub use fedrecattack::FedRecAttack;
pub use interaction::{AHumClient, ARaClient};
pub use pipattack::PipAttack;
pub use registry::{
    attack_factory, register_attack, registered_attacks, AttackBuildCtx, AttackFactory,
    AttackParams, AttackSel, FnAttackFactory, IntoAttackFactory, ParamSpec, ParamValue,
};
pub use scaled::ScaledClient;
