//! Exposure Ratio at rank K (ER@K) — Eq. (3).
//!
//! `ER_j@K = |Ū_j| / |Ū \ Ū'_j|` where `Ū_j` is the set of benign users whose
//! top-K recommendation lists contain target item `v_j`, and `Ū'_j` those who
//! already interacted with it (they are excluded from the denominator and can
//! never be "newly exposed"). The attack metric is the mean over all targets.

use frs_data::Dataset;
use frs_linalg::top_k_desc_filtered_into;
use frs_model::{GlobalModel, UserEmbeddings};

/// ER@K for every target plus the mean — one evaluation pass per user.
#[derive(Debug, Clone)]
pub struct ExposureReport {
    /// `per_target[t]` = ER@K of `targets[t]`, in `[0, 1]`.
    pub per_target: Vec<f64>,
    /// Mean over targets (the paper's headline ER@K).
    pub mean: f64,
    pub k: usize,
}

impl ExposureReport {
    /// Computes ER@K over `benign_users`.
    ///
    /// `user_embeddings` must hold the *current* personalized embedding of
    /// every user (any [`UserEmbeddings`] representation — nested vectors
    /// or the simulation's flat `EmbeddingStore`); `train` is the training
    /// interaction data that defines which items are eligible for a user's
    /// recommendation list (uninteracted only, Section III-A).
    pub fn compute<E: UserEmbeddings + ?Sized>(
        model: &GlobalModel,
        user_embeddings: &E,
        benign_users: &[usize],
        train: &Dataset,
        targets: &[u32],
        k: usize,
    ) -> Self {
        assert!(!targets.is_empty(), "need at least one target item");
        let mut exposed = vec![0usize; targets.len()];
        let mut eligible_users = vec![0usize; targets.len()];

        // Score and top-K buffers live across the user loop: with the
        // partial-select `_into` path the whole population scan allocates a
        // constant number of vectors instead of two per user.
        let mut scores = Vec::new();
        let mut top = Vec::new();
        for &u in benign_users {
            model.scores_for_user_into(user_embeddings.user_embedding(u), &mut scores);
            // lint:allow(lossy-index-cast): j indexes the score slice, whose length is the u32-keyed catalog size
            top_k_desc_filtered_into(&scores, k, |j| !train.interacted(u, j as u32), &mut top);
            for (t, &target) in targets.iter().enumerate() {
                if train.interacted(u, target) {
                    continue; // u ∈ Ū'_j: excluded from the denominator.
                }
                eligible_users[t] += 1;
                if top.contains(&(target as usize)) {
                    exposed[t] += 1;
                }
            }
        }

        let per_target: Vec<f64> = exposed
            .iter()
            .zip(&eligible_users)
            .map(|(&e, &n)| if n == 0 { 0.0 } else { e as f64 / n as f64 })
            .collect();
        // lint:allow(float-reduction-order): sequential fold in target order, fixed by the scenario's target list
        let mean = per_target.iter().sum::<f64>() / per_target.len() as f64;
        Self {
            per_target,
            mean,
            k,
        }
    }

    /// Mean ER as a percentage (the unit used in all of the paper's tables).
    pub fn mean_percent(&self) -> f64 {
        self.mean * 100.0
    }
}

/// Convenience wrapper: mean ER@K only.
pub fn exposure_ratio_at_k<E: UserEmbeddings + ?Sized>(
    model: &GlobalModel,
    user_embeddings: &E,
    benign_users: &[usize],
    train: &Dataset,
    targets: &[u32],
    k: usize,
) -> f64 {
    ExposureReport::compute(model, user_embeddings, benign_users, train, targets, k).mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_model::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 4 users × 6 items; users 0..3 benign. User embeddings are unit axes so
    /// MF scores equal item-embedding coordinates — fully controllable.
    fn setup() -> (GlobalModel, Vec<Vec<f32>>, Dataset) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = GlobalModel::new(&ModelConfig::mf(2), 6, &mut rng);
        // Item j embedding = [j, 0]: scores increase with item id on axis 0.
        for j in 0..6u32 {
            let emb = model.item_embedding_mut(j);
            emb[0] = j as f32;
            emb[1] = 0.0;
        }
        let user_embeddings = vec![vec![1.0, 0.0]; 4];
        // User 0 interacted with item 5 (the top item) and 1; others with 1.
        let data = Dataset::from_user_items(6, vec![vec![1, 5], vec![1], vec![1], vec![1]]);
        (model, user_embeddings, data)
    }

    #[test]
    fn er_counts_topk_membership() {
        let (model, embs, data) = setup();
        let benign = [0usize, 1, 2, 3];
        // k=2: for users 1..3 top-2 uninteracted = {5, 4}; for user 0 = {4, 3}.
        let rep = ExposureReport::compute(&model, &embs, &benign, &data, &[4], 2);
        assert!((rep.mean - 1.0).abs() < 1e-12, "item 4 in everyone's top-2");
        let rep = ExposureReport::compute(&model, &embs, &benign, &data, &[3], 2);
        assert!(
            (rep.mean - 0.25).abs() < 1e-12,
            "item 3 only in user 0's top-2"
        );
    }

    #[test]
    fn er_excludes_interacted_users_from_denominator() {
        let (model, embs, data) = setup();
        let benign = [0usize, 1, 2, 3];
        // Item 5: user 0 interacted, so denominator is 3 users; all have 5 on top.
        let rep = ExposureReport::compute(&model, &embs, &benign, &data, &[5], 1);
        assert!((rep.mean - 1.0).abs() < 1e-12);
        // Item 1: every user interacted — denominator empty ⇒ ER defined as 0.
        let rep = ExposureReport::compute(&model, &embs, &benign, &data, &[1], 6);
        assert_eq!(rep.mean, 0.0);
    }

    #[test]
    fn er_zero_for_cold_bottom_item() {
        let (model, embs, data) = setup();
        let rep = ExposureReport::compute(&model, &embs, &[0, 1, 2, 3], &data, &[0], 2);
        assert_eq!(rep.mean, 0.0);
    }

    #[test]
    fn multi_target_mean() {
        let (model, embs, data) = setup();
        let rep = ExposureReport::compute(&model, &embs, &[0, 1, 2, 3], &data, &[4, 0], 2);
        assert_eq!(rep.per_target.len(), 2);
        assert!((rep.mean - 0.5).abs() < 1e-12);
        assert!((rep.mean_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn benign_subset_only() {
        let (model, embs, data) = setup();
        // Only user 0 counted: item 3 is in their top-2.
        let rep = ExposureReport::compute(&model, &embs, &[0], &data, &[3], 2);
        assert!((rep.mean - 1.0).abs() < 1e-12);
    }
}
