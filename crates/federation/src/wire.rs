//! Wire encoding of gradient uploads.
//!
//! The simulator keeps everything in-process, but uploads still pass through
//! this compact binary encoding so (a) the reported per-round upload volume
//! (cost analysis, Fig. 6b) reflects what a real deployment would ship, and
//! (b) the serialization path is exercised and tested like production code.
//!
//! Format (little-endian):
//! ```text
//! u32 item_count
//!   repeated: u32 item_id, u32 dim, dim × f32
//! u8  has_mlp
//!   if 1: u32 layer_count
//!     repeated: u32 rows, u32 cols, rows·cols × f32   (weights)
//!     repeated: u32 len, len × f32                    (biases)
//!   u32 len, len × f32                                (projection)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use frs_linalg::Matrix;
use frs_model::{GlobalGradients, MlpGradients};

/// Errors from [`decode`].
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the advertised payload.
    Truncated,
    /// A length field was implausibly large for the remaining buffer.
    CorruptLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "upload truncated"),
            WireError::CorruptLength => write!(f, "corrupt length field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes one upload.
// The u32 length prefixes below are all id-space or dimension counts; the
// adjacent waivers carry the per-site range proofs.
#[allow(clippy::cast_possible_truncation)]
pub fn encode(grads: &GlobalGradients) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_size(grads));
    buf.put_u32_le(grads.items.len() as u32); // lint:allow(lossy-index-cast): items are keyed by u32 ids, so the count fits the prefix
    for (&item, grad) in &grads.items {
        buf.put_u32_le(item);
        buf.put_u32_le(grad.len() as u32); // lint:allow(lossy-index-cast): gradient length is the embedding dimension, far below u32
        for &v in grad {
            buf.put_f32_le(v);
        }
    }
    match &grads.mlp {
        None => buf.put_u8(0),
        Some(mlp) => {
            buf.put_u8(1);
            buf.put_u32_le(mlp.weights.len() as u32); // lint:allow(lossy-index-cast): MLP layer count is single digits
            for w in &mlp.weights {
                buf.put_u32_le(w.rows() as u32); // lint:allow(lossy-index-cast): layer dimensions are config-bounded, far below u32
                buf.put_u32_le(w.cols() as u32); // lint:allow(lossy-index-cast): layer dimensions are config-bounded, far below u32
                for &v in w.as_slice() {
                    buf.put_f32_le(v);
                }
            }
            for b in &mlp.biases {
                buf.put_u32_le(b.len() as u32); // lint:allow(lossy-index-cast): bias length is a layer dimension, far below u32
                for &v in b {
                    buf.put_f32_le(v);
                }
            }
            buf.put_u32_le(mlp.projection.len() as u32); // lint:allow(lossy-index-cast): projection length is the embedding dimension, far below u32
            for &v in &mlp.projection {
                buf.put_f32_le(v);
            }
        }
    }
    buf.freeze()
}

/// Exact size [`encode`] will produce, without allocating.
pub fn encoded_size(grads: &GlobalGradients) -> usize {
    let mut size = 4; // item count
    for grad in grads.items.values() {
        size += 4 + 4 + 4 * grad.len();
    }
    size += 1; // mlp flag
    if let Some(mlp) = &grads.mlp {
        size += 4;
        for w in &mlp.weights {
            size += 8 + 4 * w.rows() * w.cols();
        }
        for b in &mlp.biases {
            size += 4 + 4 * b.len();
        }
        size += 4 + 4 * mlp.projection.len();
    }
    size
}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn get_f32_vec(buf: &mut impl Buf, len: usize) -> Result<Vec<f32>, WireError> {
    need(buf, 4 * len)?;
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

fn get_len(buf: &mut impl Buf) -> Result<usize, WireError> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    // A length that can't possibly fit the remaining buffer is corruption,
    // not mere truncation.
    if len > buf.remaining() {
        return Err(WireError::CorruptLength);
    }
    Ok(len)
}

/// Deserializes an upload produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Result<GlobalGradients, WireError> {
    let mut grads = GlobalGradients::new();
    let n_items = get_len(&mut buf)?;
    for _ in 0..n_items {
        need(&buf, 8)?;
        let item = buf.get_u32_le();
        let dim = buf.get_u32_le() as usize;
        if dim * 4 > buf.remaining() {
            return Err(WireError::CorruptLength);
        }
        grads.items.insert(item, get_f32_vec(&mut buf, dim)?);
    }
    need(&buf, 1)?;
    if buf.get_u8() == 1 {
        let n_layers = get_len(&mut buf)?;
        let mut weights = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            need(&buf, 8)?;
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            if rows.saturating_mul(cols).saturating_mul(4) > buf.remaining() {
                return Err(WireError::CorruptLength);
            }
            weights.push(Matrix::from_vec(
                rows,
                cols,
                get_f32_vec(&mut buf, rows * cols)?,
            ));
        }
        let mut biases = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let len = get_len(&mut buf)?;
            biases.push(get_f32_vec(&mut buf, len)?);
        }
        let len = get_len(&mut buf)?;
        let projection = get_f32_vec(&mut buf, len)?;
        grads.mlp = Some(MlpGradients {
            weights,
            biases,
            projection,
        });
    }
    Ok(grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_upload(with_mlp: bool) -> GlobalGradients {
        let mut g = GlobalGradients::new();
        g.add_item_grad(3, &[1.0, -2.5, 0.125]);
        g.add_item_grad(17, &[0.0, 4.0, -1.0]);
        if with_mlp {
            let mut m = MlpGradients::zeros(&[(6, 3), (3, 2)], 2);
            m.weights[0].row_mut(1)[2] = 0.5;
            m.biases[0][0] = -0.25;
            m.projection[1] = 9.0;
            g.mlp = Some(m);
        }
        g
    }

    #[test]
    fn roundtrip_items_only() {
        let g = sample_upload(false);
        assert_eq!(decode(encode(&g)).unwrap(), g);
    }

    #[test]
    fn roundtrip_with_mlp() {
        let g = sample_upload(true);
        assert_eq!(decode(encode(&g)).unwrap(), g);
    }

    #[test]
    fn roundtrip_empty() {
        let g = GlobalGradients::new();
        assert_eq!(decode(encode(&g)).unwrap(), g);
    }

    #[test]
    fn encoded_size_is_exact() {
        for with_mlp in [false, true] {
            let g = sample_upload(with_mlp);
            assert_eq!(encode(&g).len(), encoded_size(&g), "mlp={with_mlp}");
        }
    }

    #[test]
    fn truncated_buffer_rejected() {
        let g = sample_upload(true);
        let full = encode(&g);
        for cut in [0usize, 3, 10, full.len() - 1] {
            let partial = full.slice(..cut);
            assert!(decode(partial).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_rejected() {
        let g = sample_upload(false);
        let mut raw = BytesMut::from(&encode(&g)[..]);
        // Blow up the item count field.
        raw[0] = 0xFF;
        raw[1] = 0xFF;
        let err = decode(raw.freeze()).unwrap_err();
        assert!(matches!(
            err,
            WireError::CorruptLength | WireError::Truncated
        ));
    }
}
