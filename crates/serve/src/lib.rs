//! Serving layer for the PIECK reproduction: answer top-K recommendation
//! queries from a live or checkpointed federated training run.
//!
//! Three pieces, bottom up:
//!
//! - [`wire`] — the line-delimited JSON protocol (`{"user":3,"k":10}` in,
//!   one response line out) spoken over a local Unix socket.
//! - [`snapshot`] — [`Snapshot`]/[`SnapshotCell`]: the trainer publishes an
//!   immutable model view each round; query handlers rank against the
//!   latest epoch lock-free, so serving never blocks training and training
//!   never tears a response.
//! - [`server`] — the daemon: a Unix-socket accept loop whose handler
//!   concurrency is gated by a `CoreBudget` lease (shared with the
//!   trainer), with drain-based shutdown so an interrupt answers every
//!   in-flight query before exiting.
//!
//! The `paper serve` subcommand (crate `frs-experiments`) wires these to a
//! scenario: it trains toward — or resumes from — a cache checkpoint,
//! publishes a snapshot per round, and serves queries the whole time. This
//! crate stays training-agnostic: anything that can produce a
//! [`Snapshot`] can serve.

pub mod server;
pub mod snapshot;
pub mod wire;

pub use server::{respond_line, spawn, ServerHandle};
pub use snapshot::{Snapshot, SnapshotCell};
pub use wire::{ErrorResponse, Request, ScoredItem, StatusResponse, TopKResponse, DEFAULT_K};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    use frs_data::Dataset;
    use frs_federation::CoreBudget;
    use frs_model::{GlobalModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snapshot(round: usize, done: bool) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(11);
        let model = GlobalModel::new(&ModelConfig::mf(4), 8, &mut rng);
        let train = Arc::new(Dataset::from_user_items(
            8,
            vec![vec![0, 1], vec![2], vec![3, 4, 5]],
        ));
        let users = frs_model::EmbeddingStore::from_rows(
            (0..3).map(|u| vec![0.1 * (u as f32 + 1.0); 4]).collect(),
        );
        Snapshot::new(round, done, model, users, train)
    }

    fn socket_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("frs-serve-test-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn respond_line_speaks_the_protocol() {
        let cell = SnapshotCell::new(snapshot(5, false));
        let queries = AtomicU64::new(0);

        let status: StatusResponse =
            serde_json::from_str(&respond_line("{}", &cell, &queries)).unwrap();
        assert_eq!(status.round, 5);
        assert_eq!(status.n_users, 3);
        assert_eq!(status.n_items, 8);
        assert_eq!(status.queries_served, 0);

        let top: TopKResponse =
            serde_json::from_str(&respond_line("{\"user\":0,\"k\":3}", &cell, &queries)).unwrap();
        assert_eq!(top.user, 0);
        assert_eq!(top.items.len(), 3);
        assert!(top.items.iter().all(|s| s.item > 1), "interacted excluded");

        // Default k applies when omitted; 8 items minus 2 interacted = 6.
        let top: TopKResponse =
            serde_json::from_str(&respond_line("{\"user\":0}", &cell, &queries)).unwrap();
        assert_eq!(top.k, wire::DEFAULT_K);
        assert_eq!(top.items.len(), 6);

        let err: ErrorResponse =
            serde_json::from_str(&respond_line("{\"user\":99}", &cell, &queries)).unwrap();
        assert!(err.error.contains("out of range"), "{}", err.error);

        let err: ErrorResponse =
            serde_json::from_str(&respond_line("not json", &cell, &queries)).unwrap();
        assert!(err.error.contains("bad request"), "{}", err.error);

        let status: StatusResponse =
            serde_json::from_str(&respond_line("{}", &cell, &queries)).unwrap();
        assert_eq!(status.queries_served, 2, "only top-K answers count");
    }

    #[test]
    fn daemon_answers_concurrent_clients_across_epoch_swaps() {
        let cell = Arc::new(SnapshotCell::new(snapshot(0, false)));
        let budget = CoreBudget::new(4);
        let path = socket_path("concurrent");
        let handle = spawn(&path, Arc::clone(&cell), budget.lease()).unwrap();

        let clients: Vec<_> = (0..4)
            .map(|c| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let mut stream = UnixStream::connect(&path).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut answers = Vec::new();
                    for i in 0..5 {
                        let user = (c + i) % 3;
                        writeln!(stream, "{{\"user\":{user},\"k\":2}}").unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        let top: TopKResponse = serde_json::from_str(line.trim()).unwrap();
                        assert_eq!(top.user, user);
                        assert_eq!(top.items.len(), 2);
                        answers.push(top.round);
                    }
                    answers
                })
            })
            .collect();

        // Swap epochs while the clients hammer the socket.
        for round in 1..4 {
            cell.publish(snapshot(round, round == 3));
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        for client in clients {
            let rounds = client.join().unwrap();
            // Every answer carries some published round, monotone per
            // connection (later queries never see an older epoch).
            for pair in rounds.windows(2) {
                assert!(pair[0] <= pair[1], "epochs went backwards: {rounds:?}");
            }
        }

        assert_eq!(handle.queries_served(), 20);
        let served = handle.shutdown();
        assert_eq!(served, 20);
        assert!(!path.exists(), "shutdown removes the socket file");
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let cell = Arc::new(SnapshotCell::new(snapshot(2, true)));
        let budget = CoreBudget::new(2);
        let path = socket_path("drain");
        let handle = spawn(&path, cell, budget.lease()).unwrap();

        // Write requests but delay reading: shutdown must still answer
        // everything already buffered before the socket closes.
        let mut stream = UnixStream::connect(&path).unwrap();
        for user in [0usize, 1, 2] {
            writeln!(stream, "{{\"user\":{user},\"k\":1}}").unwrap();
        }
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(100));

        let shutdown = std::thread::spawn(move || handle.shutdown());
        let mut reader = BufReader::new(stream);
        let mut answered = 0;
        for _ in 0..3 {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            let top: TopKResponse = serde_json::from_str(line.trim()).unwrap();
            assert_eq!(top.items.len(), 1);
            answered += 1;
        }
        assert_eq!(answered, 3, "drain answers every buffered request");
        assert_eq!(shutdown.join().unwrap(), 3);
        assert!(!path.exists());
    }

    #[test]
    fn stale_socket_is_reclaimed_live_socket_is_refused() {
        let path = socket_path("reclaim");
        // A dead daemon's leftover: bind and drop without unlinking.
        drop(std::os::unix::net::UnixListener::bind(&path).unwrap());
        assert!(path.exists());

        let budget = CoreBudget::new(2);
        let cell = Arc::new(SnapshotCell::new(snapshot(0, false)));
        let handle = spawn(&path, Arc::clone(&cell), budget.lease()).unwrap();

        // A second daemon on the live socket is refused.
        let err = spawn(&path, cell, budget.lease()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        handle.shutdown();
    }
}
