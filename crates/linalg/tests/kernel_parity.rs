//! Kernel parity: the blocked/partial-select fast paths are **bitwise**
//! equal to their naive scalar references.
//!
//! The whole aggregation stack (shared distance matrix → Krum scores →
//! metric top-K) is built on the guarantee that switching kernels never
//! changes a single output bit, so golden reports stay `cmp`-identical
//! across the refactor. These proptests are the CI `kernel-parity` job; run
//! them locally with
//!
//! ```text
//! cargo test --release -p frs-linalg --test kernel_parity
//! ```

use frs_linalg::{
    dot, dot_blocked, squared_distance_blocked, squared_l2_distance, sum_k_smallest,
    DistanceMatrix, DISTANCE_BLOCK,
};
use proptest::prelude::*;

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    // Two equal-length vectors; lengths sweep through every unroll remainder
    // (0..4) and past the 4-wide chunk and 16-wide block boundaries.
    prop::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 0..max_len)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

/// Naive Krum scoring straight off a distance closure: full per-row sort,
/// prefix sum — the shape the defenses used before the shared matrix.
fn naive_krum_scores(
    n: usize,
    f: usize,
    dist: impl Fn(usize, usize) -> f32,
) -> Option<Vec<(usize, f32)>> {
    if n <= f + 2 {
        return None;
    }
    let keep = n - f - 2;
    let mut scores = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f32> = (0..n).filter(|&j| j != i).map(|j| dist(i, j)).collect();
        row.sort_by(f32::total_cmp);
        scores.push((i, row[..keep].iter().sum()));
    }
    Some(scores)
}

proptest! {
    #[test]
    fn blocked_squared_distance_is_bitwise_scalar((a, b) in vec_pair(70)) {
        prop_assert_eq!(
            squared_distance_blocked(&a, &b).to_bits(),
            squared_l2_distance(&a, &b).to_bits()
        );
    }

    #[test]
    fn blocked_dot_is_bitwise_scalar((a, b) in vec_pair(70)) {
        prop_assert_eq!(dot_blocked(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn blocked_kernels_preserve_negative_zero_identity(len in 0usize..12) {
        // All-zero inputs: `.sum()` folds from -0.0, and the blocked kernels
        // must reproduce that exact bit pattern, not +0.0.
        let a = vec![0.0f32; len];
        prop_assert_eq!(
            squared_distance_blocked(&a, &a).to_bits(),
            squared_l2_distance(&a, &a).to_bits()
        );
        prop_assert_eq!(dot_blocked(&a, &a).to_bits(), dot(&a, &a).to_bits());
    }

    #[test]
    fn sum_k_smallest_is_bitwise_sorted_prefix(
        values in prop::collection::vec(-50.0f32..50.0, 0..40),
        k in 0usize..45,
    ) {
        let mut sorted = values.clone();
        sorted.sort_by(f32::total_cmp);
        let reference: f32 = sorted[..k.min(sorted.len())].iter().sum();
        let mut scratch = values;
        prop_assert_eq!(sum_k_smallest(&mut scratch, k).to_bits(), reference.to_bits());
    }

    #[test]
    fn distance_matrix_evaluates_each_pair_once_per_cell(
        seed in prop::collection::vec(0.0f32..1.0, 10)
    ) {
        let dist = |i: usize, j: usize| seed[i] * 31.0 + seed[j] * 7.0 + (i * 10 + j) as f32;
        let sym = |i: usize, j: usize| dist(i.min(j), i.max(j));
        let m = DistanceMatrix::from_fn(seed.len(), sym);
        for i in 0..seed.len() {
            prop_assert_eq!(m.get(i, i).to_bits(), 0.0f32.to_bits());
            for j in 0..seed.len() {
                if i != j {
                    prop_assert_eq!(m.get(i, j).to_bits(), sym(i, j).to_bits());
                    prop_assert_eq!(m.get(j, i).to_bits(), m.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn krum_scores_are_bitwise_naive(
        seed in prop::collection::vec(0.0f32..10.0, 3..14),
        f in 0usize..5,
    ) {
        let n = seed.len();
        let dist = |i: usize, j: usize| {
            let (lo, hi) = (i.min(j), i.max(j));
            (seed[lo] - seed[hi]) * (seed[lo] - seed[hi]) + (lo + hi) as f32 * 0.125
        };
        let matrix = DistanceMatrix::from_fn(n, dist);
        let fast = matrix.krum_scores(f);
        let naive = naive_krum_scores(n, f, dist);
        prop_assert_eq!(fast.is_some(), naive.is_some());
        if let (Some(fast), Some(naive)) = (fast, naive) {
            prop_assert_eq!(fast.len(), naive.len());
            for ((fi, fs), (ni, ns)) in fast.iter().zip(&naive) {
                prop_assert_eq!(fi, ni);
                prop_assert_eq!(fs.to_bits(), ns.to_bits());
            }
        }
    }

    #[test]
    fn deactivation_is_bitwise_fresh_submatrix(
        seed in prop::collection::vec(0.0f32..10.0, 6..12),
        kill_a in 0usize..12,
        kill_b in 0usize..12,
        f in 0usize..3,
    ) {
        let n = seed.len();
        let dist = |i: usize, j: usize| {
            let (lo, hi) = (i.min(j), i.max(j));
            (seed[lo] + 1.0) * (seed[hi] + 2.0) + lo as f32
        };
        let mut matrix = DistanceMatrix::from_fn(n, dist);
        let mut survivors: Vec<usize> = (0..n).collect();
        for kill in [kill_a % n, kill_b % n] {
            if matrix.deactivate(kill) {
                survivors.retain(|&i| i != kill);
            }
        }
        // Fresh matrix over the survivors only, same distance function.
        let fresh = DistanceMatrix::from_fn(survivors.len(), |a, b| {
            dist(survivors[a], survivors[b])
        });
        let masked = matrix.krum_scores(f);
        let rebuilt = fresh.krum_scores(f);
        prop_assert_eq!(masked.is_some(), rebuilt.is_some());
        if let (Some(masked), Some(rebuilt)) = (masked, rebuilt) {
            prop_assert_eq!(masked.len(), rebuilt.len());
            for ((mi, ms), (ri, rs)) in masked.iter().zip(&rebuilt) {
                prop_assert_eq!(*mi, survivors[*ri]);
                prop_assert_eq!(ms.to_bits(), rs.to_bits());
            }
        }
    }
}

#[test]
fn block_constant_is_sane() {
    // The block size is a tuning constant, but the parity suite above must
    // exercise vectors longer than one block to cover the tiled path.
    let block = DISTANCE_BLOCK;
    let max_gen_len = 70usize; // the vec_pair(70) bound used above
    assert!(block >= 2);
    assert!(
        max_gen_len > 4 * block,
        "vec_pair must span multiple blocked chunks"
    );
}
