//! Real-data pipeline: a MovieLens-format file (written as a fixture) flows
//! through the loader, the leave-one-out split, federated training, and the
//! attack — proving the library is not synthetic-data-only.

use pieck_frs::data::{leave_one_out, load_movielens, LoadOptions};
use pieck_frs::federation::{BenignClient, Client, ClientsPerRound, FederationConfig, Simulation};
use pieck_frs::metrics::hit_ratio_at_k;
use pieck_frs::model::{GlobalModel, ModelConfig};
use pieck_frs::pieck::{PieckClient, PieckConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Writes a u.data-style fixture with a long-tail popularity profile:
/// 40 users, 60 items, item popularity ∝ 1/(rank+1).
fn write_fixture(path: &std::path::Path) {
    let mut rng = StdRng::seed_from_u64(99);
    let mut lines = String::new();
    for user in 1..=40u32 {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..12 {
            // Zipf-ish item draw over ids 1..=60.
            let r: f64 = rng.gen_range(0.0f64..1.0);
            let item = ((60.0f64.powf(r) - 1.0).max(0.0) as u32 % 60) + 1;
            if seen.insert(item) {
                lines.push_str(&format!("{user}\t{item}\t5\t0\n"));
            }
        }
    }
    std::fs::write(path, lines).unwrap();
}

#[test]
fn movielens_file_to_attack_pipeline() {
    let path = std::env::temp_dir().join("pieck_frs_pipeline_u.data");
    write_fixture(&path);

    let (full, maps) = load_movielens(&path, &LoadOptions::ml100k()).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        full.n_users() >= 30,
        "loader kept most users: {}",
        full.n_users()
    );
    assert!(!maps.item_from_dense.is_empty());

    let mut rng = StdRng::seed_from_u64(1);
    let split = leave_one_out(&full, &mut rng);
    let train = Arc::new(split.train.clone());
    let model = GlobalModel::new(&ModelConfig::mf(8), train.n_items(), &mut rng);

    // Benign population from the real file + 3 PIECK-UEA sybils.
    let n_benign = train.n_users();
    let target = train.coldest_items(1)[0];
    let mut clients: Vec<Box<dyn Client>> = (0..n_benign)
        .map(|u| {
            Box::new(BenignClient::new(
                u,
                Arc::clone(&train),
                8,
                0.1,
                10 + u as u64,
            )) as Box<dyn Client>
        })
        .collect();
    for i in 0..3 {
        let mut cfg = PieckConfig::uea(vec![target]);
        cfg.top_n = 10;
        clients.push(Box::new(PieckClient::new(n_benign + i, cfg)));
    }
    let config = FederationConfig {
        clients_per_round: ClientsPerRound::Count(24),
        seed: 2,
        ..Default::default()
    };
    let mut sim = Simulation::builder(model)
        .clients(clients)
        .config(config)
        .build();
    sim.run(60);

    // The pipeline produced a functioning recommender...
    let benign = sim.benign_ids();
    let hr = hit_ratio_at_k(sim.model(), &sim.user_embeddings(), &benign, &split, 10);
    assert!(
        hr > 0.05,
        "model should learn from the loaded file: HR {hr}"
    );
    // ...and the attack machinery ran against loaded data without issue.
    assert!(sim.stats().total_malicious_selected > 0);
}

/// The scenario/suite-level entry point for real dumps: a
/// `PaperDataset::File` flows through `paper_scenario` → `scenario::run`
/// end to end — deterministically — with no synthetic generation involved.
#[test]
fn file_dataset_runs_through_the_scenario_harness() {
    use pieck_frs::attacks::AttackKind;
    use pieck_frs::experiments::scenario;
    use pieck_frs::experiments::{paper_scenario, PaperDataset};
    use pieck_frs::model::ModelKind;

    let path = std::env::temp_dir().join("pieck_frs_scenario_u.data");
    write_fixture(&path);

    let dataset = PaperDataset::File(path.to_string_lossy().into_owned());
    // --scale does not shrink real files.
    let mut cfg = paper_scenario(dataset, ModelKind::Mf, 0.1, 5);
    assert_eq!(
        cfg.federation.clients_per_round,
        ClientsPerRound::Count(256)
    );
    assert_eq!(cfg.poison_scale, 1.0);
    cfg.federation.clients_per_round = ClientsPerRound::Count(24);
    cfg.rounds = 40;
    cfg.attack = AttackKind::PieckUea.into();

    let (full, _, targets) = scenario::build_world(&cfg);
    assert!(full.n_users() >= 30, "file decided the shape");
    assert_eq!(targets.len(), 1);

    let a = scenario::run(&cfg);
    let b = scenario::run(&cfg);
    assert!(
        a.hr_percent > 0.0,
        "learned from the file: {}",
        a.hr_percent
    );
    assert_eq!(a.er_percent, b.er_percent, "file runs are deterministic");
    assert_eq!(a.hr_percent, b.hr_percent);

    std::fs::remove_file(&path).ok();
}

/// Cache identity of file-backed cells tracks the file *content*: editing
/// the dump re-keys the cell (no stale hits), reverting restores the key,
/// and file specs key differently from synthetic ones.
#[test]
fn file_content_hash_rekeys_the_suite_cache() {
    use pieck_frs::experiments::cache::scenario_key;
    use pieck_frs::experiments::{paper_scenario, PaperDataset};
    use pieck_frs::model::ModelKind;

    let path = std::env::temp_dir().join("pieck_frs_cache_key_u.data");
    write_fixture(&path);
    let dataset = PaperDataset::File(path.to_string_lossy().into_owned());
    let cfg = paper_scenario(dataset, ModelKind::Mf, 1.0, 5);

    let original = scenario_key(&cfg);
    assert_ne!(
        original,
        scenario_key(&paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 1.0, 5)),
        "file-backed and synthetic cells never collide"
    );

    // Append one interaction: same path, different bytes ⇒ different key.
    let unedited = std::fs::read(&path).unwrap();
    let mut edited = unedited.clone();
    edited.extend_from_slice(b"39\t7\t5\t0\n");
    std::fs::write(&path, &edited).unwrap();
    let after_edit = scenario_key(&cfg);
    assert_ne!(original, after_edit, "editing the dump must re-key");

    // Reverting the bytes restores the original key.
    std::fs::write(&path, &unedited).unwrap();
    assert_eq!(original, scenario_key(&cfg));

    std::fs::remove_file(&path).ok();
}
