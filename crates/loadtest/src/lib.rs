//! `frs_loadtest`: saturation harness for the serving daemon.
//!
//! Drives a running `paper serve` daemon (Unix socket or TCP) with many
//! concurrent pipelined connections and measures what comes back:
//!
//! - [`hist`] — [`LogHistogram`], an HDR-style log-bucketed latency
//!   histogram (fixed memory, ~1.6 % quantile error, no external crate).
//! - [`dist`] — [`KeyDist`]/[`KeySampler`], seeded uniform and zipf user-id
//!   distributions so the request stream is reproducible.
//! - [`run`](self::run()) (module `run`): open- and closed-loop drivers, the
//!   status-probe bootstrap, and [`LoadReport`] with achieved QPS,
//!   p50/p95/p99, error counts, and bench-gate records
//!   (`serve/loadtest_ns_per_query` as the QPS floor,
//!   `serve/loadtest_p99_ns` as the tail-latency ceiling).
//!
//! The `paper loadtest` subcommand (crate `frs-experiments`) is a thin CLI
//! over it; CI's `serve-load` job feeds the gate records
//! into `bench-gate compare` against `BENCH_baseline.json`, which is what
//! turns "the daemon is fast" into a ratcheted, regression-gated number.
// The loadtest drivers run on worker threads whose panics would silently
// shrink the measured load: panic-class calls are denied outside tests.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod dist;
pub mod hist;
pub mod run;

pub use dist::{KeyDist, KeySampler};
pub use hist::LogHistogram;
pub use run::{run, LoadOptions, LoadReport, Mode, Target};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use frs_data::Dataset;
    use frs_federation::CoreBudget;
    use frs_model::{EmbeddingStore, GlobalModel, ModelConfig};
    use frs_serve::{Router, ScenarioHandle, Snapshot};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snapshot(n_users: usize) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(13);
        let model = GlobalModel::new(&ModelConfig::mf(8), 32, &mut rng);
        let interactions: Vec<Vec<u32>> = (0..n_users).map(|u| vec![(u % 32) as u32]).collect();
        let train = Arc::new(Dataset::from_user_items(32, interactions));
        let users = EmbeddingStore::from_rows(
            (0..n_users)
                .map(|u| (0..8).map(|d| 0.05 * ((u + d) as f32)).collect())
                .collect(),
        );
        Snapshot::new(4, false, model, users, train)
    }

    fn boot_daemon() -> frs_serve::ServerHandle {
        let router = Arc::new(
            Router::new(vec![
                Arc::new(ScenarioHandle::new("alpha", snapshot(20))),
                Arc::new(ScenarioHandle::new("beta", snapshot(12))),
            ])
            .unwrap(),
        );
        let budget = CoreBudget::new(4);
        frs_serve::spawn_tcp("127.0.0.1:0", router, budget.lease()).unwrap()
    }

    #[test]
    fn closed_loop_measures_a_live_daemon() {
        let daemon = boot_daemon();
        let addr = daemon.local_addr().unwrap();
        let report = run(&LoadOptions {
            target: Target::Tcp(addr.to_string()),
            connections: 3,
            pipeline: 4,
            requests: 300,
            mode: Mode::Closed,
            dist: KeyDist::Zipf(1.0),
            seed: 7,
            k: 5,
            scenarios: vec!["alpha".into(), "beta".into()],
        })
        .unwrap();

        assert_eq!(report.sent, 300);
        assert_eq!(report.received, 300);
        assert_eq!(report.errors, 0, "all sampled users servable");
        assert!(report.qps > 0.0);
        assert!(report.p50_ns > 0 && report.p50_ns <= report.p99_ns);
        assert!(report.p99_ns <= report.max_ns);

        // Both scenarios actually took traffic.
        let served: u64 = daemon.queries_served();
        assert_eq!(served, 300);
        for handle in daemon.router().scenarios() {
            assert!(
                handle.queries_served() > 0,
                "scenario {} starved",
                handle.name()
            );
        }

        let gate = report.gate_records();
        assert!(gate.contains("\"bench\":\"serve/loadtest_ns_per_query\""));
        assert!(gate.contains("\"bench\":\"serve/loadtest_p99_ns\""));
        daemon.shutdown();
    }

    #[test]
    fn open_loop_anchors_latency_to_the_schedule() {
        let daemon = boot_daemon();
        let addr = daemon.local_addr().unwrap();
        let report = run(&LoadOptions {
            target: Target::Tcp(addr.to_string()),
            connections: 2,
            pipeline: 1,
            requests: 100,
            mode: Mode::Open { rate: 2_000.0 },
            dist: KeyDist::Uniform,
            seed: 11,
            k: 3,
            scenarios: Vec::new(), // default route, PR 6 client shape
        })
        .unwrap();
        assert_eq!(report.received, 100);
        assert_eq!(report.errors, 0);
        // 100 requests at 2000/s across 2 conns ≈ 25 ms of schedule.
        assert!(report.elapsed_ns > 10_000_000, "schedule paced the run");
        daemon.shutdown();
    }

    #[test]
    fn unknown_scenario_is_rejected_at_bootstrap() {
        let daemon = boot_daemon();
        let addr = daemon.local_addr().unwrap();
        let err = run(&LoadOptions {
            target: Target::Tcp(addr.to_string()),
            scenarios: vec!["gamma".into()],
            requests: 10,
            ..LoadOptions::default()
        })
        .unwrap_err();
        assert!(err.contains("does not serve scenario `gamma`"), "{err}");
        assert!(err.contains("alpha, beta"), "{err}");
        daemon.shutdown();
    }

    #[test]
    fn request_streams_are_seed_reproducible() {
        // Two runs with the same seed must sample the same users; pin this
        // by hitting a single-user-visible property: per-scenario counts.
        let counts = |seed: u64| {
            let daemon = boot_daemon();
            let addr = daemon.local_addr().unwrap();
            run(&LoadOptions {
                target: Target::Tcp(addr.to_string()),
                connections: 2,
                pipeline: 4,
                requests: 120,
                mode: Mode::Closed,
                dist: KeyDist::Zipf(1.1),
                seed,
                k: 4,
                scenarios: vec!["alpha".into(), "beta".into()],
            })
            .unwrap();
            let per: Vec<u64> = daemon
                .router()
                .scenarios()
                .iter()
                .map(|h| h.queries_served())
                .collect();
            daemon.shutdown();
            per
        };
        assert_eq!(counts(3), counts(3), "same seed, same scenario mix");
    }

    #[test]
    fn zero_shaped_options_are_rejected() {
        let base = LoadOptions::default();
        for bad in [
            LoadOptions {
                connections: 0,
                ..base.clone()
            },
            LoadOptions {
                requests: 0,
                ..base.clone()
            },
            LoadOptions {
                pipeline: 0,
                ..base.clone()
            },
            LoadOptions {
                mode: Mode::Open { rate: 0.0 },
                ..base
            },
        ] {
            assert!(run(&bad).is_err());
        }
    }
}
