//! Cooperative SIGINT/SIGTERM shutdown for checkpointed runs.
//!
//! A checkpointed `paper` invocation (`--checkpoint-every`, `paper serve`)
//! installs handlers that only set a process-wide flag; the round loop
//! ([`crate::scenario`]) polls it at round boundaries, writes a final
//! checkpoint, and unwinds normally — so a Ctrl-C'd run exits 130 with its
//! state on disk instead of dying mid-write. Plain runs never install the
//! handlers and keep the default kill-me-now semantics.
//!
//! The flag is a plain [`AtomicBool`]: everything here is async-signal-safe
//! (the handler performs a single relaxed-ordering-free store).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown (SIGINT/SIGTERM, or a test's [`trigger`]) was
/// requested. Checkpointed round loops poll this at round boundaries.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Requests a shutdown programmatically — what the signal handler does, and
/// what tests use to exercise the interrupt path deterministically.
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears a previous request. Tests share one process; production code has
/// no reason to un-request a shutdown.
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

/// The conventional exit code for a SIGINT-terminated process (128 + 2).
pub const EXIT_INTERRUPTED: i32 = 130;

/// Serializes tests that manipulate the process-wide flag — [`trigger`]
/// would otherwise interrupt an unrelated checkpointed test mid-run.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

extern "C" fn on_signal(_signum: i32) {
    trigger();
}

/// Installs the SIGINT/SIGTERM handlers (idempotent). Unix only; elsewhere
/// this is a no-op and runs keep default signal semantics.
pub fn install_handlers() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        #[cfg(unix)]
        unsafe {
            // Raw `signal(2)` instead of a libc crate: the sanctioned
            // dependency set has none, and a flag-setting handler needs no
            // sigaction niceties. The return value (previous handler or
            // SIG_ERR) is deliberately ignored — failure to install leaves
            // default semantics, which is the pre-feature behaviour.
            extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            }
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_flip_the_flag() {
        let _guard = test_lock();
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install_handlers();
        install_handlers();
    }
}
