//! One declaration per paper table/figure, consumed by the `paper` CLI.
//!
//! Every command is a declarative [`ExperimentSuite`] (or a bespoke report
//! builder) over registry selections: the ablation tables (VI, IX) sweep
//! the parameterized catalog entries `frs_attacks::variants` registers at
//! startup — zero runtime `register_attack` calls, so their cells rebuild
//! from serialized configs alone. A few figures (3, 4, 6b) and Table II
//! need direct simulation access and build their [`Report`] by hand; every
//! command renders through the same Markdown/CSV/JSON sinks.

use std::sync::Arc;

use frs_attacks::{AttackKind, AttackSel};
use frs_data::{synth, DataSource, DatasetSpec, DatasetStats};
use frs_defense::{DefenseKind, DefenseSel};
use frs_federation::ClientsPerRound;
use frs_metrics::{
    average_recommended_popularity, catalogue_coverage, covered_users, gini_coefficient,
    pairwise_kl, recommendation_frequency, user_coverage_ratio, DeltaNormTracker,
};
use frs_model::{LossKind, ModelKind};
use pieck_core::MultiTargetStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::sha256_hex;
use crate::cli::CommonArgs;
use crate::presets::{paper_scenario, PaperDataset};
use crate::report::{pct, Report, Table};
use crate::scenario::{build_simulation, build_world, ScenarioConfig};
use crate::suite::{Axis, ConfigPatch, ExecOptions, ExperimentSuite, RunOptions, Sweep};

/// Every subcommand of the `paper` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperCommand {
    Table2,
    Table3,
    Table4,
    Table5,
    Table6,
    Table7,
    Table9,
    Table10,
    Table11,
    Fig3,
    Fig4,
    Fig5,
    Fig6a,
    Fig6b,
    Fig7,
    PopularityBias,
    Scale,
}

impl PaperCommand {
    /// All commands, in paper order.
    pub fn all() -> [PaperCommand; 17] {
        use PaperCommand::*;
        [
            Table2,
            Table3,
            Table4,
            Table5,
            Table6,
            Table7,
            Table9,
            Table10,
            Table11,
            Fig3,
            Fig4,
            Fig5,
            Fig6a,
            Fig6b,
            Fig7,
            PopularityBias,
            Scale,
        ]
    }

    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Table2 => "table2",
            Self::Table3 => "table3",
            Self::Table4 => "table4",
            Self::Table5 => "table5",
            Self::Table6 => "table6",
            Self::Table7 => "table7",
            Self::Table9 => "table9",
            Self::Table10 => "table10",
            Self::Table11 => "table11",
            Self::Fig3 => "fig3",
            Self::Fig4 => "fig4",
            Self::Fig5 => "fig5",
            Self::Fig6a => "fig6a",
            Self::Fig6b => "fig6b",
            Self::Fig7 => "fig7",
            Self::PopularityBias => "popularity-bias",
            Self::Scale => "scale",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|c| c.name() == name)
    }

    /// Whether this command executes a cell grid — i.e. consults the suite
    /// cache and emits progress events. The bespoke commands drive a
    /// simulation directly and never touch either.
    pub fn emits_cell_events(&self) -> bool {
        !matches!(
            self,
            Self::Table2 | Self::Fig3 | Self::Fig4 | Self::PopularityBias | Self::Scale
        )
    }

    /// One-line description for `paper list`.
    pub fn description(&self) -> &'static str {
        match self {
            Self::Table2 => "PKL / UCR of mined popular sets (Table II)",
            Self::Table3 => "every attack × model × dataset, no defense (Table III)",
            Self::Table4 => "every defense × the top attacks (Table IV)",
            Self::Table5 => "effect of the list length K (Table V)",
            Self::Table6 => "L_IPE and L_def ablations (Table VI)",
            Self::Table7 => "q=10 and |T|=3 system settings (Table VII)",
            Self::Table9 => "multi-target strategies (Table IX)",
            Self::Table10 => "inconsistent learning rates (Table X)",
            Self::Table11 => "BCE vs BPR training loss (Table XI)",
            Self::Fig3 => "item-popularity long tail (Fig. 3)",
            Self::Fig4 => "Δ-Norm top-50 vs true popularity (Fig. 4)",
            Self::Fig5 => "malicious ratio p̃ and mined N sweeps (Fig. 5)",
            Self::Fig6a => "ER/HR convergence trends (Fig. 6a)",
            Self::Fig6b => "cost per communication round (Fig. 6b)",
            Self::Fig7 => "HR vs negative-sampling ratio q (Fig. 7)",
            Self::PopularityBias => "popularity bias of served lists (extension)",
            Self::Scale => "sampled million-client smoke cell (the CI scale gate)",
        }
    }

    /// Runs the command and returns its report. `args.positional[1..]` holds
    /// command operands (e.g. dataset names for `table3`); unknown operands
    /// are an `Err`, not a process exit, so programmatic callers can recover.
    ///
    /// Suite-backed commands execute through `exec` — their cells consult
    /// its cache and stream to its progress sink. The bespoke commands that
    /// drive a simulation directly (`table2`, `fig3`, `fig4`,
    /// `popularity-bias`) have no per-cell grid and bypass both.
    pub fn run(&self, args: &CommonArgs, exec: &ExecOptions<'_>) -> Result<Report, String> {
        let opts = args.run_options();
        let operands = &args.positional.get(1..).unwrap_or_default();
        Ok(match self {
            Self::Table2 => table2(args, &opts, exec),
            Self::Table3 => table3(operands)?
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Attack, Axis::Dataset),
            Self::Table4 => table4(operands)?
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Defense, Axis::Attack),
            Self::Table5 => table5()
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Attack, Axis::Variant),
            Self::Table6 => {
                let result = table6().run_with(&opts, exec).map_err(|e| e.to_string())?;
                let mut report = Report::new(result.name.clone(), result.title.clone());
                // The two panels read best under different pivots: ablation
                // variants are rows on the left, defense switches on the right.
                report.section(
                    result.sweeps[0].title.clone(),
                    result.sweeps[0].pivot(Axis::Attack, Axis::Variant),
                );
                report.section(
                    result.sweeps[1].title.clone(),
                    result.sweeps[1].pivot(Axis::Variant, Axis::Attack),
                );
                report
            }
            Self::Table7 => table7()
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Attack, Axis::Defense),
            Self::Table9 => table9()
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Variant, Axis::Attack),
            Self::Table10 => table10()
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Variant, Axis::Attack),
            Self::Table11 => table11()
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Attack, Axis::Variant),
            Self::Fig3 => fig3(args, operands, &opts)?,
            Self::Fig4 => fig4(&opts, exec),
            Self::Fig5 => fig5(operands)
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .pivot_report(Axis::Variant, Axis::Attack),
            Self::Fig6a => fig6a(args, operands, &opts, exec)?,
            Self::Fig6b => fig6b(args, &opts, exec).map_err(|e| e.to_string())?,
            Self::Fig7 => fig7()
                .run_with(&opts, exec)
                .map_err(|e| e.to_string())?
                .report(),
            Self::PopularityBias => popularity_bias(args, &opts, exec),
            Self::Scale => scale_smoke(args, operands, &opts)?,
        })
    }
}

fn models_from(operands: &[String]) -> Result<Vec<ModelKind>, String> {
    match operands.first().map(String::as_str) {
        Some("mf") => Ok(vec![ModelKind::Mf]),
        Some("ncf") => Ok(vec![ModelKind::Ncf]),
        None => Ok(vec![ModelKind::Mf, ModelKind::Ncf]),
        Some(other) => Err(format!("unknown model {other}; use mf|ncf")),
    }
}

fn datasets_from(
    operands: &[String],
    default: &[PaperDataset],
) -> Result<Vec<PaperDataset>, String> {
    if operands.is_empty() {
        return Ok(default.to_vec());
    }
    operands
        .iter()
        .map(|name| {
            PaperDataset::from_name(name)
                .ok_or_else(|| format!("unknown dataset {name}; use ml100k|ml1m|az"))
        })
        .collect()
}

// ------------------------------------------------------------ suite tables

/// Table III: every attack, both model families, selected datasets.
fn table3(operands: &[String]) -> Result<ExperimentSuite, String> {
    let datasets = datasets_from(operands, &[PaperDataset::Ml100k])?;
    let mut suite =
        ExperimentSuite::new("table3", "Table III — attack effectiveness (ER@10 / HR@10)");
    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        suite = suite.sweep(
            Sweep::new(
                format!("attacks-{}", kind.label()),
                format!("{} — attacks × datasets, no defense", kind.label()),
            )
            .over_datasets(datasets.clone())
            .over_models([kind])
            .over_attacks(AttackKind::all()),
        );
    }
    Ok(suite)
}

/// Table IV: every defense × the top-3 attacks.
fn table4(operands: &[String]) -> Result<ExperimentSuite, String> {
    let mut suite =
        ExperimentSuite::new("table4", "Table IV — defense effectiveness (ml100k-like)");
    for kind in models_from(operands)? {
        suite = suite.sweep(
            Sweep::new(
                format!("defenses-{}", kind.label()),
                format!("{} — defenses × attacks", kind.label()),
            )
            .over_models([kind])
            .over_attacks([AttackKind::AHum, AttackKind::PieckIpe, AttackKind::PieckUea])
            .over_defenses(DefenseKind::all()),
        );
    }
    Ok(suite)
}

fn k_variants() -> [ConfigPatch; 2] {
    [
        ConfigPatch {
            label: "K=5".into(),
            eval_k: Some(5),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "K=20".into(),
            eval_k: Some(20),
            ..ConfigPatch::default()
        },
    ]
}

/// Table V: recommendation-list length K ∈ {5, 20}.
fn table5() -> ExperimentSuite {
    ExperimentSuite::new("table5", "Table V — effect of K (MF-FRS, ml100k-like)")
        .sweep(
            Sweep::new("undefended", "No defense")
                .over_attacks([
                    AttackKind::NoAttack,
                    AttackKind::PieckIpe,
                    AttackKind::PieckUea,
                ])
                .over_variants(k_variants()),
        )
        .sweep(
            Sweep::new("defended", "Our defense")
                .over_attacks([AttackKind::PieckIpe, AttackKind::PieckUea])
                .over_defenses([DefenseKind::Ours])
                .over_variants(k_variants()),
        )
}

/// Table VI: L_IPE ablation (left) and L_def ablation (right).
fn table6() -> ExperimentSuite {
    // The ablation rows are builtin parameterized catalog entries
    // (`frs_attacks::variants::IpeAblation`), not runtime registrations.
    let ablation_attacks = [
        "ipe-ablation-pkl",
        "ipe-ablation-pcos",
        "ipe-ablation-pcos-k",
        "ipe-ablation-full",
    ]
    .map(AttackSel::named);
    let def_variants =
        [(false, false), (true, false), (false, true), (true, true)].map(|(re1, re2)| {
            ConfigPatch {
                label: format!(
                    "Re1{} Re2{}",
                    if re1 { "+" } else { "−" },
                    if re2 { "+" } else { "−" }
                ),
                use_re1: Some(re1),
                use_re2: Some(re2),
                ..ConfigPatch::default()
            }
        });
    ExperimentSuite::new("table6", "Table VI — ablations (MF-FRS, ml100k-like)")
        .sweep(
            Sweep::new("ipe-loss", "L_IPE ablation (registered attack variants)")
                .over_attacks(ablation_attacks),
        )
        .sweep(
            // Re1−Re2− under `ours` contributes zero regularization — it *is*
            // the undefended row, so one sweep covers the whole right table.
            Sweep::new("def-loss", "L_def ablation")
                .over_attacks([AttackKind::PieckIpe, AttackKind::PieckUea])
                .over_defenses([DefenseKind::Ours])
                .over_variants(def_variants),
        )
}

/// Table VII: large sampling ratio (q=10) and multiple targets (|T|=3).
fn table7() -> ExperimentSuite {
    ExperimentSuite::new(
        "table7",
        "Table VII — system settings (MF-FRS, ml100k-like)",
    )
    .sweep(
        Sweep::new("q10", "sampling ratio q = 10")
            .over_attacks([
                AttackKind::NoAttack,
                AttackKind::PieckIpe,
                AttackKind::PieckUea,
            ])
            .over_defenses([DefenseKind::NoDefense, DefenseKind::Ours])
            .over_variants([ConfigPatch {
                label: "q=10".into(),
                negative_ratio: Some(10),
                ..ConfigPatch::default()
            }])
            .mined_n(10, 15),
    )
    .sweep(
        Sweep::new("t3", "target count |T| = 3")
            .over_attacks([
                AttackKind::NoAttack,
                AttackKind::PieckIpe,
                AttackKind::PieckUea,
            ])
            .over_defenses([DefenseKind::NoDefense, DefenseKind::Ours])
            .over_variants([ConfigPatch {
                label: "|T|=3".into(),
                n_targets: Some(3),
                ..ConfigPatch::default()
            }]),
    )
}

/// The Table IX rows: builtin catalog entries pinning PIECK to a
/// multi-target strategy (`frs_attacks::variants::MultiTargetPieck`), with
/// the paper's per-solution mined-set sizes as their `top_n` defaults.
fn multi_target_attacks(strategy: MultiTargetStrategy) -> Vec<AttackSel> {
    let suffix = match strategy {
        MultiTargetStrategy::TrainTogether => "together",
        MultiTargetStrategy::TrainOneThenCopy => "copy",
    };
    ["pieck-ipe", "pieck-uea"]
        .into_iter()
        .map(|base| AttackSel::named(format!("{base}-{suffix}")))
        .collect()
}

/// Table IX: |T| ∈ {2..5} under both multi-target strategies.
fn table9() -> ExperimentSuite {
    let target_variants: Vec<ConfigPatch> = [2usize, 3, 4, 5]
        .into_iter()
        .map(|t| ConfigPatch {
            label: format!("|T|={t}"),
            n_targets: Some(t),
            ..ConfigPatch::default()
        })
        .collect();
    let mut suite = ExperimentSuite::new(
        "table9",
        "Table IX — multi-target strategies (MF-FRS, ml100k-like)",
    );
    for strategy in [
        MultiTargetStrategy::TrainTogether,
        MultiTargetStrategy::TrainOneThenCopy,
    ] {
        suite = suite.sweep(
            Sweep::new(format!("{strategy:?}"), format!("{strategy:?}"))
                .over_attacks(multi_target_attacks(strategy))
                .over_variants(target_variants.clone()),
        );
    }
    suite
}

/// Table X: inconsistent client/server learning rates.
fn table10() -> ExperimentSuite {
    ExperimentSuite::new(
        "table10",
        "Table X — client learning rates (MF-FRS, ml100k-like)",
    )
    .sweep(
        Sweep::new("rates", "client η schedules")
            .over_attacks([
                AttackKind::NoAttack,
                AttackKind::PieckIpe,
                AttackKind::PieckUea,
            ])
            .over_variants([
                ConfigPatch::labeled("1e-0 (consistent)"),
                ConfigPatch {
                    label: "1e-2 (static)".into(),
                    client_learning_rate: Some(0.01),
                    ..ConfigPatch::default()
                },
                ConfigPatch {
                    label: "1e-2..1e-0 (dynamic)".into(),
                    client_lr_cycle: Some((0.01, 1.0)),
                    ..ConfigPatch::default()
                },
            ]),
    )
}

fn loss_variants() -> [ConfigPatch; 2] {
    [
        ConfigPatch {
            label: "BCE".into(),
            loss: Some(LossKind::Bce),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "BPR".into(),
            loss: Some(LossKind::Bpr),
            ..ConfigPatch::default()
        },
    ]
}

/// Table XI: BCE vs BPR training loss.
fn table11() -> ExperimentSuite {
    ExperimentSuite::new(
        "table11",
        "Table XI — loss generalization (MF-FRS, ml100k-like)",
    )
    .sweep(
        Sweep::new("undefended", "No defense")
            .over_attacks([
                AttackKind::NoAttack,
                AttackKind::PieckIpe,
                AttackKind::PieckUea,
            ])
            .over_variants(loss_variants()),
    )
    .sweep(
        Sweep::new("defended", "Our defense")
            .over_attacks([AttackKind::PieckIpe, AttackKind::PieckUea])
            .over_defenses([DefenseKind::Ours])
            .over_variants(loss_variants()),
    )
}

/// Fig. 5: malicious-ratio and mined-N sweeps, each with and without the
/// defense.
fn fig5(operands: &[String]) -> ExperimentSuite {
    let which = operands.first().map(String::as_str).unwrap_or("both");
    let ratio_variants: Vec<ConfigPatch> = [0.01, 0.05, 0.10, 0.15]
        .into_iter()
        .map(|p| ConfigPatch {
            label: format!("p̃={:.0}%", p * 100.0),
            malicious_ratio: Some(p),
            mined_top_n: Some(10),
            ..ConfigPatch::default()
        })
        .collect();
    let n_variants: Vec<ConfigPatch> = [5usize, 10, 50, 250]
        .into_iter()
        .map(|n| ConfigPatch {
            label: format!("N={n}"),
            mined_top_n: Some(n),
            ..ConfigPatch::default()
        })
        .collect();

    let mut suite = ExperimentSuite::new("fig5", "Fig. 5 — parameter sweeps (MF-FRS, ml100k-like)");
    for (axis, variants, enabled) in [
        ("p", ratio_variants, which == "p" || which == "both"),
        ("n", n_variants, which == "n" || which == "both"),
    ] {
        if !enabled {
            continue;
        }
        let what = if axis == "p" {
            "malicious ratio p̃"
        } else {
            "mined popular item number N"
        };
        for defense in [DefenseKind::NoDefense, DefenseKind::Ours] {
            suite = suite.sweep(
                Sweep::new(
                    format!("{axis}-{}", defense.name()),
                    format!("{what} ({})", defense.label()),
                )
                .over_attacks([AttackKind::PieckIpe, AttackKind::PieckUea])
                .over_defenses([defense])
                .over_variants(variants.clone()),
            );
        }
    }
    suite
}

/// Fig. 7: HR@10 vs negative-sampling ratio q (no attack).
fn fig7() -> ExperimentSuite {
    ExperimentSuite::new(
        "fig7",
        "Fig. 7 — HR@10 vs sampling ratio q (MF-FRS, ml100k-like)",
    )
    .sweep(Sweep::new("q", "sampling ratio q").over_variants(
        [1usize, 2, 4, 6, 8, 10, 12, 16].map(|q| ConfigPatch {
            label: format!("q={q}"),
            negative_ratio: Some(q),
            ..ConfigPatch::default()
        }),
    ))
}

// --------------------------------------------------------- bespoke reports

/// The bespoke commands drive one simulation at a time, so an `Auto` policy
/// simply leases from the shared budget for the simulation's lifetime (the
/// sole holder gets the whole grant).
fn bespoke_lease(opts: &RunOptions, exec: &ExecOptions<'_>) -> Option<frs_federation::CoreLease> {
    exec.budget
        .filter(|_| opts.round_threads.is_auto())
        .map(|budget| budget.lease())
}

/// `paper scale [n_users]` — the sampled million-client smoke cell (the CI
/// scale gate). One paper-faithful MF round loop over a synthetic long-tail
/// population of `n_users` registered clients (default 1,000,000): benign
/// clients materialize lazily from the embedding arena, uploads stay
/// sparse, and the default defense aggregates item-sharded
/// (`median:shards=8`). Evaluation ranks a deterministic ~10k-user stride
/// subsample — full-population ranking is an experiment of its own — and
/// the report is byte-stable for a given seed: identical across
/// `--round-threads` policies, arena backings, and replays, so CI `cmp`s
/// two runs' reports verbatim. A SHA-256 digest over the final item table
/// and the evaluated users' embedding bits pins the entire training
/// trajectory, not just the headline metrics.
fn scale_smoke(
    args: &CommonArgs,
    operands: &[String],
    opts: &RunOptions,
) -> Result<Report, String> {
    let n_users: usize = match operands.first().map(String::as_str) {
        Some(s) => s
            .replace('_', "")
            .parse()
            .map_err(|_| format!("bad population `{s}`; use a client count"))?,
        None => 1_000_000,
    };
    if n_users < 100 {
        return Err("population must be ≥ 100 (this is the scale smoke)".into());
    }

    // Million-client regimes are sparse by nature: a modest catalogue and
    // tiny per-user histories, so the population — not the data volume —
    // is what the cell exercises.
    let spec = DatasetSpec {
        name: format!("scale-{n_users}"),
        n_users,
        n_items: 2000,
        n_interactions: n_users.saturating_mul(3),
        item_zipf_exponent: 0.9,
        user_zipf_exponent: 0.6,
        min_interactions_per_user: 2,
        source: DataSource::Synth,
    };
    let mut cfg = ScenarioConfig::baseline(spec, ModelKind::Mf, opts.seed);
    cfg.rounds = args.rounds_or(3);
    cfg.attack = args
        .attack
        .clone()
        .unwrap_or_else(|| AttackKind::PieckUea.into());
    cfg.defense = match &args.defense {
        Some(d) => d.clone(),
        None => DefenseSel::parse("median:shards=8").expect("builtin defense spec"),
    };
    // 0.1% malicious: ~1k boxed attacker clients at the million mark — the
    // lazy pool keeps the other 99.9% as arena rows only.
    cfg.malicious_ratio = 0.001;
    cfg.federation.clients_per_round = opts
        .clients_per_round
        .unwrap_or(ClientsPerRound::Count(1024));
    cfg.federation.round_threads = opts.round_threads;

    let (full, split, targets) = build_world(&cfg);
    // Every retained Dataset copy is ~100 MB at the million mark; the RSS
    // ceiling CI asserts depends on dropping the unsplit original here.
    drop(full);
    let train = Arc::new(split.train.clone());
    let mut sim = build_simulation(&cfg, Arc::clone(&train), &targets);
    for _ in 0..cfg.rounds {
        sim.run_round();
    }

    let stride = (n_users / 10_000).max(1);
    let eval_users: Vec<usize> = (0..train.n_users()).step_by(stride).collect();
    let embs = sim.user_embeddings();
    let er = frs_metrics::ExposureReport::compute(
        sim.model(),
        &embs,
        &eval_users,
        &train,
        &targets,
        cfg.eval_k,
    );
    let hr =
        frs_metrics::QualityReport::compute(sim.model(), &embs, &eval_users, &split, cfg.eval_k);

    // Exact final-state bits: item table first, then each evaluated user's
    // embedding row. Any nondeterminism anywhere in the run lands here.
    let mut state = Vec::with_capacity(
        (sim.model().items().as_slice().len() + eval_users.len() * sim.model().dim()) * 4,
    );
    for &x in sim.model().items().as_slice() {
        state.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    for &u in &eval_users {
        for &x in embs.row(u) {
            state.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    let digest = sha256_hex(&state);

    let stats = sim.stats();
    let mut report = Report::new(
        "scale",
        format!("Scale smoke — sampled federation at {n_users} clients"),
    );
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["registered clients".into(), n_users.to_string()]);
    table.row(&[
        "clients per round".into(),
        format!(
            "{} (effective {})",
            cfg.federation.clients_per_round,
            cfg.federation.clients_per_round.effective(sim.n_clients())
        ),
    ]);
    table.row(&["rounds".into(), cfg.rounds.to_string()]);
    table.row(&["attack".into(), cfg.attack.label()]);
    table.row(&["defense".into(), cfg.defense.label()]);
    table.row(&[
        "malicious sampled".into(),
        stats.total_malicious_selected.to_string(),
    ]);
    table.row(&["upload bytes".into(), stats.total_upload_bytes.to_string()]);
    table.row(&["eval users".into(), eval_users.len().to_string()]);
    table.row(&[format!("ER@{}", cfg.eval_k), pct(er.mean_percent())]);
    table.row(&[format!("HR@{}", cfg.eval_k), pct(hr.hr_percent())]);
    table.row(&["NDCG".into(), format!("{:.6}", hr.ndcg)]);
    table.row(&["state digest".into(), digest]);
    report.section("Sampled cell", table);
    Ok(report)
}

/// Table II: PKL and UCR of the Δ-Norm-mined popular set, per model family.
fn table2(args: &CommonArgs, opts: &RunOptions, exec: &ExecOptions<'_>) -> Report {
    let mut report = Report::new("table2", "Table II — PKL and UCR of mined popular sets");
    let sizes = [1usize, 10, 50, 150];
    let rounds = args.rounds_or(200);

    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, kind, opts.scale, opts.seed);
        cfg.federation.round_threads = opts.round_threads;
        let (_, split, _) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);
        sim.set_core_lease(bespoke_lease(opts, exec));

        // Track Δ-Norm across the whole run so the mined set is the stable one.
        let mut tracker = DeltaNormTracker::new(train.n_items());
        tracker.observe(sim.model().items());
        for _ in 0..rounds {
            sim.run_round();
            tracker.observe(sim.model().items());
        }

        let embs = sim.user_embeddings();
        let mut table = Table::new(&["N", "PKL", "UCR"]);
        for &n in &sizes {
            let popular = tracker.top_n(n);
            let item_embs: Vec<&[f32]> = popular
                .iter()
                .map(|&j| sim.model().item_embedding(j))
                .collect();
            let covered = covered_users(&train, &popular);
            let user_embs: Vec<&[f32]> = covered.iter().map(|&u| embs.row(u)).collect();
            table.row(&[
                n.to_string(),
                format!("{:.4}", pairwise_kl(&item_embs, &user_embs)),
                pct(user_coverage_ratio(&train, &popular) * 100.0),
            ]);
        }
        report.section(
            format!("{} — round {rounds} on {}", kind.label(), cfg.dataset.name),
            table,
        );
    }
    report
}

/// Fig. 3: item-popularity long-tail distribution.
fn fig3(args: &CommonArgs, operands: &[String], opts: &RunOptions) -> Result<Report, String> {
    let mut report = Report::new("fig3", "Fig. 3 — item-popularity distribution");
    for dataset in datasets_from(operands, &[PaperDataset::Ml100k, PaperDataset::Az])? {
        let spec = if opts.scale < 1.0 {
            dataset.spec().scaled(opts.scale)
        } else {
            dataset.spec()
        };
        let data = synth::generate(&spec, &mut StdRng::seed_from_u64(args.seed));
        let stats = DatasetStats::compute(&data);
        let mut table = Table::new(&["Top items (%)", "Share of interactions (%)"]);
        for top in [1.0, 5.0, 10.0, 15.0, 25.0, 50.0, 100.0] {
            let share = stats.head_share(top / 100.0) * 100.0;
            table.row(&[format!("{top:.0}"), format!("{share:.1}")]);
        }
        report
            .section(
                format!(
                    "{} ({} users, {} items, {} interactions)",
                    spec.name, stats.n_users, stats.n_items, stats.n_interactions
                ),
                table,
            )
            .note(format!(
                "items covering 50% of interactions: {:.1}% of the catalogue  |  \
                 top-15% share: {:.1}% (paper: >50%)",
                stats.items_covering(0.5) * 100.0,
                stats.head_share(0.15) * 100.0
            ));
    }
    Ok(report)
}

/// Fig. 4: popularity ranks of the top-50 items by Δ-Norm over rounds.
fn fig4(opts: &RunOptions, exec: &ExecOptions<'_>) -> Report {
    let mut report = Report::new("fig4", "Fig. 4 — Δ-Norm top-50 vs true popularity");
    // Snapshot rounds are pinned to the paper's panels; `--rounds` does not
    // apply here.
    let snapshots = [4usize, 8, 20, 80];
    let top_k = 50;

    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, kind, opts.scale, opts.seed);
        cfg.federation.round_threads = opts.round_threads;
        let (_, split, _) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let popularity_rank = train.popularity_rank_of();
        let n_popular = (train.n_items() as f64 * 0.15).ceil() as usize;
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &[]);
        sim.set_core_lease(bespoke_lease(opts, exec));

        let mut table = Table::new(&[
            "Round",
            "popular in top-50 (true top-15%)",
            "median popularity rank",
            "max popularity rank",
        ]);
        let mut tracker = DeltaNormTracker::new(train.n_items());
        tracker.observe(sim.model().items());
        let last = *snapshots.last().unwrap();
        for round in 1..=last {
            sim.run_round();
            tracker.observe(sim.model().items());
            if snapshots.contains(&round) {
                let top = tracker.top_n(top_k);
                let mut ranks: Vec<usize> =
                    top.iter().map(|&j| popularity_rank[j as usize]).collect();
                ranks.sort_unstable();
                let popular_hits = ranks.iter().filter(|&&r| r < n_popular).count();
                table.row(&[
                    round.to_string(),
                    format!("{popular_hits}/{top_k}"),
                    ranks[ranks.len() / 2].to_string(),
                    ranks.last().unwrap().to_string(),
                ]);
                tracker.reset_accumulation();
            }
        }
        report.section(
            format!(
                "top-{top_k} Δ-Norm items on {} ({})",
                cfg.dataset.name,
                kind.label()
            ),
            table,
        );
    }
    report
}

/// Fig. 6(a): ER/HR convergence trends of IPE vs UEA.
fn fig6a(
    args: &CommonArgs,
    operands: &[String],
    opts: &RunOptions,
    exec: &ExecOptions<'_>,
) -> Result<Report, String> {
    let dataset = datasets_from(operands, &[PaperDataset::Ml1m])?
        .into_iter()
        .next()
        .expect("datasets_from returns at least the default");
    let rounds = args.rounds_or(400);
    let every = (rounds / 20).max(1);

    let suite = ExperimentSuite::new("fig6a", "Fig. 6(a) — convergence trends (MF-FRS)").sweep(
        Sweep::new("trend", "trend")
            .over_datasets([dataset.clone()])
            .over_attacks([AttackKind::PieckIpe, AttackKind::PieckUea])
            .rounds(rounds)
            .trend_every(every),
    );
    let result = suite
        .run_with(
            &RunOptions {
                rounds: Some(rounds),
                ..opts.clone()
            },
            exec,
        )
        .map_err(|e| e.to_string())?;
    let cells = &result.sweeps[0].cells;
    let (ipe, uea) = (&cells[0], &cells[1]);

    let mut table = Table::new(&["Round", "IPE ER", "IPE HR", "UEA ER", "UEA HR"]);
    for (i, p) in ipe.outcome.trend.iter().enumerate() {
        let u = &uea.outcome.trend[i];
        table.row(&[
            p.round.to_string(),
            pct(p.er),
            pct(p.hr),
            pct(u.er),
            pct(u.hr),
        ]);
    }
    let mut report = Report::new("fig6a", "Fig. 6(a) — convergence trends (MF-FRS)");
    report.section(format!("ER@10 / HR@10 trend on {}", dataset.name()), table);
    Ok(report)
}

/// Fig. 6(b): mean wall-clock cost per round, per model family.
///
/// Timing-sensitive: a cache hit replays the *cold* run's measured wall
/// time (the cache persists it), so warm reports stay byte-identical.
fn fig6b(
    args: &CommonArgs,
    opts: &RunOptions,
    exec: &ExecOptions<'_>,
) -> Result<Report, crate::progress::SuiteAborted> {
    let rounds = args.rounds_or(50);
    let mut suite = ExperimentSuite::new("fig6b", "Fig. 6(b) — cost per round (ml1m-like)");
    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        suite = suite
            .sweep(
                Sweep::new(
                    format!("attacks-{}", kind.label()),
                    kind.label().to_string(),
                )
                .over_datasets([PaperDataset::Ml1m])
                .over_models([kind])
                .over_attacks([
                    AttackKind::NoAttack,
                    AttackKind::PieckIpe,
                    AttackKind::PieckUea,
                ])
                .mined_n(10, 10)
                .rounds(rounds),
            )
            .sweep(
                Sweep::new(
                    format!("defense-{}", kind.label()),
                    format!("{} (defense)", kind.label()),
                )
                .over_datasets([PaperDataset::Ml1m])
                .over_models([kind])
                .over_defenses([DefenseKind::Ours])
                .mined_n(10, 10)
                .rounds(rounds),
            );
    }
    let result = suite.run_with(
        &RunOptions {
            rounds: Some(rounds),
            ..opts.clone()
        },
        exec,
    )?;

    let mut table = Table::new(&["Model", "Scenario", "ms/round", "KiB uploaded/round"]);
    for r in result.all_cells() {
        let label = if r.cell.defense == DefenseKind::Ours {
            "DEFENSE(ours)".to_string()
        } else if r.cell.attack.is_no_attack() {
            "No(Att.&Def.)".to_string()
        } else {
            r.cell.attack.label()
        };
        table.row(&[
            r.cell.model.label().to_string(),
            label,
            format!("{:.2}", r.outcome.mean_round_time.as_secs_f64() * 1e3),
            format!(
                "{:.1}",
                r.outcome.total_upload_bytes as f64 / rounds as f64 / 1024.0
            ),
        ]);
    }
    let mut report = Report::new("fig6b", "Fig. 6(b) — cost per round (ml1m-like)");
    report.section("mean time and upload volume per communication round", table);
    Ok(report)
}

/// Extension experiment: popularity bias of the served top-10 lists.
fn popularity_bias(args: &CommonArgs, opts: &RunOptions, exec: &ExecOptions<'_>) -> Report {
    let mut table = Table::new(&["Scenario", "coverage@10", "Gini", "mean rec. popularity"]);
    for (label, attack, defense) in [
        ("clean", AttackKind::NoAttack, DefenseKind::NoDefense),
        ("PIECK-UEA", AttackKind::PieckUea, DefenseKind::NoDefense),
        ("UEA + ours", AttackKind::PieckUea, DefenseKind::Ours),
        ("defense only", AttackKind::NoAttack, DefenseKind::Ours),
    ] {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, opts.scale, opts.seed);
        cfg.attack = attack.into();
        cfg.defense = defense.into();
        cfg.mined_top_n = 30;
        cfg.federation.round_threads = opts.round_threads;
        let (_, split, targets) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &targets);
        sim.set_core_lease(bespoke_lease(opts, exec));
        sim.run(args.rounds_or(150));
        let benign = sim.benign_ids();
        let freq =
            recommendation_frequency(sim.model(), &sim.user_embeddings(), &benign, &train, 10);
        table.row(&[
            label.to_string(),
            format!("{:.3}", catalogue_coverage(&freq)),
            format!("{:.3}", gini_coefficient(&freq)),
            format!("{:.1}", average_recommended_popularity(&freq, &train)),
        ]);
    }
    let mut report = Report::new(
        "popularity-bias",
        "Extension — popularity bias of served top-10 lists (MF-FRS, ml100k-like)",
    );
    report
        .section(
            "catalogue coverage, Gini, mean recommended popularity",
            table,
        )
        .note(
            "Reading: PIECK-UEA drags a cold item into the lists (lower mean \
             recommended popularity, Gini slightly up); the defense restores the \
             clean profile without flattening the system's natural popularity skew.",
        );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_names_round_trip() {
        for cmd in PaperCommand::all() {
            assert_eq!(PaperCommand::from_name(cmd.name()), Some(cmd));
            assert!(!cmd.description().is_empty());
        }
        assert_eq!(PaperCommand::from_name("table1"), None);
    }

    #[test]
    fn suite_declarations_expand() {
        assert_eq!(table3(&[]).unwrap().cell_count(), 2 * 7);
        assert_eq!(table4(&[]).unwrap().cell_count(), 2 * 3 * 8);
        assert_eq!(table5().cell_count(), 3 * 2 + 2 * 2);
        assert_eq!(table6().cell_count(), 4 + 2 * 4);
        assert_eq!(table7().cell_count(), 2 * 3 * 2);
        assert_eq!(table9().cell_count(), 2 * 2 * 4);
        assert_eq!(table10().cell_count(), 3 * 3);
        assert_eq!(table11().cell_count(), 3 * 2 + 2 * 2);
        assert_eq!(fig5(&[]).cell_count(), 4 * 2 * 4);
        assert_eq!(fig5(&["p".to_string()]).cell_count(), 2 * 2 * 4);
        assert_eq!(fig7().cell_count(), 8);
    }

    #[test]
    fn ablation_attacks_are_builtin_catalog_entries() {
        // The names resolve from a cold registry, *before* any suite is
        // declared: table6/table9 perform zero runtime registrations.
        assert!(frs_attacks::attack_factory("ipe-ablation-pkl").is_some());
        assert!(frs_attacks::attack_factory("ipe-ablation-full").is_some());
        assert!(frs_attacks::attack_factory("pieck-uea-copy").is_some());
        assert!(frs_attacks::attack_factory("pieck-ipe-together").is_some());
        // And every cell the ablation suites materialize builds cleanly
        // from its serialized config alone.
        for suite in [table6(), table9()] {
            for cell in suite.cells(&RunOptions::default()) {
                let ctx = cell.config.attack_ctx(0, 0, &[]);
                cell.config
                    .attack
                    .try_build_clients(&ctx)
                    .unwrap_or_else(|e| panic!("{}: {e}", cell.config.attack));
            }
        }
    }

    #[test]
    fn table7_policy_sets_uea_mined_n() {
        let opts = RunOptions::default();
        let cells = table7().cells(&opts);
        let uea_q10 = cells
            .iter()
            .find(|c| c.sweep == "q10" && c.attack == AttackKind::PieckUea)
            .unwrap();
        assert_eq!(uea_q10.config.mined_top_n, 15);
        assert_eq!(uea_q10.config.federation.negative_ratio, 10);
        let uea_t3 = cells
            .iter()
            .find(|c| c.sweep == "t3" && c.attack == AttackKind::PieckUea)
            .unwrap();
        assert_eq!(uea_t3.config.mined_top_n, 30);
        assert_eq!(uea_t3.config.n_targets, 3);
    }
}
