//! Dataset specifications, including the three paper-scale presets.
//!
//! Table VIII of the paper:
//!
//! | Dataset  | Users  | Items  | Interactions | Rate | Sparsity |
//! |----------|--------|--------|--------------|------|----------|
//! | ML-100K  | 943    | 1,682  | 100,000      | 106  | 93.70%   |
//! | ML-1M    | 6,040  | 3,706  | 1,000,209    | 166  | 95.53%   |
//! | AZ       | 16,566 | 11,797 | 169,781      | 10   | 99.91%   |
//!
//! [`DatasetSpec::scaled`] shrinks a preset while preserving its shape
//! (density and Zipf exponent), which is what the CI-sized tests and benches
//! use. Zipf exponents are calibrated so the top-15% of items carry ≥50% of
//! interactions (Fig. 3).

use serde::{Deserialize, Serialize};

/// Where a [`DatasetSpec`]'s interactions come from: the synthetic Zipf
/// generator (`crate::synth`), or a real MovieLens-format dump on disk
/// loaded through `crate::movielens`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataSource {
    /// Generate synthetically from the spec's shape parameters.
    #[default]
    Synth,
    /// Load from a MovieLens-format file (`u.data` tab-separated or
    /// `ratings.dat` `::`-separated, chosen by extension). The shape
    /// parameters of the spec are placeholders; the file decides.
    File(String),
}

/// Parameters for the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name (used in experiment reports).
    pub name: String,
    pub n_users: usize,
    pub n_items: usize,
    /// Target total interaction count. The generator hits this within the
    /// per-user minimum constraints.
    pub n_interactions: usize,
    /// Zipf exponent for *item* popularity; larger = heavier head.
    pub item_zipf_exponent: f64,
    /// Zipf exponent for *user* activity.
    pub user_zipf_exponent: f64,
    /// Every user gets at least this many interactions (≥ 2 keeps
    /// leave-one-out feasible while leaving a non-empty train set).
    pub min_interactions_per_user: usize,
    /// Interaction source: synthetic (the default) or a real file.
    pub source: DataSource,
}

impl DatasetSpec {
    /// ML-100K-like: dense interactions, moderate catalogue.
    pub fn ml100k_like() -> Self {
        Self {
            name: "ml100k-like".into(),
            n_users: 943,
            n_items: 1682,
            n_interactions: 100_000,
            item_zipf_exponent: 0.9,
            user_zipf_exponent: 0.6,
            min_interactions_per_user: 20,
            source: DataSource::Synth,
        }
    }

    /// ML-1M-like: the largest MovieLens preset.
    pub fn ml1m_like() -> Self {
        Self {
            name: "ml1m-like".into(),
            n_users: 6040,
            n_items: 3706,
            n_interactions: 1_000_209,
            item_zipf_exponent: 0.95,
            user_zipf_exponent: 0.65,
            min_interactions_per_user: 20,
            source: DataSource::Synth,
        }
    }

    /// Amazon-Digital-Music-like: very sparse, large catalogue, low rate.
    pub fn az_like() -> Self {
        Self {
            name: "az-like".into(),
            n_users: 16_566,
            n_items: 11_797,
            n_interactions: 169_781,
            item_zipf_exponent: 1.0,
            user_zipf_exponent: 0.4,
            min_interactions_per_user: 5,
            source: DataSource::Synth,
        }
    }

    /// A tiny spec for unit tests (fast to generate and train on).
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            n_users: 60,
            n_items: 120,
            n_interactions: 1_500,
            item_zipf_exponent: 0.9,
            user_zipf_exponent: 0.5,
            min_interactions_per_user: 5,
            source: DataSource::Synth,
        }
    }

    /// A spec backed by a real MovieLens-format file. The shape fields are
    /// placeholders (the file decides users/items/interactions) and
    /// [`DatasetSpec::scaled`] does not apply — real dumps are used as-is.
    pub fn from_file(path: impl Into<String>) -> Self {
        let path = path.into();
        Self {
            name: format!("file:{path}"),
            n_users: 0,
            n_items: 0,
            n_interactions: 0,
            item_zipf_exponent: 0.0,
            user_zipf_exponent: 0.0,
            min_interactions_per_user: 2,
            source: DataSource::File(path),
        }
    }

    /// The backing file path, when this spec is file-sourced.
    pub fn file_path(&self) -> Option<&str> {
        match &self.source {
            DataSource::Synth => None,
            DataSource::File(path) => Some(path),
        }
    }

    /// Shrinks users/items/interactions by `factor` (0 < factor ≤ 1) while
    /// keeping the distributional shape. Floors keep the result usable.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let scale = |x: usize, floor: usize| ((x as f64 * factor).round() as usize).max(floor);
        Self {
            name: format!("{}@{factor:.2}", self.name),
            n_users: scale(self.n_users, 16),
            n_items: scale(self.n_items, 32),
            // Interactions shrink by factor² (both sides of the bipartite
            // graph shrink) to preserve per-user rate ≈ density balance.
            n_interactions: ((self.n_interactions as f64 * factor * factor).round() as usize)
                .max(16 * self.min_interactions_per_user),
            item_zipf_exponent: self.item_zipf_exponent,
            user_zipf_exponent: self.user_zipf_exponent,
            min_interactions_per_user: self.min_interactions_per_user.clamp(3, 8),
            source: self.source.clone(),
        }
    }

    /// Average interactions per user ("Rate" in Table VIII).
    pub fn rate(&self) -> f64 {
        self.n_interactions as f64 / self.n_users as f64
    }

    /// `1 − interactions/(users·items)` ("Sparsity" in Table VIII).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.n_interactions as f64 / (self.n_users as f64 * self.n_items as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml100k_matches_table_viii() {
        let s = DatasetSpec::ml100k_like();
        assert_eq!(s.n_users, 943);
        assert_eq!(s.n_items, 1682);
        assert_eq!(s.n_interactions, 100_000);
        assert!((s.rate() - 106.0).abs() < 1.0);
        assert!((s.sparsity() - 0.9370).abs() < 0.001);
    }

    #[test]
    fn ml1m_matches_table_viii() {
        let s = DatasetSpec::ml1m_like();
        assert!((s.rate() - 166.0).abs() < 1.0);
        assert!((s.sparsity() - 0.9553).abs() < 0.001);
    }

    #[test]
    fn az_matches_table_viii() {
        let s = DatasetSpec::az_like();
        assert!((s.rate() - 10.0).abs() < 0.5);
        assert!((s.sparsity() - 0.9991).abs() < 0.0005);
    }

    #[test]
    fn scaled_preserves_shape() {
        let full = DatasetSpec::ml100k_like();
        let half = full.scaled(0.5);
        assert!(half.n_users < full.n_users);
        assert!(half.n_items < full.n_items);
        // Rate should be roughly preserved (interactions shrink as factor²).
        assert!((half.rate() / full.rate() - 0.5).abs() < 0.2);
        assert_eq!(half.item_zipf_exponent, full.item_zipf_exponent);
    }

    #[test]
    fn scaled_has_floors() {
        let s = DatasetSpec::tiny().scaled(0.01);
        assert!(s.n_users >= 16);
        assert!(s.n_items >= 32);
        assert!(s.min_interactions_per_user >= 3);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_zero() {
        DatasetSpec::tiny().scaled(0.0);
    }

    #[test]
    fn file_specs_carry_their_source() {
        let s = DatasetSpec::from_file("x/u.data");
        assert_eq!(s.file_path(), Some("x/u.data"));
        assert_eq!(s.name, "file:x/u.data");
        assert!(DatasetSpec::tiny().file_path().is_none());
        // serde round-trips keep the source (the cache identity depends
        // on it).
        let v = serde::Serialize::to_value(&s);
        let back: DatasetSpec = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, s);
    }
}
