//! Epoch-swapped model snapshots: the reader/trainer decoupling.
//!
//! The trainer publishes an immutable [`Snapshot`] (model, user embeddings,
//! and the training interactions to exclude) into a [`SnapshotCell`] at
//! every round boundary; query handlers grab the latest `Arc` and rank
//! against it lock-free. The only shared critical section is an `Arc`
//! pointer swap, so readers never block the trainer and the trainer never
//! blocks readers — a query observes one consistent round, never a
//! half-applied update.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use frs_data::Dataset;
use frs_model::{EmbeddingStore, GlobalModel};

use crate::wire::ScoredItem;

/// One immutable, consistent view of the recommender at a round boundary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    round: usize,
    training_done: bool,
    model: GlobalModel,
    /// Per-user embeddings, indexed by dense user id (benign users only —
    /// the serving surface has no reason to recommend to attack clients).
    /// One flat slab — the same [`EmbeddingStore`] the simulation trains in.
    users: EmbeddingStore,
    /// Training interactions: already-seen items are excluded from top-K.
    train: Arc<Dataset>,
}

impl Snapshot {
    /// Assembles a snapshot. `users` must be indexed by dense user id and
    /// at least cover `train.n_users()` rows; extra rows (attack clients
    /// appended after the benign population) are ignored.
    pub fn new(
        round: usize,
        training_done: bool,
        model: GlobalModel,
        mut users: EmbeddingStore,
        train: Arc<Dataset>,
    ) -> Self {
        users.truncate_rows(train.n_users());
        Self {
            round,
            training_done,
            model,
            users,
            train,
        }
    }

    /// Training rounds completed when this snapshot was taken.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether training had finished by this snapshot.
    pub fn training_done(&self) -> bool {
        self.training_done
    }

    /// Users this snapshot can answer for.
    pub fn n_users(&self) -> usize {
        self.users.rows()
    }

    /// Items in the catalog.
    pub fn n_items(&self) -> usize {
        self.model.n_items()
    }

    /// The best `k` items for `user` that the user has not interacted with,
    /// best first. Deterministic: ties break toward the lower item id.
    pub fn top_k(&self, user: usize, k: usize) -> Result<Vec<ScoredItem>, String> {
        if user >= self.users.rows() {
            return Err(format!(
                "user {user} out of range (snapshot serves {} users)",
                self.users.rows()
            ));
        }
        let scores = self.model.scores_for_user(self.users.row(user));
        let picked = frs_linalg::top_k_desc_filtered(&scores, k, |i| {
            !self.train.interacted(user, i as u32) // lint:allow(lossy-index-cast): the catalog is keyed by u32 item ids, so every score index fits
        });
        Ok(picked
            .into_iter()
            .map(|i| ScoredItem {
                item: i as u32, // lint:allow(lossy-index-cast): index into `scores`, whose length is the u32-keyed catalog size
                score: scores[i], // lint:allow(panic-in-daemon): top_k_desc_filtered returns in-bounds indices into the slice it ranked
            })
            .collect())
    }
}

/// The swap point between one trainer and any number of query handlers.
#[derive(Debug)]
pub struct SnapshotCell {
    slot: Mutex<Arc<Snapshot>>,
    /// Publishes since construction — the status endpoint's epoch counter.
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// A cell primed with the initial (typically round-zero) snapshot, so
    /// queries can be answered from the moment the socket opens.
    pub fn new(initial: Snapshot) -> Self {
        Self {
            slot: Mutex::new(Arc::new(initial)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Publishes a new snapshot. Readers holding the previous `Arc` finish
    /// their query against the old round; new queries see this one.
    /// The slot only ever holds a fully-built `Arc`, so a poisoned lock
    /// (a panic elsewhere while holding it) cannot expose a torn value —
    /// recover the guard instead of cascading the panic into the daemon.
    pub fn publish(&self, snapshot: Snapshot) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// How many snapshots have been published since the cell was primed
    /// (the initial snapshot is epoch 0).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The latest published snapshot (an `Arc` clone; never blocks on the
    /// trainer beyond the pointer swap).
    pub fn latest(&self) -> Arc<Snapshot> {
        Arc::clone(&self.slot.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_model::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_snapshot(round: usize) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(7 + round as u64);
        let model = GlobalModel::new(&ModelConfig::mf(4), 6, &mut rng);
        // User 0 interacted with items 0 and 1; user 1 with item 5.
        let train = Arc::new(Dataset::from_user_items(6, vec![vec![0, 1], vec![5]]));
        let users =
            EmbeddingStore::from_rows(vec![vec![0.3, -0.1, 0.2, 0.4], vec![-0.2, 0.1, 0.5, 0.0]]);
        Snapshot::new(round, false, model, users, train)
    }

    #[test]
    fn top_k_excludes_interacted_and_sorts_descending() {
        let snap = tiny_snapshot(0);
        let items = snap.top_k(0, 10).unwrap();
        assert_eq!(items.len(), 4, "6 items minus 2 interacted");
        assert!(items.iter().all(|s| s.item > 1), "seen items excluded");
        for pair in items.windows(2) {
            assert!(pair[0].score >= pair[1].score, "descending scores");
        }

        let k2 = snap.top_k(0, 2).unwrap();
        assert_eq!(k2.len(), 2);
        assert_eq!(
            (k2[0].item, k2[1].item),
            (items[0].item, items[1].item),
            "a smaller k is a prefix of the full ranking"
        );
    }

    #[test]
    fn out_of_range_user_is_an_error() {
        let snap = tiny_snapshot(0);
        assert!(snap.top_k(2, 5).is_err());
    }

    #[test]
    fn extra_attack_rows_are_truncated() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = GlobalModel::new(&ModelConfig::mf(4), 6, &mut rng);
        let train = Arc::new(Dataset::from_user_items(6, vec![vec![0]]));
        // Two rows but only one benign user: the attack client is not
        // servable.
        let users = EmbeddingStore::from_rows(vec![vec![0.1; 4], vec![0.9; 4]]);
        let snap = Snapshot::new(3, true, model, users, train);
        assert_eq!(snap.n_users(), 1);
        assert!(snap.top_k(1, 5).is_err());
    }

    #[test]
    fn cell_swaps_epochs_without_disturbing_held_readers() {
        let cell = SnapshotCell::new(tiny_snapshot(0));
        assert_eq!(cell.epoch(), 0);
        let held = cell.latest();
        cell.publish(tiny_snapshot(1));
        assert_eq!(held.round(), 0, "held reader keeps its epoch");
        assert_eq!(cell.latest().round(), 1);
        assert_eq!(cell.epoch(), 1, "publish bumps the epoch counter");
    }
}
