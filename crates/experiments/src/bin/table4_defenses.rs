//! Table IV: every defense × the top-3 attacks (A-HUM, PIECK-IPE, PIECK-UEA)
//! on ML-100K, both model families, p̃ = 5%.
//!
//! Usage: `table4_defenses [--scale f] [--rounds n] [--seed s] [mf|ncf]`

use frs_attacks::AttackKind;
use frs_defense::DefenseKind;
use frs_experiments::report::pct;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_model::ModelKind;

fn main() {
    let args = CommonArgs::parse();
    let kinds: Vec<ModelKind> = match args.positional.first().map(String::as_str) {
        Some("mf") => vec![ModelKind::Mf],
        Some("ncf") => vec![ModelKind::Ncf],
        None => vec![ModelKind::Mf, ModelKind::Ncf],
        Some(other) => {
            eprintln!("unknown model {other}; use mf|ncf");
            std::process::exit(2);
        }
    };
    let attacks = [AttackKind::AHum, AttackKind::PieckIpe, AttackKind::PieckUea];

    for kind in kinds {
        println!("\n### Table IV — defenses on ml100k-like ({})", kind.label());
        let mut table = Table::new(&[
            "Defense", "A-hum ER", "A-hum HR", "IPE ER", "IPE HR", "UEA ER", "UEA HR",
        ]);
        for defense in DefenseKind::all() {
            let mut cells = vec![defense.label().to_string()];
            for attack in attacks {
                let mut cfg = paper_scenario(PaperDataset::Ml100k, kind, args.scale, args.seed);
                cfg.attack = attack;
                cfg.defense = defense;
                cfg.rounds = args.rounds_or(150);
                cfg.mined_top_n = if attack == AttackKind::PieckUea { 30 } else { 10 };
                let out = run(&cfg);
                cells.push(pct(out.er_percent));
                cells.push(pct(out.hr_percent));
            }
            table.row(&cells);
        }
        print!("{}", table.to_markdown());
    }
}
