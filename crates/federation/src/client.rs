//! Clients: the benign training logic and the trait malicious actors implement.

use std::sync::Arc;

use frs_data::{Dataset, NegativeSampler};
use frs_linalg::vector;
use frs_model::{bce_logit_delta, bpr_logit_deltas, GlobalGradients, GlobalModel, LossKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::RoundContext;

/// A participant in the federation. Implemented by [`BenignClient`] and by
/// every attack in `pieck-core` / `frs-attacks`.
pub trait Client: Send {
    /// Stable client id (== user id for benign clients).
    fn id(&self) -> usize;

    /// Whether this client is controlled by the attacker (used only by
    /// bookkeeping/metrics — the *server cannot see this*).
    fn is_malicious(&self) -> bool {
        false
    }

    /// One local round: receive the global model, train (or craft poison),
    /// return the gradient upload.
    fn local_round(&mut self, ctx: &RoundContext, model: &GlobalModel) -> GlobalGradients;

    /// The private user embedding, when one exists (benign clients). Metrics
    /// use this for evaluation; the server never does.
    fn user_embedding(&self) -> Option<&[f32]> {
        None
    }

    /// Serializable snapshot of this client's *mutable* state, for
    /// mid-scenario checkpointing. The immutable parts (dataset, ids, seeds,
    /// hyper-parameters) are rebuilt deterministically from the scenario
    /// config, so stateless clients keep the `Value::Null` default.
    fn checkpoint_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Overlays a state snapshot captured by [`Client::checkpoint_state`]
    /// onto a freshly built client. The default accepts only `Null` — a
    /// stateful snapshot reaching a stateless client is a config mismatch,
    /// not something to ignore silently.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        if state.is_null() {
            Ok(())
        } else {
            Err(format!(
                "client {} holds no restorable state but checkpoint carries {}",
                self.id(),
                state.kind()
            ))
        }
    }
}

/// Client-side defense hook (the paper's Section V-B regularizers plug in
/// here). Implementations keep their own state (e.g. Δ-Norm mining history).
pub trait LocalRegularizer: Send {
    /// Called every time the owning client is sampled, before training, with
    /// the freshly received global model.
    fn observe(&mut self, ctx: &RoundContext, model: &GlobalModel);

    /// Contributes additional gradients from the regularization terms.
    /// Implementations *add* their terms to `grads` (item side) and `d_user`
    /// (user side); the benign client then applies/uploads them alongside the
    /// base-loss gradients.
    fn apply(
        &mut self,
        ctx: &RoundContext,
        model: &GlobalModel,
        user_embedding: &[f32],
        local_items: &[u32],
        grads: &mut GlobalGradients,
        d_user: &mut [f32],
    );

    /// Display name for experiment tables.
    fn name(&self) -> &'static str;

    /// Serializable snapshot of the regularizer's mutable state (mining
    /// history, accumulated Δ-Norms, …). Stateless regularizers keep the
    /// `Value::Null` default. The owning [`BenignClient`] embeds this in its
    /// own checkpoint state.
    fn checkpoint_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Overlays a snapshot captured by [`LocalRegularizer::checkpoint_state`].
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        if state.is_null() {
            Ok(())
        } else {
            Err(format!(
                "regularizer {} holds no restorable state but checkpoint carries {}",
                self.name(),
                state.kind()
            ))
        }
    }
}

/// An honest user: trains on its private interactions and uploads true
/// gradients (Section III-A steps 2–3).
pub struct BenignClient {
    user_id: usize,
    train: Arc<Dataset>,
    user_embedding: Vec<f32>,
    regularizer: Option<Box<dyn LocalRegularizer>>,
}

impl BenignClient {
    /// Creates the client with a small random personal embedding.
    pub fn new(
        user_id: usize,
        train: Arc<Dataset>,
        dim: usize,
        init_scale: f32,
        seed: u64,
    ) -> Self {
        Self::from_parts(
            user_id,
            train,
            Self::init_embedding(dim, init_scale, seed),
            None,
        )
    }

    /// The seeded initial embedding draw, factored out so arena-backed
    /// populations (see [`ClientPool`](crate::ClientPool)) initialize rows
    /// bit-identically to eagerly constructed clients.
    pub fn init_embedding(dim: usize, init_scale: f32, seed: u64) -> Vec<f32> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..dim)
            .map(|_| rng.gen_range(-init_scale..=init_scale))
            .collect()
    }

    /// Assembles a client around an already-materialized embedding (the
    /// lazy-pool path, which owns embeddings in a flat arena between rounds).
    pub fn from_parts(
        user_id: usize,
        train: Arc<Dataset>,
        user_embedding: Vec<f32>,
        regularizer: Option<Box<dyn LocalRegularizer>>,
    ) -> Self {
        Self {
            user_id,
            train,
            user_embedding,
            regularizer,
        }
    }

    /// Tears the client back down into the state the lazy pool persists
    /// between rounds: the trained embedding and the (stateful) regularizer.
    pub fn into_parts(self) -> (Vec<f32>, Option<Box<dyn LocalRegularizer>>) {
        (self.user_embedding, self.regularizer)
    }

    /// Installs the client-side defense (our Section V-B method).
    pub fn with_regularizer(mut self, reg: Box<dyn LocalRegularizer>) -> Self {
        self.regularizer = Some(reg);
        self
    }

    /// Mean BCE training loss over a local round dataset (diagnostics only).
    pub fn local_loss(&self, model: &GlobalModel, positives: &[u32], negatives: &[u32]) -> f32 {
        let total = positives.len() + negatives.len();
        if total == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for &j in positives {
            sum += frs_model::bce_loss(model.logit(&self.user_embedding, j), 1.0);
        }
        for &j in negatives {
            sum += frs_model::bce_loss(model.logit(&self.user_embedding, j), 0.0);
        }
        sum / total as f32
    }

    fn train_bce(
        &self,
        model: &GlobalModel,
        positives: &[u32],
        negatives: &[u32],
        grads: &mut GlobalGradients,
        d_user: &mut [f32],
    ) {
        let n = (positives.len() + negatives.len()).max(1) as f32;
        let scale = 1.0 / n;
        for (&item, label) in positives
            .iter()
            .zip(std::iter::repeat(1.0f32))
            .chain(negatives.iter().zip(std::iter::repeat(0.0f32)))
        {
            let (logit, cache) = model.forward(&self.user_embedding, item);
            let delta = bce_logit_delta(logit, label) * scale;
            model.backward(&self.user_embedding, item, &cache, delta, d_user, grads);
        }
    }

    fn train_bpr(
        &self,
        model: &GlobalModel,
        positives: &[u32],
        negatives: &[u32],
        grads: &mut GlobalGradients,
        d_user: &mut [f32],
    ) {
        if positives.is_empty() || negatives.is_empty() {
            return;
        }
        // Pair positive i with negatives i, i+|P|, … (the sampler produced
        // q·|P| negatives, so every negative is consumed exactly once).
        let n_pairs = negatives.len();
        let scale = 1.0 / n_pairs as f32;
        for (pair_idx, &neg) in negatives.iter().enumerate() {
            let pos = positives[pair_idx % positives.len()];
            let (pos_logit, pos_cache) = model.forward(&self.user_embedding, pos);
            let (neg_logit, neg_cache) = model.forward(&self.user_embedding, neg);
            let (d_pos, d_neg) = bpr_logit_deltas(pos_logit, neg_logit);
            model.backward(
                &self.user_embedding,
                pos,
                &pos_cache,
                d_pos * scale,
                d_user,
                grads,
            );
            model.backward(
                &self.user_embedding,
                neg,
                &neg_cache,
                d_neg * scale,
                d_user,
                grads,
            );
        }
    }
}

impl Client for BenignClient {
    fn id(&self) -> usize {
        self.user_id
    }

    fn local_round(&mut self, ctx: &RoundContext, model: &GlobalModel) -> GlobalGradients {
        if let Some(reg) = &mut self.regularizer {
            reg.observe(ctx, model);
        }

        let mut rng = ctx.client_rng(self.user_id);
        let sampler = NegativeSampler::new(ctx.negative_ratio);
        let positives = self.train.items_of(self.user_id).to_vec();
        let negatives = sampler.sample(&self.train, self.user_id, &mut rng);

        let mut grads = GlobalGradients::new();
        let mut d_user = vec![0.0f32; self.user_embedding.len()];
        match ctx.loss {
            LossKind::Bce => self.train_bce(model, &positives, &negatives, &mut grads, &mut d_user),
            LossKind::Bpr => self.train_bpr(model, &positives, &negatives, &mut grads, &mut d_user),
        }

        // Defense regularizers contribute extra gradients on top of the
        // original loss (Eq. 16: L_def = L − β·Re1 − γ·Re2 — the sign is the
        // regularizer's responsibility).
        if let Some(reg) = &mut self.regularizer {
            let mut local_items = positives.clone();
            local_items.extend_from_slice(&negatives);
            reg.apply(
                ctx,
                model,
                &self.user_embedding,
                &local_items,
                &mut grads,
                &mut d_user,
            );
        }

        // Local step on the private embedding (Section III-A step 3).
        vector::axpy(-ctx.client_lr, &d_user, &mut self.user_embedding);
        grads
    }

    fn user_embedding(&self) -> Option<&[f32]> {
        Some(&self.user_embedding)
    }

    fn checkpoint_state(&self) -> serde::Value {
        let state = BenignClientState {
            user_embedding: self.user_embedding.clone(),
            regularizer: match &self.regularizer {
                Some(reg) => reg.checkpoint_state(),
                None => serde::Value::Null,
            },
        };
        serde::Serialize::to_value(&state)
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let state: BenignClientState =
            serde::Deserialize::from_value(state).map_err(|e| e.to_string())?;
        if state.user_embedding.len() != self.user_embedding.len() {
            return Err(format!(
                "user {} embedding dim mismatch: checkpoint {}, simulation {}",
                self.user_id,
                state.user_embedding.len(),
                self.user_embedding.len()
            ));
        }
        self.user_embedding = state.user_embedding;
        match (&mut self.regularizer, &state.regularizer) {
            (Some(reg), v) => reg.restore_state(v),
            (None, v) if v.is_null() => Ok(()),
            (None, v) => Err(format!(
                "user {} has no regularizer but checkpoint carries {}",
                self.user_id,
                v.kind()
            )),
        }
    }
}

/// Serialized mutable state of a [`BenignClient`]. Shared with the lazy
/// client pool, which emits the identical shape for arena-resident users so
/// checkpoints are interchangeable between eager and lazy populations.
#[derive(serde::Serialize, serde::Deserialize)]
pub(crate) struct BenignClientState {
    pub(crate) user_embedding: Vec<f32>,
    /// The installed [`LocalRegularizer`]'s own state tree (`Null` when no
    /// defense is installed or the defense is stateless).
    #[serde(default)]
    pub(crate) regularizer: serde::Value,
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_data::{synth, DatasetSpec};
    use frs_linalg::SeedStream;
    use frs_model::ModelConfig;

    fn setup(loss: LossKind) -> (GlobalModel, BenignClient, RoundContext) {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Arc::new(synth::generate(&DatasetSpec::tiny(), &mut rng));
        let model = GlobalModel::new(&ModelConfig::mf(8), data.n_items(), &mut rng);
        let client = BenignClient::new(0, data, 8, 0.1, 99);
        let ctx = RoundContext::new(0, 0.5, 0.5, 1, loss, SeedStream::new(5));
        (model, client, ctx)
    }

    #[test]
    fn upload_covers_local_items_only() {
        let (model, mut client, ctx) = setup(LossKind::Bce);
        let positives: Vec<u32> = client.train.items_of(0).to_vec();
        let grads = client.local_round(&ctx, &model);
        // Every positive must carry a gradient; total items = positives +
        // sampled negatives ≤ 2·|positives|.
        for &j in &positives {
            assert!(grads.items.contains_key(&j), "positive {j} missing");
        }
        assert!(grads.n_items() <= 2 * positives.len());
        assert!(grads.mlp.is_none(), "MF uploads no MLP gradients");
    }

    #[test]
    fn user_embedding_moves_during_training() {
        let (model, mut client, ctx) = setup(LossKind::Bce);
        let before = client.user_embedding().unwrap().to_vec();
        client.local_round(&ctx, &model);
        let after = client.user_embedding().unwrap();
        assert!(vector::l2_distance(&before, after) > 0.0);
    }

    #[test]
    fn repeated_rounds_reduce_local_loss() {
        let (mut model, mut client, _) = setup(LossKind::Bce);
        let positives: Vec<u32> = client.train.items_of(0).to_vec();
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = NegativeSampler::new(1);
        let negatives = sampler.sample(&client.train, 0, &mut rng);
        let before = client.local_loss(&model, &positives, &negatives);
        for r in 0..30 {
            let ctx = RoundContext::new(r, 0.5, 0.5, 1, LossKind::Bce, SeedStream::new(5));
            let grads = client.local_round(&ctx, &model);
            model.apply_gradients(&grads, 0.5);
        }
        let after = client.local_loss(&model, &positives, &negatives);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn bpr_training_also_learns() {
        let (mut model, mut client, _) = setup(LossKind::Bpr);
        let positives: Vec<u32> = client.train.items_of(0).to_vec();
        for r in 0..30 {
            let ctx = RoundContext::new(r, 0.5, 0.5, 1, LossKind::Bpr, SeedStream::new(5));
            let grads = client.local_round(&ctx, &model);
            model.apply_gradients(&grads, 0.5);
        }
        // After training, the mean positive logit should exceed the mean
        // logit of uninteracted probe items.
        let u = client.user_embedding().unwrap();
        let pos_mean: f32 =
            positives.iter().map(|&j| model.logit(u, j)).sum::<f32>() / positives.len() as f32;
        let probe: Vec<u32> = (0..client.train.n_items() as u32)
            .filter(|&j| !client.train.interacted(0, j))
            .take(20)
            .collect();
        let neg_mean: f32 =
            probe.iter().map(|&j| model.logit(u, j)).sum::<f32>() / probe.len() as f32;
        assert!(pos_mean > neg_mean, "pos {pos_mean} vs neg {neg_mean}");
    }

    #[test]
    fn rounds_are_deterministic() {
        let (model, mut c1, ctx) = setup(LossKind::Bce);
        let (_, mut c2, _) = setup(LossKind::Bce);
        let g1 = c1.local_round(&ctx, &model);
        let g2 = c2.local_round(&ctx, &model);
        assert_eq!(g1, g2);
    }

    #[test]
    fn benign_client_is_not_malicious() {
        let (_, client, _) = setup(LossKind::Bce);
        assert!(!client.is_malicious());
        assert_eq!(client.id(), 0);
    }
}
