//! A log-bucketed latency histogram in the HDR style: fixed memory, no
//! allocation per sample, ~1.6 % relative error at the quantiles.
//!
//! Values below 64 are exact; above that, each power-of-two range is
//! split into 64 linear sub-buckets, so the bucket
//! width is always ≤ value/64. That is all a loadtest quantile needs, and
//! it costs one `u64` array — no external histogram crate.

/// Linear sub-buckets per power-of-two major bucket (and the exact range).
const SUB_BUCKETS: u64 = 64;
/// log2 of [`SUB_BUCKETS`].
const SUB_SHIFT: u32 = 6;
/// Majors 6..=63 each contribute 64 buckets, after the exact 0..64 range.
const BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_SHIFT as usize) + SUB_BUCKETS as usize;

/// Log-bucketed histogram over `u64` samples (nanoseconds, here).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    fn bucket(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let major = 63 - value.leading_zeros() as u64; // ≥ SUB_SHIFT
        let shift = major - SUB_SHIFT as u64;
        let sub = (value >> shift) - SUB_BUCKETS; // 0..SUB_BUCKETS
        (SUB_BUCKETS * (major - SUB_SHIFT as u64) + SUB_BUCKETS + sub) as usize
    }

    /// The midpoint of a bucket's value range (its error bound).
    fn bucket_mid(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_BUCKETS {
            return index;
        }
        let major = SUB_SHIFT as u64 + (index - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
        let shift = major - SUB_SHIFT as u64;
        let low = (SUB_BUCKETS + sub) << shift;
        low + (1u64 << shift) / 2
    }

    pub fn record(&mut self, value: u64) {
        // lint:allow(panic-in-daemon): bucket() maps every u64 below BUCKETS (64 - SUB_SHIFT majors, SUB_BUCKETS subs each), matching counts' length
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        for (into, from) in self.counts.iter_mut().zip(&other.counts) {
            *into += from;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded, exact.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (midpoint of its bucket, so
    /// within ~1.6 % of the true sample). Zero for an empty histogram; the
    /// exact max for `q = 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_mid(index).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn large_values_stay_within_the_error_bound() {
        let mut h = LogHistogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 50_000_000] {
            h.record(v);
            let got = {
                let mut one = LogHistogram::new();
                one.record(v);
                one.quantile(0.5)
            };
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0, "value {v} → {got}, relative error {err}");
        }
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = LogHistogram::new();
        // 90 fast samples at ~1 µs, 10 slow at ~1 ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!((900..1_100).contains(&p50), "p50 near 1µs: {p50}");
        assert!(p95 > 900_000, "p95 lands in the slow mode: {p95}");
        assert!(p99 > 900_000 && p99 <= h.max(), "p99: {p99}");
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(5_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 5_000_000);
        assert_eq!(a.quantile(0.25), 10);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn bucket_midpoints_invert_bucketing() {
        // Every bucket's midpoint must map back into that bucket.
        for index in (0..BUCKETS).step_by(7) {
            let mid = LogHistogram::bucket_mid(index);
            if mid == 0 {
                continue;
            }
            assert_eq!(
                LogHistogram::bucket(mid),
                index,
                "midpoint {mid} escapes bucket {index}"
            );
        }
    }
}
