//! Fixture: a waiver naming a rule that does not exist.

// lint:allow(no-such-rule): deliberately names a non-builtin rule id
pub fn noop() {}
