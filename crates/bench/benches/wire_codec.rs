//! Upload wire-codec throughput: what a real deployment would pay to
//! serialize/deserialize each round's gradient traffic.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use frs_bench::bench_uploads;
use frs_federation::wire;

fn wire_codec(c: &mut Criterion) {
    let uploads = bench_uploads(64, 3, 400, 16);
    let total_bytes: usize = uploads.iter().map(wire::encoded_size).sum();
    let encoded: Vec<bytes::Bytes> = uploads.iter().map(wire::encode).collect();

    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("encode_round", |b| {
        b.iter(|| {
            let n: usize = uploads.iter().map(|u| wire::encode(u).len()).sum();
            criterion::black_box(n)
        });
    });
    group.bench_function("decode_round", |b| {
        b.iter(|| {
            let n: usize = encoded
                .iter()
                .map(|e| wire::decode(e.clone()).unwrap().n_items())
                .sum();
            criterion::black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, wire_codec);
criterion_main!(benches);
