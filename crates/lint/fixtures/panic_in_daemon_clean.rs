//! Clean fixture: the same handler answering errors instead of panicking.

pub fn answer(payload: Option<String>, buf: &[u8]) -> Result<String, String> {
    let body = payload.ok_or_else(|| "missing payload".to_string())?;
    let first = buf.first().copied().unwrap_or(0);
    if first == 0 {
        return Err("empty frame".to_string());
    }
    Ok(body)
}
