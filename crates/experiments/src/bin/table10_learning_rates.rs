//! Supplementary Table X: inconsistent client/server learning rates — a
//! static mismatch (client 1e-2 vs server 1e-0) and a dynamic cycling rate
//! (1e-2…1e-0) — and their effect on the PIECK attacks (MF-FRS, ML-100K).
//!
//! Usage: `table10_learning_rates [--scale f] [--rounds n] [--seed s]`

use frs_attacks::AttackKind;
use frs_experiments::report::pct;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_model::ModelKind;

fn main() {
    let args = CommonArgs::parse();
    let scenarios: [(&str, Option<f32>, Option<(f32, f32)>); 3] = [
        ("1e-0 (consistent)", None, None),
        ("1e-2 (static)", Some(0.01), None),
        ("1e-2..1e-0 (dynamic)", None, Some((0.01, 1.0))),
    ];

    println!("\n### Table X — inconsistent client learning rates (MF-FRS, ml100k-like)");
    let mut table = Table::new(&[
        "Client η", "NoAtk ER", "NoAtk HR", "IPE ER", "IPE HR", "UEA ER", "UEA HR",
    ]);
    for (label, static_lr, cycle) in scenarios {
        let mut cells = vec![label.to_string()];
        for attack in [AttackKind::NoAttack, AttackKind::PieckIpe, AttackKind::PieckUea] {
            let mut cfg =
                paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
            cfg.attack = attack;
            cfg.federation.client_learning_rate = static_lr;
            cfg.federation.client_lr_cycle = cycle;
            cfg.rounds = args.rounds_or(150);
            cfg.mined_top_n = if attack == AttackKind::PieckUea { 30 } else { 10 };
            let out = run(&cfg);
            cells.push(pct(out.er_percent));
            cells.push(pct(out.hr_percent));
        }
        table.row(&cells);
    }
    print!("{}", table.to_markdown());
}
