//! Minimal, dependency-free stand-in for `serde`.
//!
//! The build environment has no registry access, so this shim models
//! serialization as conversion to/from a JSON-like [`Value`] tree:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] rebuilds `Self` from a [`Value`];
//! - `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) generates both for structs with named fields and for enums with
//!   unit or newtype variants — the only shapes this workspace uses. The
//!   `#[serde(skip, default)]` field attribute is honoured, as is the bare
//!   `#[serde(default)]` (serialized normally, missing ⇒ `Default`) used to
//!   evolve persisted formats such as checkpoints.
//!
//! The sibling `serde_json` shim turns [`Value`] into JSON text and back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Field map used by [`Value::Object`].
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped data tree — the intermediate representation every
/// `Serialize`/`Deserialize` impl converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number, preserving integer-ness so `u64` seeds survive round trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Default for Value {
    /// `Null` — so `#[serde(default)]` fields of type [`Value`] read back as
    /// "absent" rather than failing.
    fn default() -> Self {
        Value::Null
    }
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(x)) => Some(*x),
            Value::Number(Number::I64(x)) => Some(*x as f64),
            Value::Number(Number::U64(x)) => Some(*x as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(x)) => Some(*x),
            Value::Number(Number::I64(x)) if *x >= 0 => Some(*x as u64),
            Value::Number(Number::F64(x)) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(x)) => Some(*x),
            Value::Number(Number::U64(x)) if *x <= i64::MAX as u64 => Some(*x as i64),
            Value::Number(Number::F64(x)) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short type tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64()
                    .ok_or_else(|| Error::new(format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(x).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64()
                    .ok_or_else(|| Error::new(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(x).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::new(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array()
                    .ok_or_else(|| Error::new(format!("expected tuple array, got {}", v.kind())))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of {expected}, got array of {}", arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Map keys: JSON objects key by string, so keys round-trip through text.
pub trait KeyCodec: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl KeyCodec for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl KeyCodec for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::new(format!("bad integer map key: {s:?}")))
            }
        }
    )*};
}
impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: KeyCodec + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: KeyCodec + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&n.to_value()).unwrap(), n);
        let t = (1.5f32, 3.0f32);
        assert_eq!(<(f32, f32)>::from_value(&t.to_value()).unwrap(), t);
        let mut m = BTreeMap::new();
        m.insert(7u32, vec![1.0f32, 2.0]);
        assert_eq!(
            BTreeMap::<u32, Vec<f32>>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn type_errors_reported() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
        assert!(<(f32, f32)>::from_value(&Value::Array(vec![Value::Null])).is_err());
    }
}
