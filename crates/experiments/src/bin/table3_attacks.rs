//! Table III: ER@10 / HR@10 of every attack × {MF-FRS, DL-FRS} × datasets,
//! with no defense and the default p̃ = 5% malicious users.
//!
//! Usage: `table3_attacks [--scale f] [--rounds n] [--seed s] [datasets...]`
//! where datasets ⊆ {ml100k, ml1m, az} (default: ml100k).

use frs_attacks::AttackKind;
use frs_experiments::report::pct;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_model::ModelKind;

fn main() {
    let args = CommonArgs::parse();
    let datasets: Vec<PaperDataset> = if args.positional.is_empty() {
        vec![PaperDataset::Ml100k]
    } else {
        args.positional
            .iter()
            .map(|name| {
                PaperDataset::from_name(name).unwrap_or_else(|| {
                    eprintln!("unknown dataset {name}; use ml100k|ml1m|az");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        for &dataset in &datasets {
            let probe = paper_scenario(dataset, kind, args.scale, args.seed);
            println!(
                "\n### Table III — {} on {} ({} users, {} items)",
                kind.label(),
                probe.dataset.name,
                probe.dataset.n_users,
                probe.dataset.n_items
            );
            let mut table = Table::new(&["Attack", "ER@10", "HR@10"]);
            for attack in AttackKind::all() {
                let mut cfg = paper_scenario(dataset, kind, args.scale, args.seed);
                cfg.attack = attack;
                cfg.rounds = args.rounds_or(150);
                // UEA mines a larger popular set (paper: N=50 vs 10 for IPE).
                cfg.mined_top_n = if attack == AttackKind::PieckUea { 30 } else { 10 };
                let out = run(&cfg);
                table.row(&[
                    attack.label().to_string(),
                    pct(out.er_percent),
                    pct(out.hr_percent),
                ]);
            }
            print!("{}", table.to_markdown());
        }
    }
}
