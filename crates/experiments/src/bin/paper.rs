//! `paper` — the one CLI reproducing every table and figure of the PIECK
//! paper.
//!
//! ```text
//! paper <command> [operands] [--scale f] [--rounds n] [--seed s] [--full]
//!                 [--threads n] [--round-threads auto|n] [--json dir]
//!                 [--csv dir] [--quiet] [--cache-dir dir] [--no-cache]
//!                 [--progress file] [--resume] [--checkpoint-every n]
//!                 [--dry-run]
//!
//! paper list                 # available commands
//! paper table4 --scale 0.25  # Table IV at quarter scale
//! paper table3 ml100k ml1m   # Table III on two datasets
//! paper all --json out/      # everything, with JSON reports in out/
//! paper all --cache-dir cache/ --progress run.jsonl   # cached + observable
//! paper cache stats --cache-dir cache/                # inspect the cache
//! paper defenses list        # defense registry: names, sides, param schemas
//! paper attacks list         # attack registry: names, labels, param schemas
//! paper table5 --defense ours:beta=0.9,re2=false  # parameterized override
//! paper table3 --attack pieck-uea:scale=2.0,top_n=20  # attack-side override
//! paper table4 mf --dataset file:data/u.data      # real MovieLens dump
//! ```
//!
//! Every command prints a Markdown report to stdout (unless `--quiet`) and
//! optionally writes the same report as JSON/CSV. Suite-backed commands run
//! their scenario grid in parallel across `--threads` workers; with
//! `--round-threads auto`, executing cells additionally lease spare workers
//! for their intra-round client fan-out (the big win on warm-cache runs
//! where only a few cells remain). Results are identical regardless of
//! thread counts or policy.
//!
//! With `--cache-dir`, every finished grid cell persists under a content
//! hash of its scenario config, so re-runs (and overlapping grids across
//! commands) replay instead of recomputing — an interrupted `paper all`
//! restarted with `--resume` executes only the missing cells. `--progress`
//! streams one JSONL event per finished cell for mid-flight observability.
// Exit codes are the `paper` CLI's documented interface (0 ok, 1 failure,
// 2 usage, EXIT_INTERRUPTED for checkpoint-then-stop): the workspace-wide
// `clippy::exit` deny keeps `exit` out of library code, not out of the
// binary's command dispatch.
#![allow(clippy::exit)]

use frs_experiments::paper::PaperCommand;
use frs_experiments::suite::ExecOptions;
use frs_experiments::{CommonArgs, JsonlSink, Report, ReportFormat, SuiteCache};
use frs_federation::CoreBudget;

fn print_usage() {
    eprintln!("usage: paper <command> [operands] [--scale f] [--rounds n] [--seed s] [--full]");
    eprintln!("                       [--threads n] [--round-threads auto|n]");
    eprintln!("                       [--attack name[:k=v,...]] [--defense name[:k=v,...]]");
    eprintln!("                       [--dataset name|file:PATH]");
    eprintln!("                       [--json dir] [--csv dir] [--quiet] [--cache-dir dir]");
    eprintln!("                       [--no-cache] [--progress file] [--resume]");
    eprintln!("                       [--checkpoint-every n] [--dry-run]");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  list             list every reproduction command");
    eprintln!("  all              run every table and figure");
    eprintln!("  attacks list     list registered attacks (name, label, params)");
    eprintln!("  defenses list    list registered defenses (name, label, side, params)");
    eprintln!("  cache <stats|gc|clear>   inspect / clean a --cache-dir");
    eprintln!("  serve [mf|ncf]   top-K query daemon (--socket/--tcp, --scenario [name=]mf|ncf");
    eprintln!("                   repeatable; trains while serving)");
    eprintln!("  loadtest         saturate a serve daemon (--tcp/--socket, --connections,");
    eprintln!("                   --pipeline, --requests, --rate, --dist, --gate-json)");
    for cmd in PaperCommand::all() {
        eprintln!("  {:<16} {}", cmd.name(), cmd.description());
    }
}

/// `paper defenses list`: every registered defense with its label, side,
/// and parameter schema (the keys `--defense name:k=v,…` accepts).
fn defenses_list() {
    println!("{:<14} {:<14} {:<7} params", "name", "label", "side");
    for name in frs_defense::registered_defenses() {
        let Some(factory) = frs_defense::defense_factory(&name) else {
            continue;
        };
        let side = if factory.is_client_side() {
            "client"
        } else {
            "server"
        };
        let schema = factory.param_schema();
        let params = if schema.is_empty() {
            "-".to_string()
        } else {
            schema
                .iter()
                .map(|p| format!("{} ({}; default: {})", p.key, p.doc, p.default))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{:<14} {:<14} {:<7} {params}", name, factory.label(), side);
    }
}

/// `paper attacks list`: every registered attack with its table label and
/// parameter schema (the keys `--attack name:k=v,…` accepts).
fn attacks_list() {
    println!("{:<22} {:<14} params", "name", "label");
    for name in frs_attacks::registered_attacks() {
        let Some(factory) = frs_attacks::attack_factory(&name) else {
            continue;
        };
        let schema = factory.param_schema();
        let params = if schema.is_empty() {
            "-".to_string()
        } else {
            schema
                .iter()
                .map(|p| format!("{} ({}; default: {})", p.key, p.doc, p.default))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "{:<22} {:<14} {params}",
            name,
            factory.label(),
            params = params
        );
    }
}

fn emit(report: &Report, args: &CommonArgs) {
    if !args.quiet {
        print!("{}", report.to_markdown());
    }
    if let Some(dir) = &args.json {
        match report.write_to(dir, ReportFormat::Json) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write JSON report: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = &args.csv {
        match report.write_to(dir, ReportFormat::Csv) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write CSV report: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_or_exit(cmd: PaperCommand, args: &CommonArgs, exec: &ExecOptions<'_>) -> Report {
    cmd.run(args, exec).unwrap_or_else(|msg| {
        eprintln!("paper {}: {msg}", cmd.name());
        // A suite aborted by SIGINT/SIGTERM is a clean checkpoint-and-stop,
        // not an argument error: exit with the conventional interrupt code
        // so wrappers (CI, shell scripts) can tell the two apart.
        if frs_experiments::shutdown::requested() {
            std::process::exit(frs_experiments::shutdown::EXIT_INTERRUPTED);
        }
        std::process::exit(2);
    })
}

/// `paper cache <stats|gc|clear> --cache-dir dir`.
fn cache_command(args: &CommonArgs) {
    let Some(dir) = &args.cache_dir else {
        eprintln!("paper cache: needs --cache-dir");
        std::process::exit(2);
    };
    // Inspection must not conjure the directory: a typo'd path should say
    // so, not report an empty cache (SuiteCache::open would create it).
    if !dir.is_dir() {
        eprintln!("paper cache: no such cache directory: {}", dir.display());
        std::process::exit(1);
    }
    let cache = SuiteCache::open(dir).unwrap_or_else(|e| {
        eprintln!("paper cache: cannot open {}: {e}", dir.display());
        std::process::exit(1);
    });
    let action = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or("stats");
    match action {
        "stats" => match cache.stats() {
            Ok(stats) => {
                println!(
                    "cache {}: {} files ({} live, {} stale, {} corrupt, {} checkpoints), {} bytes ({} in checkpoints)",
                    dir.display(),
                    stats.files(),
                    stats.live,
                    stats.stale,
                    stats.corrupt,
                    stats.checkpoints,
                    stats.total_bytes,
                    stats.checkpoint_bytes
                );
            }
            Err(e) => {
                eprintln!("paper cache stats: {e}");
                std::process::exit(1);
            }
        },
        "gc" | "clear" if args.dry_run => match cache.gc_plan(action == "clear") {
            Ok(plan) => {
                for doomed in &plan {
                    println!(
                        "would remove {} ({} bytes): {}",
                        doomed.path.display(),
                        doomed.bytes,
                        doomed.reason
                    );
                }
                let bytes: u64 = plan.iter().map(|d| d.bytes).sum::<u64>();
                println!(
                    "cache {}: would remove {} files, reclaim {} bytes",
                    dir.display(),
                    plan.len(),
                    bytes
                );
            }
            Err(e) => {
                eprintln!("paper cache {action}: {e}");
                std::process::exit(1);
            }
        },
        "gc" | "clear" => match cache.gc(action == "clear") {
            Ok(gc) => {
                println!(
                    "cache {}: removed {} files, reclaimed {} bytes",
                    dir.display(),
                    gc.removed,
                    gc.reclaimed_bytes
                );
            }
            Err(e) => {
                eprintln!("paper cache {action}: {e}");
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("paper cache: unknown action `{other}`; use stats|gc|clear");
            std::process::exit(2);
        }
    }
}

/// Resolves one `--scenario [name=]mf|ncf` spec (or the bare positional
/// model operand) into a serve spec. Every scenario shares the session's
/// dataset/scale/seed/attack/defense overrides; the model kind is what
/// varies per `--scenario`.
fn serve_spec(spec: &str, args: &CommonArgs) -> Result<frs_experiments::ServeScenarioSpec, String> {
    let (name, model) = match spec.split_once('=') {
        Some((name, model)) if !name.is_empty() => (name.to_string(), model),
        Some(_) => return Err(format!("bad --scenario `{spec}`: empty name")),
        None => (spec.to_string(), spec),
    };
    let kind = match model {
        "mf" => frs_model::ModelKind::Mf,
        "ncf" => frs_model::ModelKind::Ncf,
        other => {
            return Err(format!(
                "bad --scenario `{spec}`: unknown model `{other}`; use mf|ncf"
            ))
        }
    };
    let dataset = args
        .dataset
        .clone()
        .unwrap_or(frs_experiments::PaperDataset::Ml100k);
    let mut cfg = frs_experiments::paper_scenario(dataset, kind, args.scale, args.seed);
    cfg.rounds = args.rounds_or(cfg.rounds);
    if let Some(attack) = &args.attack {
        cfg.attack = attack.clone();
    }
    if let Some(defense) = &args.defense {
        cfg.defense = defense.clone();
    }
    cfg.federation.round_threads = args.round_threads;
    Ok(frs_experiments::ServeScenarioSpec { name, cfg })
}

/// `paper serve [mf|ncf] [--socket path.sock] [--tcp addr]
/// [--scenario [name=]mf|ncf]... [--dataset d] [--cache-dir dir]
/// [--checkpoint-every n] [--keep-checkpoints k] [--probe-every n]
/// [--rounds n] [--scale f] [--seed s] [--attack a] [--defense d]`:
/// train (or resume) every scenario while answering top-K queries on a
/// Unix socket and/or TCP listener, until SIGINT/SIGTERM. Requests route
/// by `{"scenario":NAME}`; the first scenario is the default.
fn serve_command(args: &CommonArgs) -> ! {
    if args.socket.is_none() && args.tcp.is_none() {
        eprintln!("paper serve: needs --socket PATH and/or --tcp ADDR");
        std::process::exit(2);
    }
    // `--scenario` specs win; the bare positional model operand remains the
    // single-scenario shorthand (`paper serve ncf`).
    let specs: Vec<String> = if args.scenarios.is_empty() {
        vec![args
            .positional
            .get(1)
            .cloned()
            .unwrap_or_else(|| "mf".to_string())]
    } else {
        args.scenarios.clone()
    };
    let specs: Vec<frs_experiments::ServeScenarioSpec> = specs
        .iter()
        .map(|s| {
            serve_spec(s, args).unwrap_or_else(|e| {
                eprintln!("paper serve: {e}");
                std::process::exit(2);
            })
        })
        .collect();

    let cache = match (&args.cache_dir, args.no_cache) {
        (Some(dir), false) => Some(SuiteCache::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache dir {}: {e}", dir.display());
            std::process::exit(1);
        })),
        _ => None,
    };
    // Serve is always interruptible: the whole point of the daemon is that
    // Ctrl-C drains queries and leaves a resumable checkpoint behind.
    frs_experiments::shutdown::install_handlers();
    let budget = CoreBudget::new(args.threads);
    for spec in &specs {
        eprintln!(
            "paper serve: scenario `{}` — {} rounds on {}",
            spec.name, spec.cfg.rounds, spec.cfg.dataset.name
        );
    }
    let opts = frs_experiments::ServeOptions {
        socket: args.socket.as_deref(),
        tcp: args.tcp.as_deref(),
        cache: cache.as_ref(),
        checkpoint_every: args.checkpoint_every,
        keep_checkpoints: args.keep_checkpoints,
        probe_every: args.probe_every,
        tcp_bound: None,
    };
    match frs_experiments::serve_scenarios(specs, &opts, &budget) {
        Ok(summary) => {
            for s in &summary.scenarios {
                eprintln!(
                    "paper serve: `{}` stopped at round {}/{} ({} queries{})",
                    s.name,
                    s.rounds_done,
                    s.target_rounds,
                    s.queries_served,
                    match s.resumed_from {
                        Some(round) => format!(", resumed from round {round}"),
                        None => String::new(),
                    }
                );
            }
            eprintln!(
                "paper serve: {} queries served total",
                summary.queries_served
            );
            std::process::exit(frs_experiments::shutdown::EXIT_INTERRUPTED);
        }
        Err(msg) => {
            eprintln!("paper serve: {msg}");
            std::process::exit(1);
        }
    }
}

/// `paper loadtest (--tcp addr | --socket path) [--connections n]
/// [--pipeline n] [--requests n] [--rate r] [--dist uniform|zipf[:exp]]
/// [--seed s] [--scenario name]... [--gate-json file]`: drive a running
/// `paper serve` daemon to saturation and report QPS + latency quantiles.
/// `--rate` switches from closed-loop (pipeline-limited) to open-loop
/// (scheduled arrivals, coordinated-omission-free). `--gate-json` appends
/// the run's bench-gate records for `bench-gate compare`.
fn loadtest_command(args: &CommonArgs) -> ! {
    let target = match (&args.tcp, &args.socket) {
        (Some(addr), _) => frs_loadtest::Target::Tcp(addr.clone()),
        (None, Some(path)) => frs_loadtest::Target::Unix(path.clone()),
        (None, None) => {
            eprintln!("paper loadtest: needs --tcp ADDR or --socket PATH");
            std::process::exit(2);
        }
    };
    let dist = frs_loadtest::KeyDist::parse(&args.dist).unwrap_or_else(|e| {
        eprintln!("paper loadtest: bad --dist: {e}");
        std::process::exit(2);
    });
    let opts = frs_loadtest::LoadOptions {
        target,
        connections: args.connections,
        pipeline: args.pipeline,
        requests: args.requests,
        mode: match args.rate {
            Some(rate) => frs_loadtest::Mode::Open { rate },
            None => frs_loadtest::Mode::Closed,
        },
        dist,
        seed: args.seed,
        scenarios: args.scenarios.clone(),
        ..frs_loadtest::LoadOptions::default()
    };
    match frs_loadtest::run(&opts) {
        Ok(report) => {
            println!("{}", report.summary());
            if let Some(path) = &args.gate_json {
                use std::io::Write as _;
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open {}: {e}", path.display());
                        std::process::exit(1);
                    });
                file.write_all(report.gate_records().as_bytes())
                    .unwrap_or_else(|e| {
                        eprintln!("cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    });
                eprintln!("appended gate records to {}", path.display());
            }
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("paper loadtest: {msg}");
            std::process::exit(1);
        }
    }
}

/// A resolved run request (the commands that execute suites).
enum Invocation {
    All,
    One(PaperCommand),
}

fn main() {
    let args = CommonArgs::parse();
    let Some(command) = args.positional.first().map(String::as_str) else {
        print_usage();
        std::process::exit(2);
    };

    // Resolve the command *before* opening any sink: a typo'd command (or
    // `list`) must not truncate an existing progress file.
    let invocation = match command {
        "list" => {
            for cmd in PaperCommand::all() {
                println!("{:<16} {}", cmd.name(), cmd.description());
            }
            return;
        }
        cmd @ ("defenses" | "attacks") => {
            // `list` is the only action (and the default) — an unknown
            // operand is an argument error, matching `cache`'s dispatch.
            match args.positional.get(1).map(String::as_str) {
                None | Some("list") => {}
                Some(other) => {
                    eprintln!("paper {cmd}: unknown action `{other}`; use list");
                    std::process::exit(2);
                }
            }
            if cmd == "defenses" {
                defenses_list();
            } else {
                attacks_list();
            }
            return;
        }
        "cache" => {
            cache_command(&args);
            return;
        }
        "serve" => serve_command(&args),
        "loadtest" => loadtest_command(&args),
        "all" => Invocation::All,
        name => match PaperCommand::from_name(name) {
            Some(cmd) => Invocation::One(cmd),
            None => {
                eprintln!("unknown command `{name}`");
                print_usage();
                std::process::exit(2);
            }
        },
    };

    // Validate an --attack override up front with a full try-build probe
    // (count = 0: params are validated, no client is constructed): unknown
    // names, typo'd keys, and mistyped/out-of-range values are all a clean
    // exit 2 instead of a worker panic three cells into a sweep. Unlike
    // defenses, every attack the paper CLI can sweep — the table6/table9
    // ablation variants included — is a builtin catalog entry, so an
    // unresolved name here is always an error.
    if let Some(sel) = &args.attack {
        if let Err(e) = sel.try_build_clients(&frs_attacks::AttackBuildCtx::minimal(0, 0, &[])) {
            eprintln!("bad --attack {sel}: {e}");
            std::process::exit(2);
        }
    }

    // Validate a --defense override up front when the name already resolves
    // (built-ins always do): typo'd keys, mistyped values, and out-of-range
    // parameters should all be a clean exit, not a worker panic three cells
    // into a sweep — so probe a full build against a neutral context.
    // Unregistered names are left to runtime — table6/table9-style
    // factories register during suite declaration.
    if let Some(sel) = &args.defense {
        if sel.resolve().is_some() {
            if let Err(e) = sel.try_build(&frs_defense::DefenseBuildCtx::minimal(0.05, 0.05)) {
                eprintln!("bad --defense {sel}: {e}");
                std::process::exit(2);
            }
        }
    }

    // Same courtesy for --dataset file:PATH — a missing file should be a
    // clean argument error, not a mid-sweep worker panic. (Malformed
    // content still fails at load time with the offending line number.)
    if let Some(frs_experiments::PaperDataset::File(path)) = &args.dataset {
        if !std::path::Path::new(path).is_file() {
            eprintln!("bad --dataset file:{path}: no such file");
            std::process::exit(2);
        }
    }

    let cache = match (&args.cache_dir, args.no_cache) {
        (Some(dir), false) => Some(SuiteCache::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache dir {}: {e}", dir.display());
            std::process::exit(1);
        })),
        _ => None,
    };
    // Bespoke commands have no cell grid, so their sink would never receive
    // an event (the file itself is safe either way — JsonlSink only
    // truncates at the first event). Skip opening it and say so, instead of
    // leaving the user waiting on a progress stream that stays empty.
    let wants_sink = match &invocation {
        Invocation::All => true,
        Invocation::One(cmd) => cmd.emits_cell_events(),
    };
    if !wants_sink && args.progress.is_some() {
        eprintln!("note: this command has no cell grid; --progress is not written");
    }
    let sink = args.progress.as_ref().filter(|_| wants_sink).map(|path| {
        JsonlSink::open(path, args.resume).unwrap_or_else(|e| {
            eprintln!("cannot open progress file {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    // One core budget for the whole invocation: `paper all` runs many suites
    // through the same ledger, so their combined fan-out never oversubscribes
    // the `--threads` grant.
    let budget = CoreBudget::new(args.threads);
    // Checkpointed runs trade default kill-me-now signal semantics for
    // checkpoint-and-exit-130; plain runs keep the default.
    if args.checkpoint_every > 0 {
        frs_experiments::shutdown::install_handlers();
    }
    let exec = ExecOptions {
        cache: cache.as_ref(),
        sink: sink
            .as_ref()
            .map(|s| s as &dyn frs_experiments::ProgressSink),
        budget: Some(&budget),
        checkpoint_every: args.checkpoint_every,
        checkpoint_keep: args.keep_checkpoints,
    };

    match invocation {
        Invocation::All => {
            for cmd in PaperCommand::all() {
                eprintln!("== paper {} ==", cmd.name());
                emit(&run_or_exit(cmd, &args, &exec), &args);
            }
        }
        Invocation::One(cmd) => emit(&run_or_exit(cmd, &args, &exec), &args),
    }
}
