//! Integration tests of the `ExperimentSuite` API across crate boundaries:
//! an *out-of-crate* attack — defined right here, never touching
//! `AttackKind` — registers through `AttackFactory` and runs through a suite
//! alongside the built-ins; suite configurations round-trip through JSON;
//! and the `paper` command declarations execute end to end at CI scale.

use pieck_frs::attacks::{register_attack, AttackKind, AttackSel, FnAttackFactory};
use pieck_frs::defense::DefenseKind;
use pieck_frs::experiments::{
    Axis, ConfigPatch, ExperimentSuite, RunOptions, ScenarioConfig, Sweep,
};
use pieck_frs::federation::{Client, RoundContext};
use pieck_frs::model::{GlobalGradients, GlobalModel};

/// A deliberately simple poisoning client that exists only in this test
/// crate: every round it uploads a large constant gradient pulling its
/// targets' embeddings upward. No core crate knows this type.
struct BlastClient {
    id: usize,
    targets: Vec<u32>,
}

impl Client for BlastClient {
    fn id(&self) -> usize {
        self.id
    }

    fn is_malicious(&self) -> bool {
        true
    }

    fn local_round(&mut self, _ctx: &RoundContext, model: &GlobalModel) -> GlobalGradients {
        let mut grads = GlobalGradients::new();
        for &t in &self.targets {
            // The server applies θ ← θ − η·g, so a negative constant raises
            // every coordinate of the target embedding.
            grads.add_item_grad(t, &vec![-0.2; model.dim()]);
        }
        grads
    }
}

fn tiny_opts(threads: usize) -> RunOptions {
    RunOptions {
        scale: 0.05,
        seed: 11,
        rounds: Some(10),
        threads,
        ..RunOptions::default()
    }
}

#[test]
fn out_of_crate_attack_runs_through_a_suite() {
    register_attack(FnAttackFactory::new("blast", "Blast", |ctx| {
        (0..ctx.count)
            .map(|i| {
                Box::new(BlastClient {
                    id: ctx.first_id + i,
                    targets: ctx.targets.to_vec(),
                }) as Box<dyn Client>
            })
            .collect()
    }));

    let suite = ExperimentSuite::new("custom", "Custom attack suite").sweep(
        Sweep::new("grid", "builtin vs registered")
            .over_attacks([
                AttackSel::from(AttackKind::NoAttack),
                AttackSel::named("blast"),
            ])
            .over_defenses([DefenseKind::NoDefense, DefenseKind::NormBound]),
    );
    let result = suite.run(&tiny_opts(2));

    let cells: Vec<_> = result.all_cells().collect();
    assert_eq!(cells.len(), 4);
    for cell in &cells {
        assert!(cell.outcome.er_percent.is_finite(), "{:?}", cell.cell);
        assert!(cell.outcome.hr_percent.is_finite(), "{:?}", cell.cell);
    }
    // The registered attack actually fielded malicious clients: its undefended
    // exposure must exceed the clean baseline's.
    let er_of = |attack: &str, defense: DefenseKind| {
        cells
            .iter()
            .find(|c| c.cell.attack == AttackSel::named(attack) && c.cell.defense == defense)
            .unwrap()
            .outcome
            .er_percent
    };
    assert!(
        er_of("blast", DefenseKind::NoDefense) > er_of("none", DefenseKind::NoDefense),
        "blast should expose its target: {} vs {}",
        er_of("blast", DefenseKind::NoDefense),
        er_of("none", DefenseKind::NoDefense)
    );
    // And it renders under its registered label.
    let md = result.report().to_markdown();
    assert!(md.contains("Blast"), "{md}");
}

#[test]
fn suite_with_custom_attack_round_trips_through_json() {
    let suite = ExperimentSuite::new("rt", "Round trip").sweep(
        Sweep::new("s", "S")
            .over_attacks([AttackSel::named("blast"), AttackKind::PieckIpe.into()])
            .over_variants([ConfigPatch {
                label: "q=4".into(),
                negative_ratio: Some(4),
                ..ConfigPatch::default()
            }]),
    );
    let json = serde_json::to_string_pretty(&suite).unwrap();
    let back: ExperimentSuite = serde_json::from_str(&json).unwrap();
    assert_eq!(back.cell_count(), suite.cell_count());
    let cells = back.cells(&tiny_opts(1));
    assert_eq!(cells[0].attack, AttackSel::named("blast"));
    assert_eq!(cells[1].attack, AttackKind::PieckIpe);
    assert_eq!(cells[0].config.federation.negative_ratio, 4);

    // A single materialized scenario round-trips too, custom name included.
    let cfg_json = serde_json::to_string(&cells[0].config).unwrap();
    let cfg: ScenarioConfig = serde_json::from_str(&cfg_json).unwrap();
    assert_eq!(cfg.attack, AttackSel::named("blast"));
}

#[test]
fn pivot_and_long_tables_agree_on_metrics() {
    let suite = ExperimentSuite::new("agree", "Agreement")
        .sweep(Sweep::new("s", "S").over_attacks([AttackKind::NoAttack, AttackKind::PieckUea]));
    let result = suite.run(&tiny_opts(2));
    let sweep = &result.sweeps[0];
    let long = sweep.long_table();
    let pivot = sweep.pivot(Axis::Attack, Axis::Variant);
    // Long format: ER is column 7; pivot: ER is column 1.
    for (i, cell) in sweep.cells.iter().enumerate() {
        let er = format!("{:.2}", cell.outcome.er_percent);
        assert_eq!(long.rows()[i][7], er);
        assert_eq!(pivot.rows()[i][1], er);
    }
}
