//! Minimal argument parsing for the `paper` CLI.
//!
//! Kept dependency-free (no clap in the sanctioned crate set): flags are
//! `--name value` pairs plus positional arguments (the subcommand and its
//! operands).

use std::path::PathBuf;

use frs_attacks::AttackSel;
use frs_defense::DefenseSel;
use frs_federation::{ClientsPerRound, RoundThreads};

use crate::presets::PaperDataset;
use crate::suite::{default_threads, RunOptions};

/// Arguments every `paper` subcommand understands.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Dataset scale factor in (0, 1]; presets shrink shape-preservingly.
    pub scale: f64,
    /// Override for the number of communication rounds.
    pub rounds: Option<usize>,
    /// Root seed.
    pub seed: u64,
    /// Core budget of the run: worker threads executing suite cells, and —
    /// with `--round-threads auto` — the pool per-cell leases draw from.
    pub threads: usize,
    /// Per-round client fan-out policy (`--round-threads auto|N`). `auto`
    /// leases each executing cell its fair share of `--threads`; a number
    /// freezes the width. Results are identical under every setting.
    pub round_threads: RoundThreads,
    /// Attack override (`--attack name[:k=v,…]`, e.g.
    /// `--attack pieck-uea:scale=2.0`): collapses every sweep's attack axis
    /// to this one selection. Probed with a full try-build at startup, so a
    /// typo'd spec is a clean exit 2, not a mid-sweep worker panic.
    pub attack: Option<AttackSel>,
    /// Defense override (`--defense name[:k=v,…]`, e.g.
    /// `--defense ours:beta=0.5`): collapses every sweep's defense axis to
    /// this one selection.
    pub defense: Option<DefenseSel>,
    /// Dataset override (`--dataset ml100k|ml1m|az|file:PATH`): collapses
    /// every sweep's dataset axis to this one dataset.
    pub dataset: Option<PaperDataset>,
    /// Per-round sample width override (`--clients-per-round 256|0.01|25%`):
    /// overrides every cell's `|U^r|` — a count, fraction, or percentage of
    /// the registered population.
    pub clients_per_round: Option<ClientsPerRound>,
    /// Directory to write the JSON report into (`--json out/`).
    pub json: Option<PathBuf>,
    /// Directory to write the CSV report into (`--csv out/`).
    pub csv: Option<PathBuf>,
    /// Suppress the Markdown report on stdout (`--quiet`).
    pub quiet: bool,
    /// Content-addressed suite cache directory (`--cache-dir cache/`).
    pub cache_dir: Option<PathBuf>,
    /// Disables the cache even when `--cache-dir` is set (`--no-cache`).
    pub no_cache: bool,
    /// JSONL progress stream, one event per finished cell
    /// (`--progress run.jsonl`).
    pub progress: Option<PathBuf>,
    /// Resume an interrupted run: requires `--cache-dir` (finished cells
    /// replay as hits, partially-trained cells continue from their
    /// checkpoint) and appends to `--progress` instead of truncating.
    pub resume: bool,
    /// Write a mid-run checkpoint every N rounds (`--checkpoint-every N`;
    /// 0 = disabled). Requires `--cache-dir`: checkpoints live beside the
    /// cell entries they resume into. Also arms the SIGINT/SIGTERM
    /// final-checkpoint-then-exit-130 path.
    pub checkpoint_every: usize,
    /// `paper cache gc --dry-run`: list what gc would remove, remove nothing.
    pub dry_run: bool,
    /// Unix socket path the `paper serve` daemon listens on
    /// (`--socket run.sock`).
    pub socket: Option<PathBuf>,
    /// TCP address `paper serve` listens on / `paper loadtest` targets
    /// (`--tcp 127.0.0.1:7411`; port 0 binds an ephemeral port).
    pub tcp: Option<String>,
    /// Scenario specs for `paper serve`, repeatable
    /// (`--scenario [name=]mf|ncf`). Empty = single scenario from the
    /// positional model operand.
    pub scenarios: Vec<String>,
    /// Checkpoint generations `paper serve` retains per scenario
    /// (`--keep-checkpoints K`, default 1 = newest only).
    pub keep_checkpoints: usize,
    /// Rounds between `paper serve` online ER/HR probes
    /// (`--probe-every N`, 0 = disabled).
    pub probe_every: usize,
    /// `paper loadtest` concurrent connections (`--connections N`).
    pub connections: usize,
    /// `paper loadtest` in-flight requests per connection (`--pipeline N`).
    pub pipeline: usize,
    /// `paper loadtest` total requests (`--requests N`).
    pub requests: u64,
    /// `paper loadtest` open-loop arrival rate in req/s (`--rate R`);
    /// absent = closed loop.
    pub rate: Option<f64>,
    /// `paper loadtest` key distribution (`--dist uniform|zipf[:EXP]`).
    pub dist: String,
    /// Where `paper loadtest` appends its bench-gate JSONL records
    /// (`--gate-json FILE`).
    pub gate_json: Option<PathBuf>,
    /// Remaining positional arguments (subcommand + operands).
    pub positional: Vec<String>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            rounds: None,
            seed: 7,
            threads: default_threads(),
            round_threads: RoundThreads::default(),
            attack: None,
            defense: None,
            dataset: None,
            clients_per_round: None,
            json: None,
            csv: None,
            quiet: false,
            cache_dir: None,
            no_cache: false,
            progress: None,
            resume: false,
            checkpoint_every: 0,
            dry_run: false,
            socket: None,
            tcp: None,
            scenarios: Vec::new(),
            keep_checkpoints: 1,
            probe_every: 0,
            connections: 4,
            pipeline: 8,
            requests: 10_000,
            rate: None,
            dist: "uniform".to_string(),
            gate_json: None,
            positional: Vec::new(),
        }
    }
}

impl CommonArgs {
    /// Parses from an iterator of arguments (excluding `argv[0]`).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = CommonArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().ok_or("--scale needs a value")?;
                    out.scale = v.parse().map_err(|_| format!("bad --scale: {v}"))?;
                    if out.scale <= 0.0 || out.scale > 1.0 {
                        return Err("--scale must be in (0, 1]".into());
                    }
                }
                "--rounds" => {
                    let v = iter.next().ok_or("--rounds needs a value")?;
                    out.rounds = Some(v.parse().map_err(|_| format!("bad --rounds: {v}"))?);
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad --seed: {v}"))?;
                }
                "--full" => out.scale = 1.0,
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    out.threads = v.parse().map_err(|_| format!("bad --threads: {v}"))?;
                    if out.threads == 0 {
                        return Err("--threads must be ≥ 1".into());
                    }
                }
                "--round-threads" => {
                    let v = iter
                        .next()
                        .ok_or("--round-threads needs `auto` or a count")?;
                    out.round_threads =
                        RoundThreads::parse(&v).map_err(|e| format!("bad --round-threads: {e}"))?;
                }
                "--attack" => {
                    let v = iter.next().ok_or("--attack needs a name[:k=v,...] spec")?;
                    out.attack =
                        Some(AttackSel::parse(&v).map_err(|e| format!("bad --attack: {e}"))?);
                }
                "--defense" => {
                    let v = iter.next().ok_or("--defense needs a name[:k=v,...] spec")?;
                    out.defense =
                        Some(DefenseSel::parse(&v).map_err(|e| format!("bad --defense: {e}"))?);
                }
                "--dataset" => {
                    let v = iter
                        .next()
                        .ok_or("--dataset needs ml100k|ml1m|az|file:PATH")?;
                    out.dataset = Some(PaperDataset::from_name(&v).ok_or_else(|| {
                        format!("bad --dataset: {v}; use ml100k|ml1m|az|file:PATH")
                    })?);
                }
                "--clients-per-round" => {
                    let v = iter
                        .next()
                        .ok_or("--clients-per-round needs a count, fraction, or pct%")?;
                    out.clients_per_round = Some(
                        ClientsPerRound::parse(&v)
                            .map_err(|e| format!("bad --clients-per-round: {e}"))?,
                    );
                }
                "--json" => {
                    let v = iter.next().ok_or("--json needs a directory")?;
                    out.json = Some(PathBuf::from(v));
                }
                "--csv" => {
                    let v = iter.next().ok_or("--csv needs a directory")?;
                    out.csv = Some(PathBuf::from(v));
                }
                "--quiet" => out.quiet = true,
                "--cache-dir" => {
                    let v = iter.next().ok_or("--cache-dir needs a directory")?;
                    out.cache_dir = Some(PathBuf::from(v));
                }
                "--no-cache" => out.no_cache = true,
                "--progress" => {
                    let v = iter.next().ok_or("--progress needs a file")?;
                    out.progress = Some(PathBuf::from(v));
                }
                "--resume" => out.resume = true,
                "--checkpoint-every" => {
                    let v = iter
                        .next()
                        .ok_or("--checkpoint-every needs a round count")?;
                    out.checkpoint_every = v
                        .parse()
                        .map_err(|_| format!("bad --checkpoint-every: {v}"))?;
                    if out.checkpoint_every == 0 {
                        return Err("--checkpoint-every must be ≥ 1".into());
                    }
                }
                "--dry-run" => out.dry_run = true,
                "--socket" => {
                    let v = iter.next().ok_or("--socket needs a path")?;
                    out.socket = Some(PathBuf::from(v));
                }
                "--tcp" => {
                    let v = iter.next().ok_or("--tcp needs an address (host:port)")?;
                    out.tcp = Some(v);
                }
                "--scenario" => {
                    let v = iter.next().ok_or("--scenario needs a [name=]mf|ncf spec")?;
                    out.scenarios.push(v);
                }
                "--keep-checkpoints" => {
                    let v = iter.next().ok_or("--keep-checkpoints needs a count")?;
                    out.keep_checkpoints = v
                        .parse()
                        .map_err(|_| format!("bad --keep-checkpoints: {v}"))?;
                    if out.keep_checkpoints == 0 {
                        return Err("--keep-checkpoints must be ≥ 1".into());
                    }
                }
                "--probe-every" => {
                    let v = iter.next().ok_or("--probe-every needs a round count")?;
                    out.probe_every = v.parse().map_err(|_| format!("bad --probe-every: {v}"))?;
                    if out.probe_every == 0 {
                        return Err("--probe-every must be ≥ 1".into());
                    }
                }
                "--connections" => {
                    let v = iter.next().ok_or("--connections needs a count")?;
                    out.connections = v.parse().map_err(|_| format!("bad --connections: {v}"))?;
                    if out.connections == 0 {
                        return Err("--connections must be ≥ 1".into());
                    }
                }
                "--pipeline" => {
                    let v = iter.next().ok_or("--pipeline needs a depth")?;
                    out.pipeline = v.parse().map_err(|_| format!("bad --pipeline: {v}"))?;
                    if out.pipeline == 0 {
                        return Err("--pipeline must be ≥ 1".into());
                    }
                }
                "--requests" => {
                    let v = iter.next().ok_or("--requests needs a count")?;
                    out.requests = v.parse().map_err(|_| format!("bad --requests: {v}"))?;
                    if out.requests == 0 {
                        return Err("--requests must be ≥ 1".into());
                    }
                }
                "--rate" => {
                    let v = iter.next().ok_or("--rate needs requests per second")?;
                    out.rate = Some(v.parse().map_err(|_| format!("bad --rate: {v}"))?);
                    if !out.rate.unwrap().is_finite() || out.rate.unwrap() <= 0.0 {
                        return Err("--rate must be a positive number".into());
                    }
                }
                "--dist" => {
                    let v = iter.next().ok_or("--dist needs uniform|zipf[:EXP]")?;
                    out.dist = v;
                }
                "--gate-json" => {
                    let v = iter.next().ok_or("--gate-json needs a file")?;
                    out.gate_json = Some(PathBuf::from(v));
                }
                other => out.positional.push(other.to_string()),
            }
        }
        if out.resume && (out.cache_dir.is_none() || out.no_cache) {
            return Err("--resume needs --cache-dir (and no --no-cache): \
                        resuming replays finished cells from the cache"
                .into());
        }
        if out.checkpoint_every > 0 && (out.cache_dir.is_none() || out.no_cache) {
            return Err("--checkpoint-every needs --cache-dir (and no --no-cache): \
                        checkpoints live beside their cell's cache entry"
                .into());
        }
        Ok(out)
    }

    /// Parses from the process environment, exiting with a message on error.
    // This helper IS the binary's CLI entry (exit 2 = usage, the contract CI
    // scripts test); everything else in the crate returns `Result` and the
    // workspace-wide `clippy::exit` deny keeps it that way.
    #[allow(clippy::exit)]
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("argument error: {msg}");
                eprintln!(
                    "usage: paper <command> [--scale f] [--rounds n] [--seed s] [--full] \
                     [--threads n] [--round-threads auto|n] [--attack name[:k=v,...]] \
                     [--defense name[:k=v,...]] \
                     [--dataset ml100k|ml1m|az|file:PATH] \
                     [--clients-per-round n|frac|pct%] [--json dir] [--csv dir] \
                     [--quiet] [--cache-dir dir] [--no-cache] [--progress file] \
                     [--resume] [--checkpoint-every n] [--dry-run] [--socket path] \
                     [--tcp addr] [--scenario [name=]mf|ncf] [--keep-checkpoints k] \
                     [--probe-every n] [--connections n] [--pipeline n] [--requests n] \
                     [--rate r] [--dist uniform|zipf[:exp]] [--gate-json file] \
                     [extra...]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Rounds to run, with an experiment-provided default.
    pub fn rounds_or(&self, default: usize) -> usize {
        self.rounds.unwrap_or(default)
    }

    /// The suite-level run options these arguments describe.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            scale: self.scale,
            seed: self.seed,
            rounds: self.rounds,
            threads: self.threads,
            round_threads: self.round_threads,
            attack: self.attack.clone(),
            defense: self.defense.clone(),
            dataset: self.dataset.clone(),
            clients_per_round: self.clients_per_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_args() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 0.25);
        assert!(a.rounds.is_none());
        assert_eq!(a.rounds_or(100), 100);
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = parse(&["--scale", "0.5", "--rounds", "50", "--seed", "9", "p", "n"]).unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.rounds_or(1), 50);
        assert_eq!(a.seed, 9);
        assert_eq!(a.positional, vec!["p", "n"]);
    }

    #[test]
    fn full_sets_scale_one() {
        assert_eq!(parse(&["--full"]).unwrap().scale, 1.0);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--rounds"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--json"]).is_err());
        assert!(parse(&["--round-threads"]).is_err());
        assert!(parse(&["--round-threads", "0"]).is_err());
        assert!(parse(&["--round-threads", "turbo"]).is_err());
    }

    #[test]
    fn parses_round_threads_policy() {
        use frs_federation::RoundThreads;
        assert_eq!(parse(&[]).unwrap().round_threads, RoundThreads::Fixed(1));
        let auto = parse(&["table4", "--round-threads", "auto"]).unwrap();
        assert_eq!(auto.round_threads, RoundThreads::Auto);
        assert_eq!(auto.run_options().round_threads, RoundThreads::Auto);
        let fixed = parse(&["--round-threads", "6"]).unwrap();
        assert_eq!(fixed.round_threads, RoundThreads::Fixed(6));
    }

    #[test]
    fn parses_sink_and_thread_flags() {
        let a = parse(&[
            "table4",
            "--threads",
            "3",
            "--json",
            "out/j",
            "--csv",
            "out/c",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(a.positional, vec!["table4"]);
        assert_eq!(a.threads, 3);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out/j")));
        assert_eq!(a.csv.as_deref(), Some(std::path::Path::new("out/c")));
        assert!(a.quiet);
        let opts = a.run_options();
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.scale, 0.25);
    }

    #[test]
    fn parses_cache_and_progress_flags() {
        let a = parse(&[
            "table4",
            "--cache-dir",
            "cache",
            "--progress",
            "run.jsonl",
            "--resume",
        ])
        .unwrap();
        assert_eq!(a.cache_dir.as_deref(), Some(std::path::Path::new("cache")));
        assert_eq!(
            a.progress.as_deref(),
            Some(std::path::Path::new("run.jsonl"))
        );
        assert!(a.resume);
        assert!(!a.no_cache);

        let a = parse(&["table4", "--cache-dir", "cache", "--no-cache"]).unwrap();
        assert!(a.no_cache);
    }

    #[test]
    fn parses_attack_overrides() {
        let a = parse(&["table3", "--attack", "pieck-uea:scale=2.0,top_n=20"]).unwrap();
        let sel = a.attack.clone().unwrap();
        assert_eq!(sel.name(), "pieck-uea");
        assert_eq!(sel.params().get_f32("scale").unwrap(), Some(2.0));
        assert_eq!(sel.params().get_usize("top_n").unwrap(), Some(20));
        assert_eq!(a.run_options().attack, a.attack);

        let a = parse(&["table3", "--attack", "pieck-ipe"]).unwrap();
        assert!(a.attack.unwrap().params().is_empty());

        assert!(parse(&["--attack"]).is_err());
        assert!(parse(&["--attack", "pieck-uea:scale"]).is_err());
        assert!(parse(&["--attack", ":scale=1"]).is_err());
    }

    #[test]
    fn parses_defense_and_dataset_overrides() {
        let a = parse(&["table4", "--defense", "ours:beta=0.5,re2=false"]).unwrap();
        let sel = a.defense.clone().unwrap();
        assert_eq!(sel.name(), "ours");
        assert_eq!(sel.params().get_f32("beta").unwrap(), Some(0.5));
        assert_eq!(sel.params().get_bool("re2").unwrap(), Some(false));
        assert_eq!(a.run_options().defense, a.defense);

        let a = parse(&["table4", "--defense", "median"]).unwrap();
        assert!(a.defense.unwrap().params().is_empty());

        let a = parse(&["table3", "--dataset", "file:data/u.data"]).unwrap();
        assert_eq!(a.dataset, Some(PaperDataset::File("data/u.data".into())));
        assert_eq!(a.run_options().dataset, a.dataset);
        let a = parse(&["table3", "--dataset", "ml1m"]).unwrap();
        assert_eq!(a.dataset, Some(PaperDataset::Ml1m));

        assert!(parse(&["--defense"]).is_err());
        assert!(parse(&["--defense", "ours:beta"]).is_err());
        assert!(parse(&["--dataset"]).is_err());
        assert!(parse(&["--dataset", "ml10m"]).is_err());
        assert!(parse(&["--dataset", "file:"]).is_err());
    }

    #[test]
    fn resume_requires_a_usable_cache() {
        assert!(parse(&["--resume"]).is_err());
        assert!(parse(&["--resume", "--cache-dir", "c", "--no-cache"]).is_err());
        assert!(parse(&["--resume", "--cache-dir", "c"]).is_ok());
        assert!(parse(&["--cache-dir"]).is_err());
        assert!(parse(&["--progress"]).is_err());
    }

    #[test]
    fn checkpoint_every_requires_a_usable_cache() {
        let a = parse(&["table5", "--checkpoint-every", "25", "--cache-dir", "c"]).unwrap();
        assert_eq!(a.checkpoint_every, 25);
        assert!(parse(&["--checkpoint-every", "25"]).is_err());
        assert!(parse(&["--checkpoint-every", "25", "--cache-dir", "c", "--no-cache"]).is_err());
        assert!(parse(&["--checkpoint-every", "0", "--cache-dir", "c"]).is_err());
        assert!(parse(&["--checkpoint-every"]).is_err());
        assert!(parse(&["--checkpoint-every", "x", "--cache-dir", "c"]).is_err());
        assert_eq!(parse(&["table5"]).unwrap().checkpoint_every, 0);
    }

    #[test]
    fn parses_clients_per_round_override() {
        assert!(parse(&[]).unwrap().clients_per_round.is_none());
        let a = parse(&["scale", "--clients-per-round", "512"]).unwrap();
        assert_eq!(a.clients_per_round, Some(ClientsPerRound::Count(512)));
        assert_eq!(a.run_options().clients_per_round, a.clients_per_round);
        let a = parse(&["scale", "--clients-per-round", "25%"]).unwrap();
        assert_eq!(a.clients_per_round, Some(ClientsPerRound::Fraction(0.25)));
        assert!(parse(&["--clients-per-round"]).is_err());
        assert!(parse(&["--clients-per-round", "0"]).is_err());
        assert!(parse(&["--clients-per-round", "150%"]).is_err());
    }

    #[test]
    fn socket_parses() {
        let a = parse(&["serve", "--socket", "run.sock"]).unwrap();
        assert_eq!(a.socket.as_deref(), Some(std::path::Path::new("run.sock")));
        assert!(parse(&["serve", "--socket"]).is_err());
        assert!(parse(&["serve"]).unwrap().socket.is_none());
    }

    #[test]
    fn serve_flags_parse() {
        let a = parse(&[
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--scenario",
            "a=mf",
            "--scenario",
            "b=ncf",
            "--keep-checkpoints",
            "3",
            "--probe-every",
            "25",
        ])
        .unwrap();
        assert_eq!(a.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(a.scenarios, vec!["a=mf".to_string(), "b=ncf".to_string()]);
        assert_eq!(a.keep_checkpoints, 3);
        assert_eq!(a.probe_every, 25);
        // Defaults: newest-only checkpoints, no probes, no scenario specs.
        let d = parse(&["serve"]).unwrap();
        assert_eq!((d.keep_checkpoints, d.probe_every), (1, 0));
        assert!(d.scenarios.is_empty() && d.tcp.is_none());
        assert!(parse(&["serve", "--keep-checkpoints", "0"]).is_err());
        assert!(parse(&["serve", "--probe-every", "0"]).is_err());
        assert!(parse(&["serve", "--tcp"]).is_err());
    }

    #[test]
    fn loadtest_flags_parse() {
        let a = parse(&[
            "loadtest",
            "--tcp",
            "127.0.0.1:7411",
            "--connections",
            "8",
            "--pipeline",
            "16",
            "--requests",
            "50000",
            "--rate",
            "2000",
            "--dist",
            "zipf:1.2",
            "--gate-json",
            "gate.jsonl",
        ])
        .unwrap();
        assert_eq!((a.connections, a.pipeline, a.requests), (8, 16, 50_000));
        assert_eq!(a.rate, Some(2000.0));
        assert_eq!(a.dist, "zipf:1.2");
        assert_eq!(
            a.gate_json.as_deref(),
            Some(std::path::Path::new("gate.jsonl"))
        );
        let d = parse(&["loadtest"]).unwrap();
        assert_eq!((d.connections, d.pipeline, d.requests), (4, 8, 10_000));
        assert_eq!((d.rate, d.dist.as_str()), (None, "uniform"));
        assert!(parse(&["loadtest", "--connections", "0"]).is_err());
        assert!(parse(&["loadtest", "--pipeline", "0"]).is_err());
        assert!(parse(&["loadtest", "--requests", "0"]).is_err());
        assert!(parse(&["loadtest", "--rate", "-1"]).is_err());
    }

    #[test]
    fn dry_run_parses() {
        assert!(
            parse(&["cache", "gc", "--dry-run", "--cache-dir", "c"])
                .unwrap()
                .dry_run
        );
        assert!(!parse(&["cache", "gc"]).unwrap().dry_run);
    }
}
