//! Fig. 5: effect of the malicious ratio p̃ (panels a–b) and of the mined
//! popular-item number N (panels c–d) on both PIECK variants, with and
//! without our defense, on MF-FRS.
//!
//! Usage: `fig5_params [--scale f] [--rounds n] [--seed s] [p|n]`

use frs_attacks::AttackKind;
use frs_defense::DefenseKind;
use frs_experiments::report::pct;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_model::ModelKind;

fn sweep(
    args: &CommonArgs,
    header: &str,
    values: &[(String, f64, usize)], // (label, malicious_ratio, mined_n)
    defense: DefenseKind,
) {
    println!("\n### Fig. 5 — {header} ({})", defense.label());
    let mut table = Table::new(&[header, "IPE ER", "IPE HR", "UEA ER", "UEA HR"]);
    for (label, ratio, n) in values {
        let mut cells = vec![label.clone()];
        for attack in [AttackKind::PieckIpe, AttackKind::PieckUea] {
            let mut cfg =
                paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
            cfg.attack = attack;
            cfg.defense = defense;
            cfg.rounds = args.rounds_or(150);
            cfg.malicious_ratio = *ratio;
            cfg.mined_top_n = *n;
            let out = run(&cfg);
            cells.push(pct(out.er_percent));
            cells.push(pct(out.hr_percent));
        }
        table.row(&cells);
    }
    print!("{}", table.to_markdown());
}

fn main() {
    let args = CommonArgs::parse();
    let which = args.positional.first().map(String::as_str).unwrap_or("both");

    if which == "p" || which == "both" {
        let ratios: Vec<(String, f64, usize)> = [0.01, 0.05, 0.10, 0.15]
            .iter()
            .map(|&p| (format!("{:.0}%", p * 100.0), p, 10))
            .collect();
        sweep(&args, "malicious ratio p̃", &ratios, DefenseKind::NoDefense);
        sweep(&args, "malicious ratio p̃", &ratios, DefenseKind::Ours);
    }
    if which == "n" || which == "both" {
        let ns: Vec<(String, f64, usize)> = [5usize, 10, 50, 250]
            .iter()
            .map(|&n| (n.to_string(), 0.05, n))
            .collect();
        sweep(&args, "mined popular item number N", &ns, DefenseKind::NoDefense);
        sweep(&args, "mined popular item number N", &ns, DefenseKind::Ours);
    }
}
