//! Recommender base models with hand-derived gradients.
//!
//! The paper evaluates two model families (Section III-A):
//!
//! - **MF-FRS** ([`mf`]): `Ψ_MF(u, v) = u ⊙ v`, a *fixed* dot-product
//!   interaction function. The global model is just the item-embedding table.
//! - **DL-FRS** ([`ncf`]): Neural Collaborative Filtering, where
//!   `Ψ_DL(u, v) = sigmoid(hᵀ · φ_L(…φ_1(u ⊕ v)))` with learnable MLP weights
//!   `W_l, b_l` and projection `h` shared through the federation. The MLP
//!   forward/backward pass is hand-derived in [`mlp`] and verified against
//!   finite differences in the test suite.
//!
//! Both are wrapped behind [`GlobalModel`], the single type the federation
//! layer, the attacks, and the defenses program against — this is what makes
//! PIECK "model-agnostic" expressible in code.
//!
//! Losses live in [`loss`]: pointwise BCE (Eq. 2, the default) and pairwise
//! BPR (supplementary Table XI).
// Item and user indices flow through u32 wire ids and usize slabs; a
// silently truncating cast corrupts an embedding row, so truncation must
// be explicit (`try_from`) or locally allowed with a range proof.
#![cfg_attr(not(test), deny(clippy::cast_possible_truncation))]

pub mod config;
pub mod global;
pub mod gradients;
pub mod loss;
pub mod mf;
pub mod mlp;
pub mod ncf;
pub mod store;

pub use config::{ModelConfig, ModelKind};
pub use global::{ForwardCache, GlobalModel};
pub use gradients::{GlobalGradients, MlpGradients};
pub use loss::{bce_logit_delta, bce_loss, bpr_logit_deltas, bpr_loss, LossKind};
pub use mlp::{BatchScorer, Mlp};
pub use store::{EmbeddingStore, UserEmbeddings};
