//! Leave-one-out train/test split.
//!
//! Following He et al. \[17\] (and the paper's Section VII-A1), one interacted
//! item per user is held out as that user's test item; the recommender is
//! evaluated by the rank of the held-out item among all items the user has
//! not interacted with in the *training* data (HR@K).

use rand::Rng;

use crate::dataset::Dataset;

/// A leave-one-out split: the training interactions plus one held-out test
/// item per user.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training interactions (the original data minus each user's test item).
    pub train: Dataset,
    /// `test_item[u]` = the held-out item of user `u`.
    pub test_item: Vec<u32>,
}

/// Holds out one uniformly chosen interacted item per user.
///
/// Panics if any user has fewer than two interactions (the generator's
/// `min_interactions_per_user ≥ 2` guarantees this never fires for synthetic
/// data).
pub fn leave_one_out<R: Rng + ?Sized>(full: &Dataset, rng: &mut R) -> TrainTestSplit {
    let n_users = full.n_users();
    let mut test_item = Vec::with_capacity(n_users);
    let mut train_lists: Vec<Vec<u32>> = Vec::with_capacity(n_users);
    for u in 0..n_users {
        let items = full.items_of(u);
        assert!(
            items.len() >= 2,
            "user {u} has {} interactions; leave-one-out needs ≥ 2",
            items.len()
        );
        let held = items[rng.gen_range(0..items.len())];
        test_item.push(held);
        train_lists.push(items.iter().copied().filter(|&j| j != held).collect());
    }
    TrainTestSplit {
        train: Dataset::from_user_items(full.n_items(), train_lists),
        test_item,
    }
}

impl TrainTestSplit {
    /// True if `item` is eligible to appear in user `u`'s evaluation ranking:
    /// not interacted with during training. The held-out item itself *is*
    /// eligible — that's the whole point of HR@K.
    pub fn eligible_for_ranking(&self, user: usize, item: u32) -> bool {
        !self.train.interacted(user, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DatasetSpec;
    use crate::synth::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn split_tiny(seed: u64) -> (Dataset, TrainTestSplit) {
        let full = generate(&DatasetSpec::tiny(), &mut StdRng::seed_from_u64(seed));
        let split = leave_one_out(&full, &mut StdRng::seed_from_u64(seed + 1000));
        (full, split)
    }

    #[test]
    fn exactly_one_item_held_out_per_user() {
        let (full, split) = split_tiny(1);
        for u in 0..full.n_users() {
            assert_eq!(split.train.items_of(u).len() + 1, full.items_of(u).len());
            assert!(full.interacted(u, split.test_item[u]));
            assert!(!split.train.interacted(u, split.test_item[u]));
        }
    }

    #[test]
    fn train_is_subset_of_full() {
        let (full, split) = split_tiny(2);
        for u in 0..full.n_users() {
            for &j in split.train.items_of(u) {
                assert!(full.interacted(u, j));
            }
        }
    }

    #[test]
    fn test_item_is_eligible_for_ranking() {
        let (_, split) = split_tiny(3);
        for u in 0..split.train.n_users() {
            assert!(split.eligible_for_ranking(u, split.test_item[u]));
        }
    }

    #[test]
    fn split_is_deterministic() {
        let (_, a) = split_tiny(4);
        let (_, b) = split_tiny(4);
        assert_eq!(a.test_item, b.test_item);
    }

    #[test]
    #[should_panic(expected = "leave-one-out")]
    fn single_interaction_user_panics() {
        let d = Dataset::from_user_items(3, vec![vec![0]]);
        leave_one_out(&d, &mut StdRng::seed_from_u64(0));
    }
}
