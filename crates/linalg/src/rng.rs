//! Deterministic seed derivation.
//!
//! The whole simulation must be reproducible from a single `u64` seed, yet
//! clients, the server sampler, dataset generation, and each attack all need
//! independent RNG streams (so adding one more consumer does not perturb the
//! others). [`SeedStream`] derives child seeds with a SplitMix64 step keyed by
//! a label hash — cheap, stateless, and stable across platforms.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A root seed from which labelled, independent child seeds/RNGs are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { root: seed }
    }

    /// The root seed itself.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives a child seed for (`label`, `index`). The same inputs always
    /// yield the same output; different labels yield decorrelated streams.
    pub fn derive(&self, label: &str, index: u64) -> u64 {
        let mut h = self.root ^ 0x9E37_79B9_7F4A_7C15;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        splitmix64(h ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
    }

    /// A ready-to-use `StdRng` for (`label`, `index`).
    pub fn rng(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive(label, index))
    }

    /// A sub-stream rooted at a derived seed, for hierarchical components
    /// (e.g. per-client streams that themselves spawn per-round RNGs).
    pub fn substream(&self, label: &str, index: u64) -> SeedStream {
        SeedStream::new(self.derive(label, index))
    }
}

/// SplitMix64 finalizer — the standard 64-bit mixer.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_seed() {
        let s = SeedStream::new(42);
        assert_eq!(s.derive("client", 7), s.derive("client", 7));
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedStream::new(42);
        assert_ne!(s.derive("client", 0), s.derive("server", 0));
        assert_ne!(s.derive("client", 0), s.derive("client", 1));
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(
            SeedStream::new(1).derive("x", 0),
            SeedStream::new(2).derive("x", 0)
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let s = SeedStream::new(9);
        let a: u64 = s.rng("data", 3).gen();
        let b: u64 = s.rng("data", 3).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn substream_isolated_from_parent() {
        let s = SeedStream::new(9);
        let sub = s.substream("clients", 0);
        assert_ne!(sub.derive("round", 0), s.derive("round", 0));
    }

    #[test]
    fn derive_spreads_bits() {
        // Consecutive indices should not produce consecutive seeds.
        let s = SeedStream::new(0);
        let a = s.derive("l", 0);
        let b = s.derive("l", 1);
        assert!(a.abs_diff(b) > 1_000_000);
    }
}
