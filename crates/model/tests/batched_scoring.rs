//! Batched-forward parity: `scores_for_user` (the [`BatchScorer`]-backed
//! evaluation path) is **bitwise** equal to scoring every item through the
//! per-example `logit` call.
//!
//! The metrics crate ranks whole catalogues off `scores_for_user_into`; a
//! single differing bit would reorder ties and change ER/HR reports. Part of
//! the CI `kernel-parity` job; run locally with
//!
//! ```text
//! cargo test --release -p frs-model --test batched_scoring
//! ```

use frs_model::{GlobalModel, ModelConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_bitwise(model: &GlobalModel, user_emb: &[f32]) -> Result<(), TestCaseError> {
    let batched = model.scores_for_user(user_emb);
    prop_assert_eq!(batched.len(), model.n_items());
    for (j, score) in batched.iter().enumerate() {
        prop_assert_eq!(score.to_bits(), model.logit(user_emb, j as u32).to_bits());
    }
    // The `_into` path must reuse a dirty buffer correctly.
    let mut buf = vec![f32::NAN; 3];
    model.scores_for_user_into(user_emb, &mut buf);
    let a: Vec<u32> = batched.iter().map(|x| x.to_bits()).collect();
    let b: Vec<u32> = buf.iter().map(|x| x.to_bits()).collect();
    prop_assert_eq!(a, b);
    Ok(())
}

proptest! {
    #[test]
    fn ncf_batched_scores_are_bitwise_per_item(
        seed in any::<u64>(),
        user in prop::collection::vec(-2.0f32..2.0, 8),
    ) {
        // ncf(8) → MLP shapes over a 24-wide input with two hidden layers:
        // prefix folding, tail layers, and the projection all exercised.
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GlobalModel::new(&ModelConfig::ncf(8), 13, &mut rng);
        check_bitwise(&model, &user)?;
    }

    #[test]
    fn mf_batched_scores_are_bitwise_per_item(
        seed in any::<u64>(),
        user in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GlobalModel::new(&ModelConfig::mf(4), 9, &mut rng);
        check_bitwise(&model, &user)?;
    }

    #[test]
    fn extreme_user_embeddings_stay_bitwise(
        seed in any::<u64>(),
        scale in 1.0f32..1e6,
    ) {
        // Saturated activations (deep in the leaky region / huge logits)
        // must not diverge between the fused and per-item paths.
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GlobalModel::new(&ModelConfig::ncf(8), 5, &mut rng);
        let user: Vec<f32> = (0..8).map(|i| if i % 2 == 0 { scale } else { -scale }).collect();
        check_bitwise(&model, &user)?;
    }
}
