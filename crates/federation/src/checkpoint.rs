//! Mid-run simulation checkpoints.
//!
//! A [`Simulation`](crate::Simulation) is deterministic given its build
//! inputs: the global model's init RNG, every client's seed, and the server's
//! [`SeedStream`](frs_linalg::SeedStream) all derive from the serialized
//! configuration. A checkpoint therefore captures only the *mutable* state a
//! run accumulates — the trained model, the round counter, the running
//! [`TrainingStats`], and each client's private state (benign user
//! embeddings, attack mining progress, defense regularizer history) — and a
//! restore overlays that state onto a freshly rebuilt simulation. Continuing
//! from a restored checkpoint is byte-identical to never having stopped
//! (`tests/checkpointing.rs` golden- and property-tests this across attack ×
//! defense combinations).
//!
//! Client and regularizer state rides through the opaque
//! [`serde::Value`] tree returned by the `checkpoint_state` /
//! `restore_state` hooks on [`Client`](crate::Client),
//! [`LocalRegularizer`](crate::LocalRegularizer), and
//! [`Aggregator`](crate::Aggregator) — stateless implementations inherit the
//! `Value::Null` defaults and need no code. The envelope is versioned
//! ([`CHECKPOINT_FORMAT_VERSION`]) and its fields use the serde shim's
//! `#[serde(default)]` so the format can grow fields without invalidating
//! checkpoints already on disk.

use frs_model::GlobalModel;
use serde::{Deserialize, Serialize, Value};

use crate::stats::TrainingStats;

/// Version stamp written into every checkpoint. Bump on incompatible layout
/// changes; additive fields should use `#[serde(default)]` instead.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// The complete mutable state of a [`Simulation`](crate::Simulation) at a
/// round boundary. Produced by `Simulation::capture_checkpoint`, consumed by
/// `Simulation::restore_checkpoint` on a freshly built simulation with the
/// same configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationCheckpoint {
    /// [`CHECKPOINT_FORMAT_VERSION`] at write time.
    pub format: u32,
    /// Completed rounds (the next `run_round` call executes round `round`).
    pub round: usize,
    /// The trained global model (item table, and MLP weights for DL-FRS).
    pub model: GlobalModel,
    /// Running totals (wall-clock fields are serde-skipped by design, so a
    /// restored run's *reports* cannot depend on when it was interrupted).
    pub stats: TrainingStats,
    /// Per-client opaque state, indexed by dense client id. `Value::Null`
    /// for stateless clients.
    pub clients: Vec<Value>,
    /// Server-side aggregator state (`Value::Null` for every builtin — all
    /// current defenses aggregate statelessly).
    #[serde(default)]
    pub aggregator: Value,
}

impl SimulationCheckpoint {
    /// Validates the envelope against the population it is about to restore
    /// into. Returns a description of the first mismatch.
    pub fn validate(&self, n_clients: usize) -> Result<(), String> {
        if self.format != CHECKPOINT_FORMAT_VERSION {
            return Err(format!(
                "checkpoint format {} unsupported (expected {})",
                self.format, CHECKPOINT_FORMAT_VERSION
            ));
        }
        if self.clients.len() != n_clients {
            return Err(format!(
                "checkpoint covers {} clients, simulation has {n_clients}",
                self.clients.len()
            ));
        }
        Ok(())
    }
}
