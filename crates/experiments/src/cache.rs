//! Content-addressed suite-level result cache.
//!
//! Every grid cell of an [`crate::suite::ExperimentSuite`] is a pure
//! function of its serializable [`ScenarioConfig`] (same seed ⇒ same
//! outcome), so finished [`ScenarioOutcome`]s can be persisted under a
//! **content hash of the canonicalized config JSON** and replayed on any
//! later run that materializes the same cell — repeated sweeps with
//! overlapping grids (`paper all`, ablations sharing their baselines,
//! interrupted runs restarted with `--resume`) become near-free.
//!
//! Layout: one JSON file per key, `<dir>/<sha256-hex>.json`, each holding a
//! `CacheEntry` (schema version, key echo, the outcome, and the measured
//! wall time — the one field serde skips — preserved as nanoseconds so a
//! warm run reports the cold run's timings). Writes go through a temp file
//! plus rename, so a killed run never leaves a torn entry behind; corrupt
//! or schema-stale entries read as misses and are reclaimed by
//! [`SuiteCache::gc`].
//!
//! The key is [`scenario_key`]: SHA-256 over a schema-version salt line
//! followed by [`serde_json::to_string_canonical`] of the config. The
//! canonical form is insertion-order independent (sorted keys, stable
//! number formatting), so any two structurally equal configs — however
//! they were built — address the same entry, and *any* config field flip
//! addresses a different one.
//!
//! Attack and defense hyper-parameters need no special handling: an
//! `AttackSel`/`DefenseSel` carries them as a canonical params map inside
//! the config JSON, so `pieck-uea:scale=2` and `pieck-uea:scale=3` — like
//! `ours:beta=0.5` and `ours:beta=0.6` — address different entries by
//! construction. File-backed datasets (`--dataset file:PATH`) additionally
//! hash the file's bytes, so editing the dump re-keys its cells.
//!
//! **Runtime-registered factories: declare a fingerprint.** Attacks and
//! defenses live in the config as registry *names* (`AttackSel` /
//! `DefenseSel`), so by itself the key cannot see a factory's closed-over
//! behaviour. Factories may declare an optional behaviour **fingerprint**
//! (`AttackFactory::fingerprint` / `DefenseFactory::fingerprint`), which
//! [`scenario_key`] hashes alongside the config — re-registering a name
//! with different parameters then re-keys every affected cell, as the
//! `paper` ablation suites do. A factory without a fingerprint keeps
//! name-only addressing, where stale hits after a same-name re-register
//! remain possible: use a new name or `paper cache clear`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;
use std::{fs, io};

use serde::{Deserialize, Serialize};

use crate::scenario::{ScenarioCheckpoint, ScenarioConfig, ScenarioOutcome};

/// Bump whenever the meaning of a config field, the outcome layout, or the
/// simulation semantics change: the version salts every key, so old entries
/// simply stop matching (and `gc` reclaims them) instead of serving stale
/// results.
///
/// v2: `FederationConfig::n_threads` became `round_threads` (a
/// [`RoundThreads`](frs_federation::RoundThreads) policy), outcomes record
/// `max_round_threads`, and registry fingerprints joined the hash payload.
///
/// v3: defense hyper-parameters moved off the scenario
/// (`ScenarioConfig::our_defense` is gone) and into the `DefenseSel`'s
/// canonical params payload, so every `--defense name:k=v` override is part
/// of the config JSON the key hashes; file-backed datasets
/// (`DataSource::File`) additionally mix the file's SHA-256 into the
/// payload, so a changed dump re-keys its cells.
///
/// v4: attack-side params parity. `AttackSel` carries a canonical params
/// payload exactly like `DefenseSel` (so `--attack pieck-uea:scale=2`
/// addresses its own cells by construction), the `ConfigPatch` attack knobs
/// (`mined_top_n`, `poison_scale`) route into selection params *only when
/// the attack's schema declares the key* (inert knob flips no longer
/// duplicate cells), and the `table6`/`table9` ablation variants became
/// parameterized builtins (their behaviour is now code versioned by this
/// schema, not a runtime fingerprint).
///
/// v5: mid-run checkpoint sidecars (`<key>.ckpt.json`, see
/// [`SuiteCache::store_checkpoint`]) joined the cache's file namespace, and
/// every client gained `checkpoint_state`/`restore_state` hooks the round
/// loop now drives. Entries predating the hooks were produced by a code
/// path this schema no longer runs, so the bump re-keys them — and a
/// checkpoint sidecar alone can never forge a warm cell: only a completed
/// run writes `<key>.json`.
///
/// v6: million-client rounds. `FederationConfig::users_per_round` became
/// `clients_per_round` (a [`ClientsPerRound`](frs_federation::ClientsPerRound)
/// count *or* population fraction, serialized as a bare number), which
/// renames a key in every canonical config JSON; benign clients materialize
/// lazily from an arena pool and robust rules can run item-sharded. Both are
/// bit-identical to the eager/dense paths, but the config shape changed, so
/// the bump re-keys everything rather than guessing at old entries.
pub const CACHE_SCHEMA_VERSION: u32 = 6;

/// The content-addressed key of one scenario: SHA-256 (hex) over a
/// schema-version salt, the canonical config JSON, and the registered
/// attack/defense behaviour fingerprints (empty when undeclared).
///
/// Execution-only knobs that provably don't change the outcome are
/// normalized out before hashing — today that is
/// `FederationConfig::round_threads` (results are bit-identical at any
/// fan-out width or policy), so runs that differ only in intra-round
/// parallelism share entries.
pub fn scenario_key(cfg: &ScenarioConfig) -> String {
    let mut normalized = cfg.clone();
    normalized.federation.round_threads = frs_federation::RoundThreads::default();
    // Fingerprints are arbitrary strings (factories are told `{cfg:?}` is
    // fine), so they enter the payload as their own SHA-256 rather than
    // verbatim — a fingerprint containing a newline could otherwise forge
    // the payload's line structure and collide two distinct registrations.
    let digest = |fp: Option<String>| fp.map(|s| sha256_hex(s.as_bytes())).unwrap_or_default();
    let payload = format!(
        "frs-scenario-v{CACHE_SCHEMA_VERSION}\n{}\nattack-fingerprint:{}\ndefense-fingerprint:{}\ndataset-file:{}",
        normalized.canonical_json(),
        digest(cfg.attack.fingerprint()),
        digest(cfg.defense.fingerprint()),
        dataset_file_digest(cfg),
    );
    sha256_hex(payload.as_bytes())
}

/// SHA-256 of a file-backed dataset's bytes (empty for synthetic specs),
/// so the cache sees dump edits the config path alone cannot. Unreadable
/// files key under a constant marker — the run itself will fail loudly at
/// load time, so no result is ever stored under it from a good dump.
fn dataset_file_digest(cfg: &ScenarioConfig) -> String {
    match cfg.dataset.file_path() {
        None => String::new(),
        Some(path) => file_digest_memoized(path),
    }
}

type DigestMemo = Mutex<HashMap<String, (u64, Option<std::time::SystemTime>, String)>>;

/// Per-process digest memo keyed by `(len, mtime)`: a `paper all
/// --dataset file:…` keys hundreds of cells against one dump, and hashing
/// megabytes per cell would dominate warm replays. A changed length or
/// mtime re-reads (the re-key path); an unchanged stat reuses the digest.
fn file_digest_memoized(path: &str) -> String {
    static MEMO: OnceLock<DigestMemo> = OnceLock::new();
    let Ok(meta) = fs::metadata(path) else {
        return "unreadable".to_string();
    };
    let stamp = (meta.len(), meta.modified().ok());
    let memo = MEMO.get_or_init(Default::default);
    if let Some((len, mtime, digest)) = memo.lock().expect("digest memo poisoned").get(path) {
        if (*len, *mtime) == stamp {
            return digest.clone();
        }
    }
    let digest = fs::read(path)
        .map(|bytes| sha256_hex(&bytes))
        .unwrap_or_else(|_| "unreadable".to_string());
    memo.lock()
        .expect("digest memo poisoned")
        .insert(path.to_string(), (stamp.0, stamp.1, digest.clone()));
    digest
}

/// One persisted cache file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    /// Schema the entry was written under; mismatches read as misses.
    schema: u32,
    /// Echo of the file's key, guarding against renamed/copied files.
    key: String,
    /// `ScenarioOutcome::mean_round_time` survives here (serde skips it).
    mean_round_time_ns: u64,
    outcome: ScenarioOutcome,
}

/// One persisted mid-run checkpoint sidecar, written next to the entry it
/// will eventually become (`<key>.ckpt.json` beside `<key>.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointFile {
    /// Schema the checkpoint was written under; mismatches read as misses.
    schema: u32,
    /// Echo of the file's key, guarding against renamed/copied files.
    key: String,
    checkpoint: ScenarioCheckpoint,
}

/// Aggregate statistics over a cache directory (`paper cache stats`).
///
/// Only files matching the cache's own naming scheme (`<64-hex>.json`
/// entries, `<64-hex>.ckpt.json` checkpoint sidecars, and
/// `.<64-hex>[.ckpt].tmp.*` temp leftovers) are counted — anything else in
/// the directory is foreign and left strictly alone, so sharing a directory
/// with report sinks cannot lose data to `gc`/`clear`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Entries readable under the current schema.
    pub live: usize,
    /// Entries written under another schema version.
    pub stale: usize,
    /// Unreadable/torn entry files and leftover temp files.
    pub corrupt: usize,
    /// Checkpoint sidecars readable under the current schema (resumable
    /// partially-trained cells). Stale/corrupt sidecars count under
    /// `stale`/`corrupt` like entries.
    pub checkpoints: usize,
    /// Bytes across all checkpoint sidecars (readable or not).
    pub checkpoint_bytes: u64,
    /// Total bytes across all cache-owned files.
    pub total_bytes: u64,
}

impl CacheStats {
    /// All files the stats cover.
    pub fn files(&self) -> usize {
        self.live + self.stale + self.corrupt + self.checkpoints
    }
}

/// What [`SuiteCache::gc`] removed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GcOutcome {
    /// Files deleted (stale schema, corrupt, or — with `clear` — live too).
    pub removed: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
}

/// One file [`SuiteCache::gc`] would remove (`paper cache gc --dry-run`).
#[derive(Debug, Clone, PartialEq)]
pub struct DoomedFile {
    pub path: PathBuf,
    pub bytes: u64,
    /// Why it is collectable (e.g. `"stale schema"`, `"orphaned checkpoint"`).
    pub reason: &'static str,
}

/// A content-addressed store of scenario outcomes, one JSON file per key.
///
/// Safe to share across the suite's worker threads (`&self` everywhere) and
/// across concurrent processes: writes are atomic renames and two writers
/// racing on one key produce identical content by construction.
#[derive(Debug)]
pub struct SuiteCache {
    dir: PathBuf,
    /// Distinguishes temp files of concurrent in-process writers.
    tmp_seq: AtomicU64,
}

impl SuiteCache {
    /// Opens (creating if missing) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    fn checkpoint_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.ckpt.json"))
    }

    /// The `n`-th rotated checkpoint sidecar (`n ≥ 1`; the newest is always
    /// the unnumbered [`SuiteCache::checkpoint_path`]).
    fn rotated_checkpoint_path(&self, key: &str, n: usize) -> PathBuf {
        self.dir.join(format!("{key}.ckpt.{n}.json"))
    }

    /// Atomic write shared by [`SuiteCache::store`] and
    /// [`SuiteCache::store_checkpoint`]: a unique temp file in the cache's
    /// own namespace, then a rename onto `target`.
    fn write_atomic(&self, tmp_tag: &str, target: &Path, text: &str) -> io::Result<()> {
        let tmp = self.dir.join(format!(
            ".{tmp_tag}.tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, text)?;
        match fs::rename(&tmp, target) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Looks up the outcome stored under `key`. Missing, torn, schema-stale,
    /// or mis-keyed entries all read as `None` — a miss is always safe, the
    /// caller just recomputes.
    pub fn load(&self, key: &str) -> Option<ScenarioOutcome> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        if entry.schema != CACHE_SCHEMA_VERSION || entry.key != key {
            return None;
        }
        let mut outcome = entry.outcome;
        outcome.mean_round_time = Duration::from_nanos(entry.mean_round_time_ns);
        Some(outcome)
    }

    /// Persists `outcome` under `key` atomically (temp file + rename).
    pub fn store(&self, key: &str, outcome: &ScenarioOutcome) -> io::Result<()> {
        let entry = CacheEntry {
            schema: CACHE_SCHEMA_VERSION,
            key: key.to_string(),
            mean_round_time_ns: outcome.mean_round_time.as_nanos().min(u64::MAX as u128) as u64,
            outcome: outcome.clone(),
        };
        let text = serde_json::to_string(&entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.write_atomic(key, &self.entry_path(key), &text)
    }

    /// Looks up the mid-run checkpoint stored beside `key`'s entry slot.
    /// Missing, torn, schema-stale, or mis-keyed sidecars all read as
    /// `None` — the cell simply recomputes from round zero. When the newest
    /// sidecar is unreadable but rotated generations exist (`--keep-
    /// checkpoints K`), the freshest readable rotation is returned instead:
    /// a torn newest file costs one checkpoint interval, not the whole run.
    pub fn load_checkpoint(&self, key: &str) -> Option<ScenarioCheckpoint> {
        if let Some(ckpt) = self.read_checkpoint_file(&self.checkpoint_path(key), key) {
            return Some(ckpt);
        }
        for n in 1.. {
            let path = self.rotated_checkpoint_path(key, n);
            if !path.exists() {
                return None;
            }
            if let Some(ckpt) = self.read_checkpoint_file(&path, key) {
                return Some(ckpt);
            }
        }
        None
    }

    fn read_checkpoint_file(&self, path: &Path, key: &str) -> Option<ScenarioCheckpoint> {
        let text = fs::read_to_string(path).ok()?;
        let file: CheckpointFile = serde_json::from_str(&text).ok()?;
        if file.schema != CACHE_SCHEMA_VERSION || file.key != key {
            return None;
        }
        Some(file.checkpoint)
    }

    /// Persists a mid-run checkpoint under `key` atomically. Overwrites any
    /// previous checkpoint for the key — only the latest round matters.
    pub fn store_checkpoint(&self, key: &str, checkpoint: &ScenarioCheckpoint) -> io::Result<()> {
        self.store_checkpoint_rotating(key, checkpoint, 1)
    }

    /// Persists a mid-run checkpoint under `key`, retaining the last `keep`
    /// generations: the previous newest becomes `<key>.ckpt.1.json`, the
    /// one before that `.2`, and so on; anything at index ≥ `keep` is
    /// pruned. Every step is a rename or a tmp+rename — the newest sidecar
    /// is never deleted, only superseded, so a crash at any point leaves a
    /// loadable checkpoint behind. `keep = 1` is the classic single-sidecar
    /// behavior.
    pub fn store_checkpoint_rotating(
        &self,
        key: &str,
        checkpoint: &ScenarioCheckpoint,
        keep: usize,
    ) -> io::Result<()> {
        let keep = keep.max(1);
        let primary = self.checkpoint_path(key);
        if keep > 1 && primary.exists() {
            // Shift older generations up, newest-rotation last → first.
            for n in (1..keep - 1).rev() {
                let from = self.rotated_checkpoint_path(key, n);
                if from.exists() {
                    fs::rename(&from, self.rotated_checkpoint_path(key, n + 1))?;
                }
            }
            fs::rename(&primary, self.rotated_checkpoint_path(key, 1))?;
        }
        // Prune generations past the retention window (rotated indices run
        // 1..keep; this also cleans up after a `keep` shrink between runs).
        for n in keep.. {
            match fs::remove_file(self.rotated_checkpoint_path(key, n)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => break,
                Err(e) => return Err(e),
            }
        }
        let file = CheckpointFile {
            schema: CACHE_SCHEMA_VERSION,
            key: key.to_string(),
            checkpoint: checkpoint.clone(),
        };
        let text = serde_json::to_string(&file)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.write_atomic(&format!("{key}.ckpt"), &primary, &text)
    }

    /// Removes `key`'s checkpoint sidecars — the newest and every rotated
    /// generation (a completed cell no longer needs them). Returns whether
    /// any file was actually deleted.
    pub fn remove_checkpoint(&self, key: &str) -> io::Result<bool> {
        let mut removed = match fs::remove_file(self.checkpoint_path(key)) {
            Ok(()) => true,
            Err(e) if e.kind() == io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        for n in 1.. {
            match fs::remove_file(self.rotated_checkpoint_path(key, n)) {
                Ok(()) => removed = true,
                Err(e) if e.kind() == io::ErrorKind::NotFound => break,
                Err(e) => return Err(e),
            }
        }
        Ok(removed)
    }

    /// Classifies every cache-owned file in the directory (foreign files —
    /// anything not named like an entry, checkpoint, or one of our temp
    /// files — are invisible to stats and untouchable by [`SuiteCache::gc`]).
    pub fn stats(&self) -> io::Result<CacheStats> {
        let mut stats = CacheStats::default();
        for (path, bytes, kind) in self.owned_files()? {
            stats.total_bytes += bytes;
            match kind {
                FileKind::Temp => stats.corrupt += 1,
                FileKind::Entry => match Self::classify(&path) {
                    EntryState::Live => stats.live += 1,
                    EntryState::Stale => stats.stale += 1,
                    EntryState::Corrupt => stats.corrupt += 1,
                },
                FileKind::Checkpoint => {
                    stats.checkpoint_bytes += bytes;
                    match Self::classify_checkpoint(&path) {
                        EntryState::Live => stats.checkpoints += 1,
                        EntryState::Stale => stats.stale += 1,
                        EntryState::Corrupt => stats.corrupt += 1,
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Everything a `gc(everything)` sweep would remove right now, with a
    /// per-file reason — the `paper cache gc --dry-run` listing. Checkpoint
    /// policy: stale/corrupt sidecars go like entries; a readable sidecar is
    /// *orphaned* (and collected) once its cell has a live finished entry,
    /// and *expired* (collected) once older than a week — a resume that
    /// stale is a rerun in disguise. Fresh resumable checkpoints survive.
    pub fn gc_plan(&self, everything: bool) -> io::Result<Vec<DoomedFile>> {
        let mut doomed = Vec::new();
        for (path, bytes, kind) in self.owned_files()? {
            let reason = match kind {
                FileKind::Temp => Some("leftover temp file"),
                FileKind::Entry => {
                    if everything {
                        Some("clear")
                    } else {
                        match Self::classify(&path) {
                            EntryState::Live => None,
                            EntryState::Stale => Some("stale schema"),
                            EntryState::Corrupt => Some("corrupt entry"),
                        }
                    }
                }
                FileKind::Checkpoint => {
                    if everything {
                        Some("clear")
                    } else {
                        match Self::classify_checkpoint(&path) {
                            EntryState::Stale => Some("stale schema"),
                            EntryState::Corrupt => Some("corrupt checkpoint"),
                            EntryState::Live => {
                                let entry = entry_path_of_checkpoint(&path);
                                if Self::classify(&entry) == EntryState::Live {
                                    Some("orphaned checkpoint (cell finished)")
                                } else if file_older_than(&path, CHECKPOINT_EXPIRY_AGE) {
                                    Some("expired checkpoint")
                                } else {
                                    None
                                }
                            }
                        }
                    }
                }
            };
            if let Some(reason) = reason {
                doomed.push(DoomedFile {
                    path,
                    bytes,
                    reason,
                });
            }
        }
        Ok(doomed)
    }

    /// Removes schema-stale and corrupt entries, leftover temp files, and
    /// orphaned/expired checkpoint sidecars (see [`SuiteCache::gc_plan`]);
    /// with `everything`, removes live entries and checkpoints too (`paper
    /// cache clear`). Foreign files sharing the directory are never touched.
    pub fn gc(&self, everything: bool) -> io::Result<GcOutcome> {
        let mut out = GcOutcome::default();
        for file in self.gc_plan(everything)? {
            match fs::remove_file(&file.path) {
                Ok(()) => {
                    out.removed += 1;
                    out.reclaimed_bytes += file.bytes;
                }
                // A concurrent gc/clear (or external cleanup) already
                // removed it — the goal state is reached either way.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Every cache-owned regular file with its size and name-derived kind,
    /// skipping foreign files.
    fn owned_files(&self) -> io::Result<Vec<(PathBuf, u64, FileKind)>> {
        let mut files = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let meta = match entry.metadata() {
                Ok(meta) => meta,
                // A concurrent gc/clear removed it between the directory
                // listing and the stat — it's not ours to count anymore.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let path = entry.path();
            if let (true, Some(kind)) = (meta.is_file(), Self::file_kind(&path)) {
                // Fresh temp files may be a concurrent store() mid-write;
                // they only become "ours to reclaim" once stale.
                if kind == FileKind::Temp && !temp_is_leftover(&path) {
                    continue;
                }
                files.push((path, meta.len(), kind));
            }
        }
        files.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(files)
    }

    /// `Some(Entry)` for `<64-hex>.json`, `Some(Checkpoint)` for
    /// `<64-hex>.ckpt.json` and rotated `<64-hex>.ckpt.<N>.json`
    /// generations, `Some(Temp)` for our `.<64-hex>[.ckpt].tmp.*` writer
    /// leftovers, `None` for foreign files.
    fn file_kind(path: &Path) -> Option<FileKind> {
        let name = path.file_name()?.to_str()?;
        if let Some(stem) = name.strip_suffix(".json") {
            if is_hex_key(stem) {
                return Some(FileKind::Entry);
            }
            if checkpoint_key_of_stem(stem).is_some() {
                return Some(FileKind::Checkpoint);
            }
        }
        // Byte-wise: foreign dotfile names may not have a char boundary at
        // byte 64, so no string slicing here.
        if let Some(rest) = name.strip_prefix('.') {
            let bytes = rest.as_bytes();
            let key_is_hex = bytes.len() > 64
                && bytes[..64]
                    .iter()
                    .all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f'));
            if key_is_hex
                && (bytes[64..].starts_with(b".tmp.") || bytes[64..].starts_with(b".ckpt.tmp."))
            {
                return Some(FileKind::Temp);
            }
        }
        None
    }

    fn classify(path: &Path) -> EntryState {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            return EntryState::Corrupt;
        };
        let Ok(text) = fs::read_to_string(path) else {
            return EntryState::Corrupt;
        };
        match serde_json::from_str::<CacheEntry>(&text) {
            Ok(entry) if entry.schema == CACHE_SCHEMA_VERSION && entry.key == stem => {
                EntryState::Live
            }
            Ok(_) => EntryState::Stale,
            Err(_) => EntryState::Corrupt,
        }
    }

    fn classify_checkpoint(path: &Path) -> EntryState {
        // `<key>.ckpt[.N].json` — the echo check compares against the bare
        // key, for the newest sidecar and rotated generations alike.
        let key = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(checkpoint_key_of_stem);
        let Some(key) = key else {
            return EntryState::Corrupt;
        };
        let Ok(text) = fs::read_to_string(path) else {
            return EntryState::Corrupt;
        };
        match serde_json::from_str::<CheckpointFile>(&text) {
            Ok(file) if file.schema == CACHE_SCHEMA_VERSION && file.key == key => EntryState::Live,
            Ok(_) => EntryState::Stale,
            Err(_) => EntryState::Corrupt,
        }
    }
}

/// `<dir>/<key>.ckpt[.N].json` → `<dir>/<key>.json` (the entry the
/// checkpoint would have become).
fn entry_path_of_checkpoint(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    let key = name
        .strip_suffix(".json")
        .and_then(checkpoint_key_of_stem)
        .unwrap_or(name);
    path.with_file_name(format!("{key}.json"))
}

/// `<64-hex>.ckpt` or rotated `<64-hex>.ckpt.<digits>` → the bare key.
/// `None` when the stem is not a checkpoint sidecar's.
fn checkpoint_key_of_stem(stem: &str) -> Option<&str> {
    let before_rotation = match stem.rsplit_once('.') {
        Some((head, index)) if !index.is_empty() && index.bytes().all(|b| b.is_ascii_digit()) => {
            head
        }
        _ => stem,
    };
    let key = before_rotation.strip_suffix(".ckpt")?;
    is_hex_key(key).then_some(key)
}

/// True for a 64-char lowercase-hex cache key.
fn is_hex_key(s: &str) -> bool {
    s.len() == 64 && s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f'))
}

/// Temp files older than this are leftovers of a dead writer. Younger ones
/// may belong to an in-flight [`SuiteCache::store`] in another process —
/// a store takes milliseconds, so an hour is conservatively safe — and are
/// invisible to [`SuiteCache::stats`]/[`SuiteCache::gc`].
const TEMP_LEFTOVER_AGE: Duration = Duration::from_secs(3600);

/// Whether a temp file is old enough to be a dead writer's leftover.
/// Unreadable or future mtimes read as "maybe in flight": never delete
/// what might still be renamed.
fn temp_is_leftover(path: &Path) -> bool {
    file_older_than(path, TEMP_LEFTOVER_AGE)
}

/// Checkpoints this much older than their last write are expired for `gc`:
/// nobody resumes a week-dead run, and the cells they'd resume into have
/// likely been re-keyed by code changes anyway.
const CHECKPOINT_EXPIRY_AGE: Duration = Duration::from_secs(7 * 24 * 3600);

/// Whether `path`'s mtime is at least `age` in the past. Unreadable or
/// future mtimes read as "young": never delete what might still be in use.
fn file_older_than(path: &Path, age: Duration) -> bool {
    fs::metadata(path)
        .and_then(|meta| meta.modified())
        .ok()
        .and_then(|modified| modified.elapsed().ok())
        .is_some_and(|elapsed| elapsed >= age)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    Entry,
    Checkpoint,
    Temp,
}

#[derive(Debug, PartialEq, Eq)]
enum EntryState {
    Live,
    Stale,
    Corrupt,
}

// --------------------------------------------------------------- SHA-256

/// SHA-256 digest as lowercase hex. Self-contained (FIPS 180-4) because the
/// sanctioned dependency set has no hashing crate; tested against published
/// vectors below.
pub fn sha256_hex(data: &[u8]) -> String {
    let digest = sha256(data);
    let mut out = String::with_capacity(64);
    for byte in digest {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Padding: 0x80, zeros, then the bit length as a big-endian u64.
    let mut message = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in message.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        for (state, add) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *state = state.wrapping_add(add);
        }
    }

    let mut digest = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        digest[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TrendPoint;
    use frs_data::DatasetSpec;
    use frs_model::ModelKind;

    fn temp_cache(tag: &str) -> SuiteCache {
        let dir =
            std::env::temp_dir().join(format!("frs-suite-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SuiteCache::open(dir).unwrap()
    }

    fn sample_outcome() -> ScenarioOutcome {
        ScenarioOutcome {
            er_percent: 93.39,
            hr_percent: 41.5,
            ndcg: 0.2172,
            targets: vec![17, 230],
            mean_round_time: Duration::from_micros(1234),
            total_upload_bytes: 987_654,
            max_round_threads: 3,
            trend: vec![TrendPoint {
                round: 10,
                er: 12.0,
                hr: 30.5,
            }],
        }
    }

    #[test]
    fn sha256_matches_published_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (padding crosses a block boundary).
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn keys_are_stable_and_config_sensitive() {
        let cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 7);
        let key = scenario_key(&cfg);
        assert_eq!(key.len(), 64);
        assert_eq!(key, scenario_key(&cfg.clone()));

        let mut flipped = cfg.clone();
        flipped.rounds += 1;
        assert_ne!(key, scenario_key(&flipped));
        let mut reseeded = cfg.clone();
        reseeded.federation.seed ^= 1;
        assert_ne!(key, scenario_key(&reseeded));

        // Execution-only parallelism is normalized out: same outcome, same
        // entry regardless of intra-round width or policy.
        use frs_federation::RoundThreads;
        let mut threaded = cfg.clone();
        threaded.federation.round_threads = RoundThreads::Fixed(8);
        assert_eq!(key, scenario_key(&threaded));
        let mut auto = cfg;
        auto.federation.round_threads = RoundThreads::Auto;
        assert_eq!(key, scenario_key(&auto));
    }

    #[test]
    fn defense_params_are_part_of_the_key() {
        use frs_defense::DefenseSel;

        let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 7);
        cfg.defense = DefenseSel::named("ours");
        let bare = scenario_key(&cfg);

        cfg.defense = DefenseSel::parse("ours:beta=0.5").unwrap();
        let beta_half = scenario_key(&cfg);
        assert_ne!(bare, beta_half, "an explicit param addresses a new cell");

        cfg.defense = DefenseSel::parse("ours:beta=0.6").unwrap();
        assert_ne!(beta_half, scenario_key(&cfg), "param value flips re-key");

        cfg.defense = DefenseSel::named("ours").with_param("beta", 0.5f32);
        assert_eq!(
            beta_half,
            scenario_key(&cfg),
            "construction path is irrelevant"
        );
    }

    #[test]
    fn attack_params_are_part_of_the_key() {
        use frs_attacks::AttackSel;

        let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 7);
        cfg.attack = AttackSel::named("pieck-uea");
        let bare = scenario_key(&cfg);

        cfg.attack = AttackSel::parse("pieck-uea:scale=2.0").unwrap();
        let scale_two = scenario_key(&cfg);
        assert_ne!(bare, scale_two, "an explicit param addresses a new cell");

        cfg.attack = AttackSel::parse("pieck-uea:scale=3").unwrap();
        assert_ne!(scale_two, scenario_key(&cfg), "param value flips re-key");

        cfg.attack = AttackSel::named("pieck-uea").with_param("scale", 2.0f32);
        assert_eq!(
            scale_two,
            scenario_key(&cfg),
            "construction path is irrelevant"
        );
    }

    #[test]
    fn factory_fingerprints_re_key_same_name_registrations() {
        use frs_attacks::{register_attack, AttackSel, FnAttackFactory};

        let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 7);
        cfg.attack = AttackSel::named("fp-cache-probe");
        // Unregistered and fingerprint-less registrations address by name
        // alone — and identically.
        let unregistered = scenario_key(&cfg);
        register_attack(FnAttackFactory::new("fp-cache-probe", "Probe", |_| {
            Vec::new()
        }));
        assert_eq!(unregistered, scenario_key(&cfg));

        // A fingerprint joins the hash payload…
        register_attack(FnAttackFactory::fingerprinted(
            "fp-cache-probe",
            "Probe",
            "lambda=1.0",
            |_| Vec::new(),
        ));
        let v1 = scenario_key(&cfg);
        assert_ne!(unregistered, v1);

        // …and re-registering the same name with different parameters
        // addresses different entries (the staleness hole this closes).
        register_attack(FnAttackFactory::fingerprinted(
            "fp-cache-probe",
            "Probe",
            "lambda=2.0",
            |_| Vec::new(),
        ));
        let v2 = scenario_key(&cfg);
        assert_ne!(v1, v2);

        // Re-registering the original parameters restores the original key.
        register_attack(FnAttackFactory::fingerprinted(
            "fp-cache-probe",
            "Probe",
            "lambda=1.0",
            |_| Vec::new(),
        ));
        assert_eq!(v1, scenario_key(&cfg));
    }

    #[test]
    fn newline_fingerprints_cannot_forge_the_payload() {
        use frs_attacks::{register_attack, AttackSel, FnAttackFactory};
        use frs_defense::{register_defense, DefenseSel, FnDefenseFactory};
        use frs_federation::SumAggregator;

        // Attack fingerprint embedding the defense label line vs. the same
        // strings split across the two real fingerprints: the payloads
        // would be byte-identical if fingerprints entered verbatim.
        let mut forged = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 7);
        forged.attack = AttackSel::named("forge-attack");
        forged.defense = DefenseSel::named("forge-defense");
        register_attack(FnAttackFactory::fingerprinted(
            "forge-attack",
            "Forge",
            "x\ndefense-fingerprint:y",
            |_| Vec::new(),
        ));
        register_defense(FnDefenseFactory::new("forge-defense", "Forge", |_| {
            Box::new(SumAggregator)
        }));
        let key_forged = scenario_key(&forged);

        register_attack(FnAttackFactory::fingerprinted(
            "forge-attack",
            "Forge",
            "x",
            |_| Vec::new(),
        ));
        register_defense(FnDefenseFactory::fingerprinted(
            "forge-defense",
            "Forge",
            "y",
            |_| Box::new(SumAggregator),
        ));
        assert_ne!(key_forged, scenario_key(&forged));
    }

    #[test]
    fn defense_fingerprints_also_re_key() {
        use frs_defense::{register_defense, DefenseSel, FnDefenseFactory};
        use frs_federation::SumAggregator;

        let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 7);
        cfg.defense = DefenseSel::named("fp-cache-defense");
        let unfingerprinted = scenario_key(&cfg);
        register_defense(FnDefenseFactory::fingerprinted(
            "fp-cache-defense",
            "Probe",
            "tau=0.1",
            |_| Box::new(SumAggregator),
        ));
        assert_ne!(unfingerprinted, scenario_key(&cfg));
    }

    #[test]
    fn store_load_round_trips_including_round_time() {
        let cache = temp_cache("roundtrip");
        let outcome = sample_outcome();
        let key = "a".repeat(64);
        assert!(cache.load(&key).is_none());
        cache.store(&key, &outcome).unwrap();
        let back = cache.load(&key).unwrap();
        assert_eq!(back.er_percent, outcome.er_percent);
        assert_eq!(back.hr_percent, outcome.hr_percent);
        assert_eq!(back.ndcg, outcome.ndcg);
        assert_eq!(back.targets, outcome.targets);
        assert_eq!(back.total_upload_bytes, outcome.total_upload_bytes);
        assert_eq!(back.trend.len(), 1);
        // The serde-skipped wall time survives via the ns side channel.
        assert_eq!(back.mean_round_time, outcome.mean_round_time);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn torn_stale_and_miskeyed_entries_read_as_misses() {
        let cache = temp_cache("misses");
        let key = "b".repeat(64);
        fs::write(cache.entry_path(&key), "{ torn").unwrap();
        assert!(cache.load(&key).is_none());

        // A valid entry stored under the wrong file name misses too.
        cache.store(&key, &sample_outcome()).unwrap();
        let other = "c".repeat(64);
        fs::copy(cache.entry_path(&key), cache.entry_path(&other)).unwrap();
        assert!(cache.load(&other).is_none());
        assert!(cache.load(&key).is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_and_gc_classify_entries() {
        let cache = temp_cache("gc");
        let live = "d".repeat(64);
        cache.store(&live, &sample_outcome()).unwrap();
        fs::write(cache.dir().join(format!("{}.json", "e".repeat(64))), "junk").unwrap();
        // A stale-schema entry: rewrite a valid one with schema 0.
        let stale_key = "f".repeat(64);
        cache.store(&stale_key, &sample_outcome()).unwrap();
        let text = fs::read_to_string(cache.entry_path(&stale_key)).unwrap();
        fs::write(
            cache.entry_path(&stale_key),
            text.replace(
                &format!("\"schema\":{CACHE_SCHEMA_VERSION}"),
                "\"schema\":0",
            ),
        )
        .unwrap();

        let stats = cache.stats().unwrap();
        assert_eq!((stats.live, stats.stale, stats.corrupt), (1, 1, 1));
        assert!(stats.total_bytes > 0);

        let gc = cache.gc(false).unwrap();
        assert_eq!(gc.removed, 2);
        let stats = cache.stats().unwrap();
        assert_eq!((stats.live, stats.stale, stats.corrupt), (1, 0, 0));

        let cleared = cache.gc(true).unwrap();
        assert_eq!(cleared.removed, 1);
        assert_eq!(cache.stats().unwrap().files(), 0);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn foreign_files_are_invisible_and_survive_clear() {
        // A cache dir shared with report sinks (`--cache-dir out --json out`)
        // must never lose the reports to gc/clear.
        let cache = temp_cache("foreign");
        cache.store(&"a".repeat(64), &sample_outcome()).unwrap();
        for foreign in ["table4.json", "table4.csv", "notes.txt", "UPPER.json"] {
            fs::write(cache.dir().join(foreign), "user data").unwrap();
        }
        // Including a multibyte dotfile long enough that byte 64 is not a
        // char boundary — stats/gc must skip it, not panic.
        let multibyte = format!(".{}", "日".repeat(24));
        fs::write(cache.dir().join(&multibyte), "user data").unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!((stats.live, stats.stale, stats.corrupt), (1, 0, 0));

        let cleared = cache.gc(true).unwrap();
        assert_eq!(cleared.removed, 1, "only the cache's own entry goes");
        for foreign in ["table4.json", "table4.csv", "notes.txt", "UPPER.json"] {
            assert!(cache.dir().join(foreign).exists(), "{foreign} must survive");
        }
        assert!(cache.dir().join(&multibyte).exists());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn orphaned_temp_files_count_as_leftovers_and_are_collected() {
        // A run killed between write and rename leaves `.<key>.tmp.<pid>.<n>`.
        let cache = temp_cache("orphan");
        let tmp_path = cache.dir().join(format!(".{}.tmp.999.0", "b".repeat(64)));
        fs::write(&tmp_path, "{\"half\":").unwrap();

        // Fresh: could be a concurrent writer mid-store — invisible, kept.
        let stats = cache.stats().unwrap();
        assert_eq!((stats.live, stats.stale, stats.corrupt), (0, 0, 0));
        assert_eq!(cache.gc(true).unwrap().removed, 0);
        assert!(tmp_path.exists(), "in-flight temp must survive gc");

        // Aged past the leftover threshold: counted and collected.
        let old = std::time::SystemTime::now() - Duration::from_secs(2 * 3600);
        fs::OpenOptions::new()
            .write(true)
            .open(&tmp_path)
            .unwrap()
            .set_modified(old)
            .unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!((stats.live, stats.stale, stats.corrupt), (0, 0, 1));
        assert_eq!(cache.gc(false).unwrap().removed, 1);
        assert!(!tmp_path.exists());
        let _ = fs::remove_dir_all(cache.dir());
    }

    fn sample_checkpoint(round: usize) -> ScenarioCheckpoint {
        use frs_model::ModelConfig;
        let mut rng = frs_linalg::SeedStream::new(7).rng("ckpt-test", 0);
        ScenarioCheckpoint {
            trend: vec![TrendPoint {
                round: 5,
                er: 1.5,
                hr: 2.5,
            }],
            sim: frs_federation::SimulationCheckpoint {
                format: frs_federation::CHECKPOINT_FORMAT_VERSION,
                round,
                model: frs_model::GlobalModel::new(&ModelConfig::mf(4), 8, &mut rng),
                stats: Default::default(),
                clients: vec![serde::Value::Null; 3],
                aggregator: serde::Value::Null,
            },
        }
    }

    #[test]
    fn checkpoint_store_load_remove_round_trips() {
        let cache = temp_cache("ckpt-roundtrip");
        let key = "a".repeat(64);
        assert!(cache.load_checkpoint(&key).is_none());
        cache.store_checkpoint(&key, &sample_checkpoint(5)).unwrap();
        let back = cache.load_checkpoint(&key).unwrap();
        assert_eq!(back.sim.round, 5);
        assert_eq!(back.trend.len(), 1);
        assert_eq!(back.trend[0].er, 1.5);
        // A checkpoint sidecar must never read as a finished cell.
        assert!(cache.load(&key).is_none());

        // Overwrites keep only the latest round.
        cache.store_checkpoint(&key, &sample_checkpoint(9)).unwrap();
        assert_eq!(cache.load_checkpoint(&key).unwrap().sim.round, 9);

        assert!(cache.remove_checkpoint(&key).unwrap());
        assert!(!cache.remove_checkpoint(&key).unwrap(), "already gone");
        assert!(cache.load_checkpoint(&key).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn rotation_retains_the_last_k_generations() {
        let cache = temp_cache("ckpt-rotate");
        let key = "a".repeat(64);
        for round in 1..=5 {
            cache
                .store_checkpoint_rotating(&key, &sample_checkpoint(round), 3)
                .unwrap();
        }
        // keep=3: the newest plus two rotated generations, no more.
        assert_eq!(cache.load_checkpoint(&key).unwrap().sim.round, 5);
        assert!(cache.rotated_checkpoint_path(&key, 1).exists());
        assert!(cache.rotated_checkpoint_path(&key, 2).exists());
        assert!(!cache.rotated_checkpoint_path(&key, 3).exists());

        // A torn newest sidecar falls back to the freshest rotation — one
        // interval lost, not the whole run.
        fs::write(cache.checkpoint_path(&key), "{ torn").unwrap();
        assert_eq!(cache.load_checkpoint(&key).unwrap().sim.round, 4);

        // remove takes every generation.
        assert!(cache.remove_checkpoint(&key).unwrap());
        assert!(cache.load_checkpoint(&key).is_none());
        assert!(!cache.rotated_checkpoint_path(&key, 1).exists());
        assert!(!cache.rotated_checkpoint_path(&key, 2).exists());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn shrinking_keep_prunes_old_generations() {
        let cache = temp_cache("ckpt-shrink");
        let key = "b".repeat(64);
        for round in 1..=4 {
            cache
                .store_checkpoint_rotating(&key, &sample_checkpoint(round), 4)
                .unwrap();
        }
        assert!(cache.rotated_checkpoint_path(&key, 3).exists());
        // Back to the default single sidecar: rotations are pruned.
        cache
            .store_checkpoint_rotating(&key, &sample_checkpoint(5), 1)
            .unwrap();
        assert_eq!(cache.load_checkpoint(&key).unwrap().sim.round, 5);
        for n in 1..=4 {
            assert!(!cache.rotated_checkpoint_path(&key, n).exists(), "gen {n}");
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_and_gc_understand_rotated_sidecars() {
        let cache = temp_cache("ckpt-rotate-gc");
        let key = "c".repeat(64);
        for round in 1..=3 {
            cache
                .store_checkpoint_rotating(&key, &sample_checkpoint(round), 3)
                .unwrap();
        }
        let stats = cache.stats().unwrap();
        assert_eq!(stats.checkpoints, 3, "rotations count as checkpoints");
        // All resumable: gc leaves every generation.
        assert_eq!(cache.gc(false).unwrap().removed, 0);

        // Once the cell finishes, all generations are orphans.
        cache.store(&key, &sample_outcome()).unwrap();
        let plan = cache.gc_plan(false).unwrap();
        assert_eq!(plan.len(), 3);
        assert!(plan
            .iter()
            .all(|d| d.reason == "orphaned checkpoint (cell finished)"));
        assert_eq!(cache.gc(false).unwrap().removed, 3);
        assert!(cache.load_checkpoint(&key).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn torn_or_miskeyed_checkpoints_read_as_misses() {
        let cache = temp_cache("ckpt-misses");
        let key = "b".repeat(64);
        fs::write(cache.checkpoint_path(&key), "{ torn").unwrap();
        assert!(cache.load_checkpoint(&key).is_none());

        // A valid sidecar copied under another key's name misses too.
        cache.store_checkpoint(&key, &sample_checkpoint(3)).unwrap();
        let other = "c".repeat(64);
        fs::copy(cache.checkpoint_path(&key), cache.checkpoint_path(&other)).unwrap();
        assert!(cache.load_checkpoint(&other).is_none());
        assert!(cache.load_checkpoint(&key).is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_report_checkpoints_beside_entries() {
        let cache = temp_cache("ckpt-stats");
        cache.store(&"d".repeat(64), &sample_outcome()).unwrap();
        cache
            .store_checkpoint(&"e".repeat(64), &sample_checkpoint(2))
            .unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!((stats.live, stats.checkpoints), (1, 1));
        assert_eq!(stats.files(), 2);
        assert!(stats.checkpoint_bytes > 0);
        assert!(stats.total_bytes > stats.checkpoint_bytes);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_keeps_fresh_resumable_checkpoints() {
        // A checkpoint whose cell has no finished entry is a resumable run
        // in flight — gc must leave it; only clear takes it.
        let cache = temp_cache("ckpt-keep");
        let key = "d".repeat(64);
        cache.store_checkpoint(&key, &sample_checkpoint(4)).unwrap();
        assert_eq!(cache.gc(false).unwrap().removed, 0);
        assert!(cache.load_checkpoint(&key).is_some());
        assert_eq!(cache.gc(true).unwrap().removed, 1);
        assert!(cache.load_checkpoint(&key).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_collects_orphaned_corrupt_and_expired_checkpoints() {
        let cache = temp_cache("ckpt-gc");
        // Orphaned: the cell finished (live entry), the sidecar lingers.
        let done = "d".repeat(64);
        cache.store(&done, &sample_outcome()).unwrap();
        cache
            .store_checkpoint(&done, &sample_checkpoint(6))
            .unwrap();
        // Corrupt sidecar.
        let torn = "e".repeat(64);
        fs::write(cache.checkpoint_path(&torn), "{ torn").unwrap();
        // Expired: resumable, but a week stale.
        let old_key = "f".repeat(64);
        cache
            .store_checkpoint(&old_key, &sample_checkpoint(1))
            .unwrap();
        let old = std::time::SystemTime::now() - CHECKPOINT_EXPIRY_AGE - Duration::from_secs(60);
        fs::OpenOptions::new()
            .write(true)
            .open(cache.checkpoint_path(&old_key))
            .unwrap()
            .set_modified(old)
            .unwrap();

        let plan = cache.gc_plan(false).unwrap();
        let mut reasons: Vec<&str> = plan.iter().map(|d| d.reason).collect();
        reasons.sort_unstable();
        assert_eq!(
            reasons,
            [
                "corrupt checkpoint",
                "expired checkpoint",
                "orphaned checkpoint (cell finished)",
            ]
        );

        let gc = cache.gc(false).unwrap();
        assert_eq!(gc.removed, 3);
        assert!(gc.reclaimed_bytes > 0);
        let stats = cache.stats().unwrap();
        assert_eq!((stats.live, stats.checkpoints, stats.corrupt), (1, 0, 0));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_plan_is_a_dry_run() {
        let cache = temp_cache("ckpt-plan");
        let key = "a".repeat(64);
        cache.store(&key, &sample_outcome()).unwrap();
        cache.store_checkpoint(&key, &sample_checkpoint(2)).unwrap();
        let plan = cache.gc_plan(true).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|d| d.reason == "clear"));
        // Nothing was touched.
        assert!(cache.load(&key).is_some());
        assert!(cache.load_checkpoint(&key).is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn checkpoint_temp_files_are_recognized_leftovers() {
        let cache = temp_cache("ckpt-tmp");
        let tmp = cache
            .dir()
            .join(format!(".{}.ckpt.tmp.999.0", "b".repeat(64)));
        fs::write(&tmp, "{\"half\":").unwrap();
        // Fresh: invisible (could be a concurrent writer).
        assert_eq!(cache.gc(true).unwrap().removed, 0);
        assert!(tmp.exists());
        let old = std::time::SystemTime::now() - Duration::from_secs(2 * 3600);
        fs::OpenOptions::new()
            .write(true)
            .open(&tmp)
            .unwrap()
            .set_modified(old)
            .unwrap();
        let plan = cache.gc_plan(false).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].reason, "leftover temp file");
        assert_eq!(cache.gc(false).unwrap().removed, 1);
        assert!(!tmp.exists());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn concurrent_gc_runs_both_succeed() {
        // Two clears race on the same entries: each lists every file, so
        // the loser of each per-file removal sees NotFound — which must
        // read as "goal reached", not as an error aborting the sweep.
        let cache = temp_cache("gc-race");
        for i in 0..32 {
            cache
                .store(&format!("{i:02x}").repeat(32), &sample_outcome())
                .unwrap();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2).map(|_| scope.spawn(|| cache.gc(true))).collect();
            for handle in handles {
                handle.join().unwrap().expect("racing gc must not error");
            }
        });
        assert_eq!(cache.stats().unwrap().files(), 0);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
