//! Numerically stable activation functions shared by both base models.
//!
//! The BCE loss of Eq. (2) is computed in logit space: `log σ(x)` and
//! `log(1 − σ(x)) = log σ(−x)` go through [`log_sigmoid`], which never
//! produces `-inf` for the magnitudes seen during training.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`, stable for large `|x|`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `log σ(x)` computed without forming σ(x) first:
/// `log σ(x) = -softplus(-x) = -(log(1 + e^{-x}))` with the standard
/// max-trick for stability.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    // log σ(x) = min(x, 0) - log(1 + e^{-|x|})
    x.min(0.0) - (-x.abs()).exp().ln_1p()
}

/// Rectified linear unit, the hidden activation of the DL-FRS MLP (Eq. 1).
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU evaluated at the *pre-activation* value.
#[inline]
pub fn relu_grad(pre_activation: f32) -> f32 {
    if pre_activation > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Applies ReLU in place to a whole layer output.
#[inline]
pub fn relu_inplace(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = relu(*x);
    }
}

/// Leaky ReLU with slope `leak` on the negative side.
///
/// The DL-FRS MLP uses this with a small leak instead of a hard ReLU: at the
/// tiny widths of a simulated FRS (2–8 units), hard ReLU layers can die
/// completely at init — every unit negative for every input — which freezes
/// training and would silently corrupt unattended experiment sweeps. A 0.01
/// leak preserves Eq. (1)'s shape while guaranteeing gradient flow (see
/// DESIGN.md §3).
#[inline]
pub fn leaky_relu(x: f32, leak: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        leak * x
    }
}

/// Derivative of [`leaky_relu`] at the pre-activation value.
#[inline]
pub fn leaky_relu_grad(pre_activation: f32, leak: f32) -> f32 {
    if pre_activation > 0.0 {
        1.0
    } else {
        leak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[0.1f32, 1.0, 3.5, 10.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_saturates_without_nan() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0).abs() < 1e-6);
        assert!(sigmoid(1e4).is_finite());
        assert!(sigmoid(-1e4).is_finite());
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let naive = sigmoid(x).ln();
            assert!((log_sigmoid(x) - naive).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn log_sigmoid_finite_at_extremes() {
        assert!(log_sigmoid(-1000.0).is_finite());
        assert!((log_sigmoid(1000.0)).abs() < 1e-6);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-0.1), 0.0);
        assert_eq!(relu_grad(0.1), 1.0);
    }
}
