//! The long-lived query daemon: a Unix-socket listener answering the wire
//! protocol against whatever [`SnapshotCell`] epoch is current.
//!
//! Concurrency model: the daemon holds one [`CoreLease`] from the
//! invocation's shared `CoreBudget` — the same ledger the trainer leases
//! from — so query handling and training split the `--threads` grant
//! fairly instead of oversubscribing the machine. Each connection is
//! served by its own thread, but admission is gated to the lease's
//! current width; excess connections queue at the gate (the socket's
//! accept backlog holds the rest).
//!
//! Shutdown is drain-based: [`ServerHandle::shutdown`] stops the accept
//! loop, pokes the listener awake, and waits for every in-flight
//! connection to answer its buffered requests and exit — no query is ever
//! cut off mid-response. Connection reads poll with a short timeout so an
//! idle client cannot hold the drain hostage.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use frs_federation::CoreLease;

use crate::snapshot::SnapshotCell;
use crate::wire::{ErrorResponse, Request, StatusResponse, TopKResponse, DEFAULT_K};

/// How often a blocked connection read wakes up to check the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Answers one request line against `snapshot_cell`'s current epoch,
/// returning the JSON response line (no trailing newline). Counts answered
/// top-K queries into `queries`. Pure aside from the counter — the unit
/// under test for protocol behaviour.
pub fn respond_line(line: &str, cell: &SnapshotCell, queries: &AtomicU64) -> String {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return serde_json::to_string(&ErrorResponse {
                error: format!("bad request: {e}"),
            })
            .expect("error response serializes")
        }
    };
    let snapshot = cell.latest();
    match request.user {
        None => serde_json::to_string(&StatusResponse {
            round: snapshot.round(),
            training_done: snapshot.training_done(),
            n_users: snapshot.n_users(),
            n_items: snapshot.n_items(),
            queries_served: queries.load(Ordering::SeqCst),
        })
        .expect("status serializes"),
        Some(user) => {
            let k = request.k.unwrap_or(DEFAULT_K);
            match snapshot.top_k(user, k) {
                Ok(items) => {
                    queries.fetch_add(1, Ordering::SeqCst);
                    serde_json::to_string(&TopKResponse {
                        user,
                        k,
                        round: snapshot.round(),
                        training_done: snapshot.training_done(),
                        items,
                    })
                    .expect("top-k serializes")
                }
                Err(error) => serde_json::to_string(&ErrorResponse { error })
                    .expect("error response serializes"),
            }
        }
    }
}

/// Counting gate bounding concurrent connection handlers and supporting a
/// full drain (shutdown waits for active == 0).
#[derive(Debug, Default)]
struct Gate {
    active: Mutex<usize>,
    changed: Condvar,
}

impl Gate {
    fn enter(&self, cap: usize) {
        let mut active = self.active.lock().expect("gate poisoned");
        while *active >= cap.max(1) {
            active = self.changed.wait(active).expect("gate poisoned");
        }
        *active += 1;
    }

    fn exit(&self) {
        *self.active.lock().expect("gate poisoned") -= 1;
        self.changed.notify_all();
    }

    fn drain(&self) {
        let mut active = self.active.lock().expect("gate poisoned");
        while *active > 0 {
            active = self.changed.wait(active).expect("gate poisoned");
        }
    }
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the accept thread running for the
/// process lifetime; call `shutdown` for a clean drain.
#[derive(Debug)]
pub struct ServerHandle {
    socket: PathBuf,
    stop: Arc<AtomicBool>,
    queries: Arc<AtomicU64>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path the daemon listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Top-K queries answered so far.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains every in-flight connection, removes the
    /// socket file, and returns the total query count.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() awake; a failure means the listener
        // is already gone, which is the goal state.
        let _ = UnixStream::connect(&self.socket);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = std::fs::remove_file(&self.socket);
        self.queries.load(Ordering::SeqCst)
    }
}

/// Binds `socket` and spawns the accept loop. An existing socket file is
/// reclaimed only if nothing answers on it — a live daemon is an
/// `AddrInUse` error, a leftover from a dead one is silently replaced.
pub fn spawn(
    socket: impl Into<PathBuf>,
    cell: Arc<SnapshotCell>,
    lease: CoreLease,
) -> io::Result<ServerHandle> {
    let socket = socket.into();
    if socket.exists() {
        if UnixStream::connect(&socket).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("{} is already being served", socket.display()),
            ));
        }
        std::fs::remove_file(&socket)?;
    }
    let listener = UnixListener::bind(&socket)?;
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));

    let accept = {
        let stop = Arc::clone(&stop);
        let queries = Arc::clone(&queries);
        std::thread::spawn(move || {
            accept_loop(&listener, &cell, &lease, &stop, &queries);
        })
    };

    Ok(ServerHandle {
        socket,
        stop,
        queries: Arc::clone(&queries),
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: &UnixListener,
    cell: &Arc<SnapshotCell>,
    lease: &CoreLease,
    stop: &Arc<AtomicBool>,
    queries: &Arc<AtomicU64>,
) {
    let gate = Arc::new(Gate::default());
    // Handler threads detach; the gate's drain is the join.
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Admission control: at most `width` concurrent handlers, where
        // width tracks the lease's live fair share (it grows when the
        // trainer finishes and drops its lease).
        gate.enter(lease.width());
        let gate = Arc::clone(&gate);
        let cell = Arc::clone(cell);
        let stop = Arc::clone(stop);
        let queries = Arc::clone(queries);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &cell, &stop, &queries);
            gate.exit();
        });
    }
    gate.drain();
}

/// Serves one connection: newline-framed requests in, one response line
/// each, until EOF or shutdown. Reads poll so a silent client can't stall
/// the drain; buffered complete lines are always answered before exit.
fn handle_connection(
    mut stream: UnixStream,
    cell: &SnapshotCell,
    stop: &AtomicBool,
    queries: &AtomicU64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Answer every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let response = respond_line(line, cell, queries);
            stream.write_all(response.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        if stop.load(Ordering::SeqCst) {
            return Ok(()); // drained: all buffered requests answered
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}
