//! The lint engine: workspace discovery, per-file rule dispatch, waiver
//! application, and reporting.
//!
//! Discovery walks the repo for `Cargo.toml` manifests (skipping `target/`,
//! `vendor/`, and hidden directories), reads each `[package] name`, and
//! lints the package's `src/`, `tests/`, `benches/`, and `examples/`
//! trees. Which rules run on which package comes from the committed
//! `lint.toml` ([`LintConfig`]); violations inside `#[cfg(test)]` regions
//! or non-`src` targets are dropped for rules with `skip_tests` (the
//! default). Output order is deterministic: files sorted by path,
//! violations by (line, column, rule).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::config::LintConfig;
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{builtin_rules, Rule, INVALID_WAIVER};
use crate::waiver::{self, Waiver};

/// One reported violation. `waived = true` entries are kept in the report
/// (they are part of the audit trail) but do not fail the run.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Root-relative path, `/`-separated.
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub rule: String,
    pub message: String,
    pub waived: bool,
}

/// The outcome of a lint run.
#[derive(Debug, Serialize)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    pub unwaived: usize,
    pub waived: usize,
}

impl LintReport {
    /// No unwaived violations — the exit-0 condition.
    pub fn is_clean(&self) -> bool {
        self.unwaived == 0
    }

    /// `path:line:col: rule: message` lines plus a summary, the human
    /// format. Waived entries are listed only with `verbose`.
    pub fn human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for v in &self.violations {
            if v.waived && !verbose {
                continue;
            }
            let tag = if v.waived { " (waived)" } else { "" };
            out.push_str(&format!(
                "{}:{}:{}: {}{tag}: {}\n",
                v.file, v.line, v.col, v.rule, v.message
            ));
        }
        out.push_str(&format!(
            "frs-lint: {} violation{} ({} waived) across {} files\n",
            self.unwaived,
            if self.unwaived == 1 { "" } else { "s" },
            self.waived,
            self.files_scanned
        ));
        out
    }

    /// The machine format (stable key order via canonical serialization).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| {
            // The report is plain structs of strings and numbers; if
            // serialization ever fails, say so in valid JSON rather than
            // panicking inside a linter.
            "{\"error\":\"report serialization failed\"}".to_string()
        })
    }
}

/// One discovered workspace package.
#[derive(Debug)]
pub struct Package {
    pub name: String,
    /// Directory containing its `Cargo.toml`, root-relative.
    pub dir: PathBuf,
}

/// Finds workspace packages under `root`: every directory with a
/// `Cargo.toml` declaring `[package] name`, except `target/`, `vendor/`
/// (offline shims for external crates — not this workspace's code), and
/// dot-directories. Deterministic order (sorted by path).
pub fn discover_packages(root: &Path) -> Result<Vec<Package>, String> {
    let mut manifests = Vec::new();
    find_manifests(root, Path::new(""), &mut manifests)?;
    manifests.sort();
    let mut packages = Vec::new();
    for rel in manifests {
        let path = root.join(&rel);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        if let Some(name) = package_name(&text) {
            packages.push(Package {
                name,
                dir: rel.parent().unwrap_or(Path::new("")).to_path_buf(),
            });
        }
    }
    Ok(packages)
}

fn find_manifests(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let dir = root.join(rel);
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let sub = rel.join(name.as_ref());
        let file_type = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        if file_type.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            find_manifests(root, &sub, out)?;
        } else if name == "Cargo.toml" {
            out.push(sub);
        }
    }
    Ok(())
}

/// Pulls `name = "…"` out of a manifest's `[package]` section with a line
/// scan — full TOML is not needed for the four manifests shapes we own.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']').trim() == "package";
            continue;
        }
        if in_package {
            if let Some(value) = line.strip_prefix("name") {
                let value = value.trim_start();
                if let Some(value) = value.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// `.rs` files under the package's lintable trees, sorted. The bool marks
/// test-like targets (`tests/`, `benches/`, `examples/` — everything but
/// `src/`).
fn package_sources(root: &Path, pkg: &Package) -> Result<Vec<(PathBuf, bool)>, String> {
    let mut files = Vec::new();
    for (tree, test_like) in [
        ("src", false),
        ("tests", true),
        ("benches", true),
        ("examples", true),
    ] {
        let dir = pkg.dir.join(tree);
        if root.join(&dir).is_dir() {
            collect_rs(root, &dir, test_like, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(
    root: &Path,
    rel: &Path,
    test_like: bool,
    out: &mut Vec<(PathBuf, bool)>,
) -> Result<(), String> {
    let dir = root.join(rel);
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let sub = rel.join(name.as_ref());
        let file_type = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        if file_type.is_dir() {
            collect_rs(root, &sub, test_like, out)?;
        } else if name.ends_with(".rs") {
            out.push((sub, test_like));
        }
    }
    Ok(())
}

/// Line ranges covered by `#[cfg(test)]` items (typically `mod tests`):
/// the attribute through its item's closing brace.
pub fn test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct("#")
            && tokens[i + 1].is_punct("[")
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct("(")
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(")")
            && tokens[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the item body: the first `{` at bracket depth 0 after the
        // attribute (skipping any further attributes), or a `;` for
        // body-less items.
        let mut j = i + 7;
        let mut depth = 0i64;
        let mut end_line = start_line;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    "{" if depth == 0 => {
                        // Match braces to the item's close.
                        let mut braces = 1i64;
                        let mut k = j + 1;
                        while k < tokens.len() && braces > 0 {
                            if tokens[k].is_punct("{") {
                                braces += 1;
                            } else if tokens[k].is_punct("}") {
                                braces -= 1;
                            }
                            k += 1;
                        }
                        end_line = tokens[k.saturating_sub(1)].line;
                        j = k;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        regions.push((start_line, end_line.max(start_line)));
        i = j.max(i + 7);
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// Lints one source text as `file` (root-relative display path) for
/// `package`, with the scoped rule set. Exposed for fixture tests.
pub fn lint_source(
    file: &str,
    source: &str,
    package: &str,
    config: &LintConfig,
    rules: &[Box<dyn Rule>],
    test_like_target: bool,
) -> Vec<Violation> {
    let tokens = lexer::lex(source);
    let regions = test_regions(&tokens);
    let waivers = waiver::collect(&tokens);
    let known: Vec<&str> = rules.iter().map(|r| r.id()).collect();

    let mut out = Vec::new();
    for rule in rules {
        let Some(scope) = config.rules.get(rule.id()) else {
            continue;
        };
        if !scope.covers(package) {
            continue;
        }
        if scope.skip_tests && test_like_target {
            continue;
        }
        for raw in rule.check(&tokens) {
            if scope.skip_tests && in_regions(&regions, raw.line) {
                continue;
            }
            let waived = waivers.iter().any(|w| w.silences(rule.id(), raw.line));
            out.push(Violation {
                file: file.to_string(),
                line: raw.line,
                col: raw.col,
                rule: rule.id().to_string(),
                message: raw.message,
                waived,
            });
        }
    }
    // Waiver hygiene is unconditional: a bare waiver or one naming an
    // unknown rule is a violation wherever it appears, test code included —
    // otherwise stale waivers rot in place.
    for w in &waivers {
        out.extend(waiver_problems(file, w, &known));
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    out
}

fn waiver_problems(file: &str, w: &Waiver, known: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |message: String| {
        out.push(Violation {
            file: file.to_string(),
            line: w.comment_line,
            col: 1,
            rule: INVALID_WAIVER.to_string(),
            message,
            waived: false,
        });
    };
    if w.rules.is_empty() {
        push("waiver names no rule: write `lint:allow(rule-id): reason`".to_string());
    }
    for rule in &w.rules {
        if !known.contains(&rule.as_str()) {
            push(format!(
                "waiver names unknown rule `{rule}` (known: {})",
                known.join(", ")
            ));
        }
    }
    if w.reason.is_empty() {
        push(
            "bare waiver: a `lint:allow` must carry a reason — `lint:allow(rule): why this \
             is sound`"
                .to_string(),
        );
    }
    out
}

/// Lints the whole workspace under `root` with `config`.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Result<LintReport, String> {
    let packages = discover_packages(root)?;
    let names: Vec<String> = packages.iter().map(|p| p.name.clone()).collect();
    config.check_crate_names(&names)?;
    let rules = builtin_rules();

    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for pkg in &packages {
        for (rel, test_like) in package_sources(root, pkg)? {
            let path = root.join(&rel);
            let source =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            files_scanned += 1;
            let display = rel.to_string_lossy().replace('\\', "/");
            violations.extend(lint_source(
                &display, &source, &pkg.name, config, &rules, test_like,
            ));
        }
    }
    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.as_str(),
        ))
    });
    Ok(summarize(violations, files_scanned))
}

/// Lints explicit files. Files inside a discovered package use that
/// package's scoped rules; files outside any package get every rule
/// (strict mode — the fixture-injection path).
pub fn lint_paths(
    root: &Path,
    config: &LintConfig,
    paths: &[PathBuf],
) -> Result<LintReport, String> {
    let packages = discover_packages(root)?;
    let rules = builtin_rules();
    let mut strict_config = LintConfig::default();
    for rule in &rules {
        strict_config.rules.insert(
            rule.id().to_string(),
            crate::config::RuleScope {
                crates: vec!["*".to_string()],
                exclude: Vec::new(),
                skip_tests: false,
            },
        );
    }

    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for path in paths {
        let abs = if path.is_absolute() {
            path.clone()
        } else {
            root.join(path)
        };
        let source =
            std::fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        files_scanned += 1;
        let rel = abs.strip_prefix(root).unwrap_or(&abs);
        let display = rel.to_string_lossy().replace('\\', "/");
        let owner = packages
            .iter()
            .filter(|p| rel.starts_with(&p.dir))
            .max_by_key(|p| p.dir.components().count());
        let (cfg, package, test_like) = match owner {
            Some(pkg) => {
                let within = rel.strip_prefix(&pkg.dir).unwrap_or(rel);
                let test_like = ["tests", "benches", "examples"]
                    .iter()
                    .any(|t| within.starts_with(t));
                (config, pkg.name.as_str(), test_like)
            }
            None => (&strict_config, "<none>", false),
        };
        violations.extend(lint_source(
            &display, &source, package, cfg, &rules, test_like,
        ));
    }
    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.as_str(),
        ))
    });
    Ok(summarize(violations, files_scanned))
}

fn summarize(violations: Vec<Violation>, files_scanned: usize) -> LintReport {
    let waived = violations.iter().filter(|v| v.waived).count();
    let unwaived = violations.len() - waived;
    LintReport {
        violations,
        files_scanned,
        unwaived,
        waived,
    }
}

/// Rule ids and summaries, for `--list-rules`.
pub fn rule_listing() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = builtin_rules()
        .iter()
        .map(|r| (r.id().to_string(), r.summary().to_string()))
        .collect();
    out.push((
        INVALID_WAIVER.to_string(),
        "meta: every `lint:allow` waiver must name a known rule and carry a reason".to_string(),
    ));
    out
}

/// Packages and the rules scoped to each — `--explain-scope` output and
/// the self-lint test's sanity surface.
pub fn scope_listing(
    root: &Path,
    config: &LintConfig,
) -> Result<BTreeMap<String, Vec<String>>, String> {
    let packages = discover_packages(root)?;
    let mut out = BTreeMap::new();
    for pkg in &packages {
        let rules: Vec<String> = config
            .rules
            .iter()
            .filter(|(_, scope)| scope.covers(&pkg.name))
            .map(|(id, _)| id.clone())
            .collect();
        out.insert(pkg.name.clone(), rules);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_the_package_section_only() {
        let manifest = "[workspace]\nmembers = [\"x\"]\n\n[package]\nname = \"frs-lint\"\n\
                        [dependencies]\nname-like = \"1\"\n";
        assert_eq!(package_name(manifest).as_deref(), Some("frs-lint"));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_items() {
        let src = "fn a() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn b() {}\n\
                   }\n\
                   fn c() {}\n\
                   #[cfg(test)]\n\
                   use helper::thing;\n";
        let tokens = lexer::lex(src);
        let regions = test_regions(&tokens);
        assert_eq!(regions, vec![(2, 5), (7, 8)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn a() {}\n#[cfg(feature = \"x\")]\nfn b() {}\n";
        assert!(test_regions(&lexer::lex(src)).is_empty());
    }
}
