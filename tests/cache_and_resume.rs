//! Integration tests of the content-addressed suite cache and the streaming
//! run layer: cache-key stability (identical configs hash equal, *any*
//! `ConfigPatch` field flip re-keys, canonicalization is map-order
//! independent), warm runs that are bit-identical to cold ones, and
//! interrupted runs that resume from the cache executing only the remaining
//! cells.

use pieck_frs::attacks::AttackKind;
use pieck_frs::defense::DefenseKind;
use pieck_frs::experiments::cache::{scenario_key, SuiteCache};
use pieck_frs::experiments::progress::MemorySink;
use pieck_frs::experiments::suite::ExecOptions;
use pieck_frs::experiments::{
    paper_scenario, ConfigPatch, ExperimentSuite, PaperDataset, ReportFormat, RunOptions,
    ScenarioConfig, Sweep,
};
use pieck_frs::federation::ClientsPerRound;
use pieck_frs::model::{LossKind, ModelKind};
use proptest::prelude::*;

fn base_config() -> ScenarioConfig {
    paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.05, 7)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("frs-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn identical_configs_hash_equal() {
    let a = base_config();
    let b = base_config();
    assert_eq!(scenario_key(&a), scenario_key(&b));
    assert_eq!(a.canonical_json(), b.canonical_json());
    // The key is a SHA-256 hex digest.
    let key = scenario_key(&a);
    assert_eq!(key.len(), 64);
    assert!(key.bytes().all(|b| b.is_ascii_hexdigit()));
}

/// Every substantive `ConfigPatch` field participates in the cache key: a
/// flip of any one of them must re-address the cell. The `label` field is
/// report-only and must NOT affect the key.
#[test]
fn every_config_patch_field_flip_changes_the_key() {
    let base = base_config();
    let base_key = scenario_key(&base);

    let flips: Vec<ConfigPatch> = vec![
        ConfigPatch {
            label: "rounds".into(),
            rounds: Some(99),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "eval_k".into(),
            eval_k: Some(5),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "n_targets".into(),
            n_targets: Some(3),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "malicious_ratio".into(),
            malicious_ratio: Some(0.11),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "negative_ratio".into(),
            negative_ratio: Some(9),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "loss".into(),
            loss: Some(LossKind::Bpr),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "client_learning_rate".into(),
            client_learning_rate: Some(0.33),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "client_lr_cycle".into(),
            client_lr_cycle: Some((0.01, 1.0)),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "clients_per_round".into(),
            clients_per_round: Some(ClientsPerRound::Count(77)),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "trend_every".into(),
            trend_every: Some(5),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "norm_bound_threshold".into(),
            norm_bound_threshold: Some(0.07),
            ..ConfigPatch::default()
        },
    ];

    let mut keys = vec![base_key.clone()];
    for patch in &flips {
        let mut cfg = base_config();
        patch.apply(&mut cfg);
        let key = scenario_key(&cfg);
        assert_ne!(
            key, base_key,
            "flipping `{}` must change the cache key",
            patch.label
        );
        keys.push(key);
    }

    // The defense knobs write into the selection's params payload, so they
    // re-key cells whose defense declares the key…
    let ours_base = {
        let mut cfg = base_config();
        cfg.defense = DefenseKind::Ours.into();
        cfg
    };
    let ours_key = scenario_key(&ours_base);
    keys.push(ours_key.clone());
    let defense_flips: Vec<ConfigPatch> = vec![
        ConfigPatch {
            label: "use_re1".into(),
            use_re1: Some(false),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "use_re2".into(),
            use_re2: Some(false),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "beta".into(),
            beta: Some(9.5),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "gamma".into(),
            gamma: Some(9.5),
            ..ConfigPatch::default()
        },
    ];
    for patch in &defense_flips {
        let mut cfg = ours_base.clone();
        patch.apply(&mut cfg);
        let key = scenario_key(&cfg);
        assert_ne!(
            key, ours_key,
            "flipping `{}` on `ours` must change the cache key",
            patch.label
        );
        keys.push(key);
    }
    // …and are inert on a defense that does not accept them (no cache
    // duplication for parameters that cannot change the outcome).
    let mut none_cfg = base_config();
    defense_flips[0].apply(&mut none_cfg);
    assert_eq!(
        scenario_key(&none_cfg),
        base_key,
        "re1 on NoDefense is skipped, so the key must not move"
    );

    // The attack knobs mirror the defense hardening: they write into the
    // attack selection's params payload, re-keying cells whose attack
    // declares the key…
    let ipe_base = {
        let mut cfg = base_config();
        cfg.attack = AttackKind::PieckIpe.into();
        cfg
    };
    let ipe_key = scenario_key(&ipe_base);
    keys.push(ipe_key.clone());
    let attack_flips: Vec<ConfigPatch> = vec![
        ConfigPatch {
            label: "mined_top_n".into(),
            mined_top_n: Some(17),
            ..ConfigPatch::default()
        },
        ConfigPatch {
            label: "poison_scale".into(),
            poison_scale: Some(3.5),
            ..ConfigPatch::default()
        },
    ];
    for patch in &attack_flips {
        let mut cfg = ipe_base.clone();
        patch.apply(&mut cfg);
        let key = scenario_key(&cfg);
        assert_ne!(
            key, ipe_key,
            "flipping `{}` on pieck-ipe must change the cache key",
            patch.label
        );
        keys.push(key);
    }
    // …and are inert on the no-attack baseline (regression: these knobs
    // used to re-key — and thereby duplicate — every cell, including ones
    // whose attack ignores them).
    for patch in &attack_flips {
        let mut cfg = base_config();
        patch.apply(&mut cfg);
        assert_eq!(
            scenario_key(&cfg),
            base_key,
            "`{}` on NoAttack is skipped, so the key must not move",
            patch.label
        );
    }
    // All flips address distinct cells (no accidental collisions/aliasing).
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        keys.len(),
        "cache keys must be pairwise distinct"
    );

    // The label is presentation-only: an identity patch with a label keeps
    // the base key.
    let mut labeled = base_config();
    ConfigPatch::labeled("just-a-label").apply(&mut labeled);
    assert_eq!(scenario_key(&labeled), base_key);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical serialization is independent of the order object keys were
    /// inserted in: any permutation of the same (key, value) pairs
    /// canonicalizes to the same byte string, and parsing it back yields
    /// the same tree.
    #[test]
    fn canonicalization_is_map_order_independent(
        pairs in prop::collection::vec((0u32..10_000, any::<i64>()), 1..12),
        rotation in 0usize..12,
    ) {
        use serde_json::{Map, Number, Value};

        // Dedup generated keys (keeping the first value) so both insertion
        // orders describe the same mapping.
        let mut seen = std::collections::BTreeSet::new();
        let entries: Vec<(String, Value)> = pairs
            .iter()
            .filter(|&&(k, _)| seen.insert(k))
            .map(|&(k, v)| (format!("k{k}"), Value::Number(Number::I64(v))))
            .collect();

        let mut forward = Map::new();
        for (k, v) in &entries {
            forward.insert(k.clone(), v.clone());
        }
        // Insert the same pairs in a rotated (arbitrarily different) order.
        let mut rotated = Map::new();
        let n = entries.len();
        for i in 0..n {
            let (k, v) = &entries[(i + rotation) % n];
            rotated.insert(k.clone(), v.clone());
        }

        let forward = Value::Object(forward);
        let rotated = Value::Object(rotated);
        let canon_a = serde_json::to_string_canonical(&forward).unwrap();
        let canon_b = serde_json::to_string_canonical(&rotated).unwrap();
        prop_assert_eq!(&canon_a, &canon_b);
        // Round trip: parsing the canonical text re-canonicalizes to the
        // same bytes (the parser may widen I64→U64, so compare texts).
        let reparsed = serde_json::parse(&canon_a).unwrap();
        prop_assert_eq!(serde_json::to_string_canonical(&reparsed).unwrap(), canon_a);
    }
}

fn tiny_opts(threads: usize) -> RunOptions {
    RunOptions {
        scale: 0.05,
        seed: 23,
        rounds: Some(8),
        threads,
        ..RunOptions::default()
    }
}

fn six_cell_suite() -> ExperimentSuite {
    ExperimentSuite::new("resume", "Resume test").sweep(
        Sweep::new("grid", "Grid")
            .over_attacks([
                AttackKind::NoAttack,
                AttackKind::PieckIpe,
                AttackKind::PieckUea,
            ])
            .over_defenses([DefenseKind::NoDefense, DefenseKind::Ours]),
    )
}

/// Warm-cache correctness end to end: a second identical run executes zero
/// simulations and renders byte-identical reports in every format.
#[test]
fn warm_run_is_all_hits_and_byte_identical() {
    let dir = temp_dir("warm");
    let cache = SuiteCache::open(&dir).unwrap();
    let suite = six_cell_suite();
    let opts = tiny_opts(2);

    let cold_sink = MemorySink::new();
    let cold = suite
        .run_with(
            &opts,
            &ExecOptions {
                cache: Some(&cache),
                sink: Some(&cold_sink),
                budget: None,
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap();
    assert_eq!(cold_sink.events().len(), 6);
    assert_eq!(cold_sink.hits(), 0, "cold run must execute every cell");
    assert_eq!(cache.stats().unwrap().live, 6);

    let warm_sink = MemorySink::new();
    let warm = suite
        .run_with(
            &opts,
            &ExecOptions {
                cache: Some(&cache),
                sink: Some(&warm_sink),
                budget: None,
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap();
    assert_eq!(
        warm_sink.hits(),
        6,
        "warm run must replay every cell from the cache"
    );

    for format in [
        ReportFormat::Markdown,
        ReportFormat::Csv,
        ReportFormat::Json,
    ] {
        assert_eq!(
            cold.report().render(format),
            warm.report().render(format),
            "warm report must be byte-identical ({format:?})"
        );
    }
    // Including the timing-bearing fields: the cache preserves the cold
    // run's measured wall time through the serde-skip side channel.
    for (a, b) in cold.all_cells().zip(warm.all_cells()) {
        assert_eq!(a.outcome.mean_round_time, b.outcome.mean_round_time);
        assert_eq!(a.outcome.total_upload_bytes, b.outcome.total_upload_bytes);
        assert_eq!(a.outcome.targets, b.outcome.targets);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An interrupted run (sink aborts after N cells — the in-process stand-in
/// for a kill) leaves its finished cells cached; the re-run executes only
/// the remainder and its report matches an uninterrupted run exactly.
#[test]
fn aborted_run_resumes_from_cache_executing_only_the_remainder() {
    let dir = temp_dir("resume");
    let cache = SuiteCache::open(&dir).unwrap();
    let suite = six_cell_suite();
    // Sequential so "aborted after 2 cells" means exactly cells 0 and 1.
    let opts = tiny_opts(1);

    let killer = MemorySink::stop_after(2);
    let err = suite
        .run_with(
            &opts,
            &ExecOptions {
                cache: Some(&cache),
                sink: Some(&killer),
                budget: None,
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap_err();
    assert_eq!((err.completed, err.total), (2, 6));
    assert_eq!(cache.stats().unwrap().live, 2, "finished cells persisted");

    // The resumed run: cells 0–1 replay as hits, 2–5 execute fresh.
    let resume_sink = MemorySink::new();
    let resumed = suite
        .run_with(
            &opts,
            &ExecOptions {
                cache: Some(&cache),
                sink: Some(&resume_sink),
                budget: None,
                checkpoint_every: 0,
                checkpoint_keep: 1,
            },
        )
        .unwrap();
    let events = resume_sink.events();
    assert_eq!(events.len(), 6);
    assert_eq!(resume_sink.hits(), 2, "only the killed run's cells replay");
    assert!(
        events.iter().all(|e| e.cache_hit == (e.index < 2)),
        "exactly the first two (completed) cells must be hits"
    );

    // And the resumed result matches a from-scratch run, byte for byte.
    let fresh = suite.run(&opts);
    for format in [
        ReportFormat::Markdown,
        ReportFormat::Csv,
        ReportFormat::Json,
    ] {
        assert_eq!(
            fresh.report().render(format),
            resumed.report().render(format)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
