//! One experiment scenario: dataset × model × attack × defense.
//!
//! Attacks and defenses are referenced by *registry name* through
//! [`AttackSel`] / [`DefenseSel`], so scenarios serialize to plain data and
//! out-of-crate attacks registered via `frs_attacks::register_attack` run
//! through the same path as the paper's built-ins. The legacy enums still
//! convert into selections with `.into()`.

use std::sync::Arc;
use std::time::Duration;

use frs_attacks::{AttackBuildCtx, AttackSel};
use frs_data::{leave_one_out, movielens, synth, DataSource, Dataset, DatasetSpec, TrainTestSplit};
use frs_defense::{DefenseBuildCtx, DefenseSel};
use frs_federation::{
    Client, ClientPool, ClientsPerRound, CoreLease, FederationConfig, LazyClientPool, Simulation,
};
use frs_metrics::{ExposureReport, QualityReport};
use frs_model::{GlobalModel, ModelConfig, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Full description of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    pub dataset: DatasetSpec,
    pub model: ModelConfig,
    pub federation: FederationConfig,
    /// Attack, referenced by registry name plus a canonical parameter
    /// payload (see `frs_attacks::registry` — e.g. `pieck-uea:scale=2`).
    /// Attack hyper-parameter *overrides* live here; `mined_top_n` /
    /// `poison_scale` below stay the scenario-level defaults.
    pub attack: AttackSel,
    /// Defense, referenced by registry name plus a canonical parameter
    /// payload (see `frs_defense::registry` — e.g. `ours:beta=0.9`). All
    /// defense hyper-parameters, including the paper's β/γ and Re1/Re2
    /// ablation switches, live here.
    pub defense: DefenseSel,
    /// Malicious fraction `p̃ = |Ũ|/|U|`.
    pub malicious_ratio: f64,
    /// Number of target items `|T|` (drawn from the coldest items).
    pub n_targets: usize,
    /// Mined popular-set size `N` for PIECK variants and for `Ours`.
    pub mined_top_n: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Evaluation cutoff `K`.
    pub eval_k: usize,
    /// Evaluate ER/HR every this many rounds into
    /// [`ScenarioOutcome::trend`] (0 = final evaluation only).
    pub trend_every: usize,
    /// NormBound clipping threshold.
    pub norm_bound_threshold: f32,
    /// Scale factor applied to malicious uploads (see
    /// `frs_attacks::ScaledClient`; 1.0 = raw attack gradients).
    pub poison_scale: f32,
}

impl ScenarioConfig {
    /// A sensible default scenario: MF on a scaled ML-100K-like dataset,
    /// no attack, no defense. Callers override fields from here.
    pub fn baseline(dataset: DatasetSpec, kind: ModelKind, seed: u64) -> Self {
        let model = match kind {
            ModelKind::Mf => ModelConfig::mf(16),
            ModelKind::Ncf => ModelConfig::ncf(16),
        };
        let federation = FederationConfig {
            // The paper trains MF with η=1.0 and DL with a small rate.
            learning_rate: match kind {
                ModelKind::Mf => 1.0,
                ModelKind::Ncf => 0.005,
            },
            client_learning_rate: match kind {
                ModelKind::Mf => None,
                // DL personal embeddings need a larger step than the summed
                // global updates (one client's gradient vs a whole batch's).
                ModelKind::Ncf => Some(0.05),
            },
            clients_per_round: ClientsPerRound::Count(256),
            seed,
            ..FederationConfig::default()
        };
        Self {
            dataset,
            model,
            federation,
            attack: AttackSel::none(),
            defense: DefenseSel::none(),
            malicious_ratio: 0.05,
            n_targets: 1,
            mined_top_n: 10,
            rounds: 200,
            eval_k: 10,
            trend_every: 0,
            norm_bound_threshold: 0.05,
            poison_scale: 1.0,
        }
    }

    /// The canonical (sorted-key, whitespace-free, stable-number) JSON text
    /// of this config — the form the suite cache hashes. Structurally equal
    /// configs always canonicalize to the same byte string, so this is the
    /// cell's identity for content addressing (see `crate::cache`).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string_canonical(self).expect("scenario config serializes")
    }

    /// Number of malicious clients so that `p̃ = n_mal/(n_benign + n_mal)`.
    pub fn n_malicious(&self, n_benign: usize) -> usize {
        if self.attack.is_no_attack() || self.malicious_ratio <= 0.0 {
            return 0;
        }
        let p = self.malicious_ratio.min(0.9);
        ((p / (1.0 - p)) * n_benign as f64).round().max(1.0) as usize
    }

    /// The registry context used to instantiate this scenario's defense:
    /// everything the paper's defense needs (mined `N`, the model family
    /// its β/γ are tuned per, embedding dim, seed) plus the classic
    /// server-side knobs. Selection params override these defaults.
    pub fn defense_ctx(&self) -> DefenseBuildCtx {
        // The defense's β/γ are tuned per base model (the paper tunes them
        // per setting): DL item updates land with a 200x smaller server
        // learning rate, so the regularizers need proportionally more weight.
        let (default_beta, default_gamma) = match self.model.kind {
            ModelKind::Mf => (0.5, 0.5),
            ModelKind::Ncf => (5.0, 10.0),
        };
        DefenseBuildCtx {
            assumed_malicious_ratio: self.malicious_ratio,
            norm_bound_threshold: self.norm_bound_threshold,
            mined_top_n: self.mined_top_n,
            model: self.model.kind,
            embedding_dim: self.model.embedding_dim,
            default_beta,
            default_gamma,
            seed: self.federation.seed,
        }
    }

    /// The registry context used to instantiate this scenario's attack for
    /// `count` clients starting at `first_id`: the scenario-level defaults
    /// (mined `N`, poison scale) that selection params override, plus the
    /// model family, embedding dimension, spec-declared dataset sizes, and
    /// root seed an attack may condition on.
    pub fn attack_ctx<'a>(
        &self,
        first_id: usize,
        count: usize,
        targets: &'a [u32],
    ) -> AttackBuildCtx<'a> {
        AttackBuildCtx {
            first_id,
            count,
            targets,
            mined_top_n: self.mined_top_n,
            poison_scale: self.poison_scale,
            seed: self.federation.seed,
            model: self.model.kind,
            embedding_dim: self.model.embedding_dim,
            n_items: self.dataset.n_items,
            n_users: self.dataset.n_users,
        }
    }
}

/// One point on the convergence trend (Fig. 6a).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendPoint {
    pub round: usize,
    pub er: f64,
    pub hr: f64,
}

/// A mid-run snapshot of one scenario: the simulation's mutable state plus
/// the trend points already sampled. The trend rides along because a
/// resumed run must reproduce the uninterrupted run's report byte for byte
/// — re-deriving pre-checkpoint trend points would need the rounds that
/// produced them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioCheckpoint {
    pub trend: Vec<TrendPoint>,
    pub sim: frs_federation::SimulationCheckpoint,
}

/// Where and how often a checkpointed run persists its state: a
/// [`SuiteCache`](crate::cache::SuiteCache) slot (`<key>.ckpt.json` beside
/// the cell's eventual entry) written every `every` completed rounds, plus
/// on a shutdown request.
#[derive(Clone, Copy)]
pub struct CheckpointCtl<'a> {
    pub cache: &'a crate::cache::SuiteCache,
    pub key: &'a str,
    /// Rounds between periodic checkpoints (≥ 1; shutdown always snapshots).
    pub every: usize,
    /// Checkpoint generations retained per cell (`--keep-checkpoints`;
    /// values ≤ 1 keep only the newest sidecar, the classic behavior).
    pub keep: usize,
}

/// A checkpointed run stopped early by a shutdown request
/// ([`crate::shutdown::requested`]). Its latest state is on disk; re-running
/// the same cell with the same [`CheckpointCtl`] continues from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted;

/// Results of one scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Mean ER@K over targets, in percent (paper units).
    pub er_percent: f64,
    /// HR@K over benign users, in percent.
    pub hr_percent: f64,
    /// NDCG@K over benign users (0–1).
    pub ndcg: f64,
    /// The promoted target items.
    pub targets: Vec<u32>,
    /// Mean wall-clock time per round.
    #[serde(skip, default)]
    pub mean_round_time: Duration,
    /// Total bytes uploaded across the run.
    pub total_upload_bytes: usize,
    /// Largest per-round client fan-out width the run used. Execution-only
    /// telemetry (results are width-independent); surfaced through progress
    /// events so JSONL streams record the effective parallelism.
    pub max_round_threads: usize,
    /// Round-by-round trend, when requested.
    pub trend: Vec<TrendPoint>,
}

/// Builds the dataset/split/targets triple for a config (exposed so tests
/// and figure commands can inspect the same world the scenario ran in).
/// Synthetic specs generate; file-backed specs load through
/// `frs_data::movielens` (panicking with the path on unreadable files —
/// a misconfigured scenario, like an unregistered attack name).
pub fn build_world(cfg: &ScenarioConfig) -> (Dataset, TrainTestSplit, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(cfg.federation.seed ^ 0xDA7A);
    let full = match &cfg.dataset.source {
        DataSource::Synth => synth::generate(&cfg.dataset, &mut rng),
        DataSource::File(path) => load_dataset_file(path),
    };
    let split = leave_one_out(&full, &mut rng);
    // Targets: the coldest items in the *training* data (paper: random
    // uninteracted items; the synthetic tail is the uninteracted pool).
    let targets = split.train.coldest_items(cfg.n_targets);
    (full, split, targets)
}

/// Loads a MovieLens-format dump: `.dat` files parse as ML-1M
/// (`::`-separated), everything else as ML-100K `u.data` (tab-separated).
fn load_dataset_file(path: &str) -> Dataset {
    let options = if path.ends_with(".dat") {
        movielens::LoadOptions::ml1m()
    } else {
        movielens::LoadOptions::ml100k()
    };
    let (dataset, _maps) = movielens::load_path(std::path::Path::new(path), &options)
        .unwrap_or_else(|e| panic!("cannot load dataset file `{path}`: {e}"));
    dataset
}

/// Assembles the client population and simulation, with malicious clients
/// produced by `malicious_builder(first_id, count)` — the hook ablation
/// experiments use to run custom PIECK configurations.
pub fn build_simulation_with(
    cfg: &ScenarioConfig,
    train: Arc<Dataset>,
    _targets: &[u32],
    malicious_builder: impl FnOnce(usize, usize) -> Vec<Box<dyn Client>>,
) -> Simulation {
    let mut rng = StdRng::seed_from_u64(cfg.federation.seed ^ 0x0DE1);
    let model = GlobalModel::new(&cfg.model, train.n_items(), &mut rng);
    let n_benign = train.n_users();
    let dim = cfg.model.embedding_dim;
    // Every defense — the paper's included — instantiates through the open
    // registry: one `DefenseInstance` per scenario, whose regularizer
    // factory arms each sampled benign client with its own regularizer.
    let defense = cfg.defense.build(&cfg.defense_ctx());

    let n_mal = cfg.n_malicious(n_benign);
    let malicious = malicious_builder(n_benign, n_mal);

    // Benign clients are *lazy*: only arena rows until sampled, so a cell
    // scales to millions of registered users without a million boxed
    // clients. Seeds match what the eager `BenignClient::new` loop drew,
    // so results are unchanged (the pools are bit-identical by contract).
    let seed = cfg.federation.seed;
    let pool = LazyClientPool::new(
        n_benign,
        Arc::clone(&train),
        dim,
        cfg.model.init_scale,
        move |u| seed ^ ((u as u64) << 16) ^ 0xBE9,
        defense.regularizer_factory,
        malicious,
    );

    Simulation::builder(model)
        .pool(ClientPool::Lazy(pool))
        .aggregator(defense.aggregator)
        .config(cfg.federation.clone())
        .build()
}

/// Assembles the client population and simulation for a config.
pub fn build_simulation(cfg: &ScenarioConfig, train: Arc<Dataset>, targets: &[u32]) -> Simulation {
    build_simulation_with(cfg, train, targets, |first_id, count| {
        cfg.attack
            .build_clients(&cfg.attack_ctx(first_id, count, targets))
    })
}

/// Runs the scenario end to end with a custom malicious-client builder.
pub fn run_with(
    cfg: &ScenarioConfig,
    malicious_builder: impl FnOnce(usize, usize, &[u32]) -> Vec<Box<dyn Client>>,
) -> ScenarioOutcome {
    run_with_lease(cfg, None, malicious_builder)
}

/// Like [`run_with`], additionally attaching a [`CoreLease`] so a
/// `RoundThreads::Auto` federation config takes its per-round fan-out width
/// from a shared core budget (the suite execution path).
pub fn run_with_lease(
    cfg: &ScenarioConfig,
    lease: Option<CoreLease>,
    malicious_builder: impl FnOnce(usize, usize, &[u32]) -> Vec<Box<dyn Client>>,
) -> ScenarioOutcome {
    let (_full, split, targets) = build_world(cfg);
    let train = Arc::new(split.train.clone());
    let mut sim = build_simulation_with(cfg, Arc::clone(&train), &targets, |first, count| {
        malicious_builder(first, count, &targets)
    });
    sim.set_core_lease(lease);
    finish_run(cfg, &mut sim, &split, &train, targets)
}

/// Runs the scenario end to end with the configured attack.
pub fn run(cfg: &ScenarioConfig) -> ScenarioOutcome {
    run_leased(cfg, None)
}

/// Like [`run`], with an optional [`CoreLease`] granting budget-driven
/// per-round parallelism (consulted only under `RoundThreads::Auto`).
pub fn run_leased(cfg: &ScenarioConfig, lease: Option<CoreLease>) -> ScenarioOutcome {
    run_with_lease(cfg, lease, |first_id, count, targets| {
        cfg.attack
            .build_clients(&cfg.attack_ctx(first_id, count, targets))
    })
}

/// Like [`run_leased`], with mid-run checkpointing: an existing checkpoint
/// for `ctl.key` is restored (skipping the rounds it covers), the state is
/// re-persisted every `ctl.every` completed rounds and on a shutdown
/// request, and a completed run removes its checkpoint. Restored runs are
/// byte-identical to uninterrupted ones (`tests/checkpointing.rs`).
pub fn run_checkpointed(
    cfg: &ScenarioConfig,
    lease: Option<CoreLease>,
    ctl: &CheckpointCtl<'_>,
) -> Result<ScenarioOutcome, Interrupted> {
    let (_full, split, targets) = build_world(cfg);
    let train = Arc::new(split.train.clone());
    let mut sim = build_simulation(cfg, Arc::clone(&train), &targets);
    sim.set_core_lease(lease);
    finish_run_ctl(cfg, &mut sim, &split, &train, targets, Some(ctl))
}

/// Shared tail of a scenario run: the round loop, trend sampling, and the
/// final evaluation.
fn finish_run(
    cfg: &ScenarioConfig,
    sim: &mut Simulation,
    split: &TrainTestSplit,
    train: &Arc<Dataset>,
    targets: Vec<u32>,
) -> ScenarioOutcome {
    finish_run_ctl(cfg, sim, split, train, targets, None)
        .expect("a run without checkpointing cannot be interrupted")
}

/// [`finish_run`] with optional checkpointing. Without a [`CheckpointCtl`]
/// this is infallible (shutdown requests are only honoured where a
/// checkpoint can make the stop resumable).
fn finish_run_ctl(
    cfg: &ScenarioConfig,
    sim: &mut Simulation,
    split: &TrainTestSplit,
    train: &Arc<Dataset>,
    targets: Vec<u32>,
    ctl: Option<&CheckpointCtl<'_>>,
) -> Result<ScenarioOutcome, Interrupted> {
    let benign = sim.benign_ids();

    let mut trend = Vec::new();
    let mut start = 0;
    if let Some(ctl) = ctl {
        if let Some(ckpt) = ctl.cache.load_checkpoint(ctl.key) {
            if ckpt.sim.round <= cfg.rounds {
                match sim.restore_checkpoint(&ckpt.sim) {
                    Ok(()) => {
                        start = ckpt.sim.round;
                        trend = ckpt.trend;
                    }
                    // A checkpoint that no longer matches the rebuilt world
                    // (e.g. hand-copied between cache dirs) is a miss, not
                    // an abort: recompute from round zero.
                    Err(e) => eprintln!("ignoring checkpoint for {}: {e}", ctl.key),
                }
            }
        }
    }

    for r in start..cfg.rounds {
        sim.run_round();
        let done = r + 1;
        if cfg.trend_every > 0 && done % cfg.trend_every == 0 {
            let embs = sim.user_embeddings();
            let er =
                ExposureReport::compute(sim.model(), &embs, &benign, train, &targets, cfg.eval_k);
            let hr = QualityReport::compute(sim.model(), &embs, &benign, split, cfg.eval_k);
            trend.push(TrendPoint {
                round: done,
                er: er.mean_percent(),
                hr: hr.hr_percent(),
            });
        }
        if let Some(ctl) = ctl {
            let interrupted = done < cfg.rounds && crate::shutdown::requested();
            let due = ctl.every > 0 && done % ctl.every == 0 && done < cfg.rounds;
            if due || interrupted {
                let ckpt = ScenarioCheckpoint {
                    trend: trend.clone(),
                    sim: sim.capture_checkpoint(),
                };
                if let Err(e) = ctl
                    .cache
                    .store_checkpoint_rotating(ctl.key, &ckpt, ctl.keep)
                {
                    eprintln!("checkpoint write failed for {}: {e}", ctl.key);
                }
            }
            if interrupted {
                return Err(Interrupted);
            }
        }
    }

    let embs = sim.user_embeddings();
    let er = ExposureReport::compute(sim.model(), &embs, &benign, train, &targets, cfg.eval_k);
    let hr = QualityReport::compute(sim.model(), &embs, &benign, split, cfg.eval_k);
    if let Some(ctl) = ctl {
        // The finished outcome supersedes the sidecar; a failed removal is
        // garbage for `gc`, never a correctness problem.
        let _ = ctl.cache.remove_checkpoint(ctl.key);
    }
    Ok(ScenarioOutcome {
        er_percent: er.mean_percent(),
        hr_percent: hr.hr_percent(),
        ndcg: hr.ndcg,
        targets,
        mean_round_time: sim.stats().mean_round_time(),
        total_upload_bytes: sim.stats().total_upload_bytes,
        max_round_threads: sim.stats().max_round_threads,
        trend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_attacks::AttackKind;

    fn tiny_cfg(attack: AttackKind, defense: &str) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 42);
        cfg.federation.clients_per_round = ClientsPerRound::Count(24);
        cfg.rounds = 60;
        cfg.attack = attack.into();
        cfg.defense = DefenseSel::named(defense);
        cfg
    }

    #[test]
    fn baseline_learns_and_exposes_nothing() {
        let out = run(&tiny_cfg(AttackKind::NoAttack, "none"));
        assert!(out.hr_percent > 10.0, "HR {}", out.hr_percent);
        assert!(out.er_percent < 10.0, "ER {}", out.er_percent);
        assert_eq!(out.targets.len(), 1);
        assert!(out.total_upload_bytes > 0);
    }

    #[test]
    fn uea_attack_exposes_target_on_mf() {
        let base = run(&tiny_cfg(AttackKind::NoAttack, "none"));
        let attacked = run(&tiny_cfg(AttackKind::PieckUea, "none"));
        assert!(
            attacked.er_percent > base.er_percent + 30.0,
            "UEA should expose the target: {} vs baseline {}",
            attacked.er_percent,
            base.er_percent
        );
    }

    #[test]
    fn n_malicious_matches_ratio() {
        let mut cfg = tiny_cfg(AttackKind::PieckUea, "none");
        cfg.malicious_ratio = 0.05;
        let n_mal = cfg.n_malicious(950);
        let ratio = n_mal as f64 / (950 + n_mal) as f64;
        assert!((ratio - 0.05).abs() < 0.005, "{ratio}");
        cfg.attack = AttackSel::none();
        assert_eq!(cfg.n_malicious(950), 0);
    }

    #[test]
    fn trend_is_recorded_when_requested() {
        let mut cfg = tiny_cfg(AttackKind::NoAttack, "none");
        cfg.rounds = 20;
        cfg.trend_every = 5;
        let out = run(&cfg);
        assert_eq!(out.trend.len(), 4);
        assert_eq!(out.trend[0].round, 5);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(&tiny_cfg(AttackKind::PieckIpe, "none"));
        let b = run(&tiny_cfg(AttackKind::PieckIpe, "none"));
        assert_eq!(a.er_percent, b.er_percent);
        assert_eq!(a.hr_percent, b.hr_percent);
    }

    #[test]
    fn round_width_never_changes_outcomes() {
        use frs_federation::{CoreBudget, RoundThreads};

        let sequential = run(&tiny_cfg(AttackKind::PieckIpe, "none"));
        assert_eq!(sequential.max_round_threads, 1);

        let mut wide_cfg = tiny_cfg(AttackKind::PieckIpe, "none");
        wide_cfg.federation.round_threads = RoundThreads::Fixed(4);
        let wide = run(&wide_cfg);
        assert_eq!(wide.max_round_threads, 4);

        let budget = CoreBudget::new(8);
        let mut auto_cfg = tiny_cfg(AttackKind::PieckIpe, "none");
        auto_cfg.federation.round_threads = RoundThreads::Auto;
        let auto = run_leased(&auto_cfg, Some(budget.lease()));
        assert_eq!(auto.max_round_threads, 8, "sole lease gets the budget");

        for other in [&wide, &auto] {
            assert_eq!(sequential.er_percent, other.er_percent);
            assert_eq!(sequential.hr_percent, other.hr_percent);
            assert_eq!(sequential.ndcg, other.ndcg);
            assert_eq!(sequential.targets, other.targets);
        }
    }

    #[test]
    fn canonical_json_is_stable_and_round_trips() {
        let cfg = tiny_cfg(AttackKind::PieckUea, "ours");
        let canonical = cfg.canonical_json();
        assert!(!canonical.contains('\n') && !canonical.contains(": "));
        // Sorted keys: "attack" precedes "defense" precedes "rounds".
        let pos = |k: &str| canonical.find(&format!("\"{k}\"")).unwrap();
        assert!(pos("attack") < pos("defense") && pos("defense") < pos("rounds"));
        let back: ScenarioConfig = serde_json::from_str(&canonical).unwrap();
        assert_eq!(back.canonical_json(), canonical);
    }

    fn temp_cache(tag: &str) -> crate::cache::SuiteCache {
        let dir =
            std::env::temp_dir().join(format!("frs-scenario-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::cache::SuiteCache::open(dir).unwrap()
    }

    fn assert_same_outcome(a: &ScenarioOutcome, b: &ScenarioOutcome) {
        assert_eq!(a.er_percent, b.er_percent);
        assert_eq!(a.hr_percent, b.hr_percent);
        assert_eq!(a.ndcg, b.ndcg);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.total_upload_bytes, b.total_upload_bytes);
        assert_eq!(a.trend.len(), b.trend.len());
        for (x, y) in a.trend.iter().zip(&b.trend) {
            assert_eq!((x.round, x.er, x.hr), (y.round, y.er, y.hr));
        }
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let _guard = crate::shutdown::test_lock();
        crate::shutdown::reset();
        let mut cfg = tiny_cfg(AttackKind::PieckIpe, "ours");
        cfg.rounds = 12;
        cfg.trend_every = 5;
        let plain = run(&cfg);

        let cache = temp_cache("match");
        let key = crate::cache::scenario_key(&cfg);
        let ctl = CheckpointCtl {
            cache: &cache,
            key: &key,
            every: 4,
            keep: 1,
        };
        let checkpointed = run_checkpointed(&cfg, None, &ctl).unwrap();
        assert_same_outcome(&plain, &checkpointed);
        assert!(
            cache.load_checkpoint(&key).is_none(),
            "completion removes the sidecar"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn run_interrupted_at_every_round_still_matches() {
        // The harshest kill schedule: with a shutdown permanently requested,
        // each call completes exactly one round, checkpoints, and stops —
        // so the run is interrupted and resumed at *every* round boundary.
        // The stitched-together outcome must match an uninterrupted run
        // exactly, stateful attack (pieck-ipe mining) and defense included.
        let _guard = crate::shutdown::test_lock();
        let mut cfg = tiny_cfg(AttackKind::PieckIpe, "ours");
        cfg.rounds = 10;
        cfg.trend_every = 3;
        crate::shutdown::reset();
        let plain = run(&cfg);

        let cache = temp_cache("everyround");
        let key = crate::cache::scenario_key(&cfg);
        let ctl = CheckpointCtl {
            cache: &cache,
            key: &key,
            every: 0,
            keep: 1,
        };
        crate::shutdown::trigger();
        let mut stops = 0;
        let resumed = loop {
            match run_checkpointed(&cfg, None, &ctl) {
                Ok(outcome) => break outcome,
                Err(Interrupted) => {
                    stops += 1;
                    assert!(
                        cache.load_checkpoint(&key).is_some(),
                        "an interrupt leaves a resumable checkpoint"
                    );
                    assert!(stops <= cfg.rounds, "no forward progress");
                }
            }
        };
        crate::shutdown::reset();
        assert_eq!(stops, cfg.rounds - 1, "one round per interrupted call");
        assert_same_outcome(&plain, &resumed);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn mismatched_checkpoint_downgrades_to_recompute() {
        let _guard = crate::shutdown::test_lock();
        crate::shutdown::reset();
        let mut cfg = tiny_cfg(AttackKind::NoAttack, "none");
        cfg.rounds = 6;
        let plain = run(&cfg);

        let cache = temp_cache("mismatch");
        let key = crate::cache::scenario_key(&cfg);
        // A checkpoint for a different population (hand-copied between
        // dirs, or a code change that re-sized the world): restore fails
        // validation and the run recomputes from round zero.
        let mut other = cfg.clone();
        other.dataset.n_users /= 2;
        let (_full, split, targets) = build_world(&other);
        let train = Arc::new(split.train.clone());
        let mut sim = build_simulation(&other, Arc::clone(&train), &targets);
        sim.run_round();
        cache
            .store_checkpoint(
                &key,
                &ScenarioCheckpoint {
                    trend: Vec::new(),
                    sim: sim.capture_checkpoint(),
                },
            )
            .unwrap();

        let ctl = CheckpointCtl {
            cache: &cache,
            key: &key,
            every: 3,
            keep: 1,
        };
        let out = run_checkpointed(&cfg, None, &ctl).unwrap();
        assert_same_outcome(&plain, &out);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn config_serializes_with_registry_names() {
        let cfg = tiny_cfg(AttackKind::PieckUea, "ours");
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("\"attack\":\"pieck-uea\""), "{json}");
        assert!(json.contains("\"defense\":\"ours\""), "{json}");
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.attack, cfg.attack);
        assert_eq!(back.defense, cfg.defense);
        assert_eq!(back.rounds, cfg.rounds);
    }
}
