//! NormBound \[33\]: clip each *whole upload's* L2 norm, then sum.
//!
//! Bounding per-client influence is the classic backdoor mitigation. A benign
//! upload spreads its norm across dozens of items, so per-item it loses
//! little; a poisonous upload concentrates a huge gradient on one target item
//! and gets crushed by the clip. It still fails in expectation when poisonous
//! *clients* outnumber benign uploaders of the target (Eq. 11) and the
//! attacker keeps its norm under the bound.

use frs_federation::{upload_norm, Aggregator};
use frs_model::GlobalGradients;

/// The clipping aggregator.
#[derive(Debug, Clone, Copy)]
pub struct NormBound {
    /// Maximum allowed L2 norm per upload (items + MLP jointly).
    pub threshold: f32,
}

impl NormBound {
    /// Creates the defense with the given clipping threshold.
    pub fn new(threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "threshold must be positive"
        );
        Self { threshold }
    }
}

impl Aggregator for NormBound {
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients {
        let mut out = GlobalGradients::new();
        for upload in uploads {
            let norm = upload_norm(upload);
            let factor = if norm > self.threshold {
                self.threshold / norm
            } else {
                1.0
            };
            out.axpy(factor, upload);
        }
        out
    }

    fn name(&self) -> &'static str {
        "NormBound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(pairs: &[(u32, Vec<f32>)]) -> GlobalGradients {
        let mut g = GlobalGradients::new();
        for (item, grad) in pairs {
            g.add_item_grad(*item, grad);
        }
        g
    }

    #[test]
    fn small_uploads_pass_through() {
        let nb = NormBound::new(10.0);
        let out = nb.aggregate(&[
            upload(&[(0, vec![1.0, 0.0])]),
            upload(&[(0, vec![0.0, 2.0])]),
        ]);
        assert_eq!(out.items[&0], vec![1.0, 2.0]);
    }

    #[test]
    fn oversized_upload_clipped_to_threshold() {
        let nb = NormBound::new(1.0);
        let out = nb.aggregate(&[upload(&[(0, vec![30.0, 40.0])])]); // norm 50
        assert!((out.items[&0][0] - 0.6).abs() < 1e-6);
        assert!((out.items[&0][1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn clip_is_per_upload_not_per_item() {
        // One upload spreading norm over two items is clipped jointly.
        let nb = NormBound::new(5.0);
        let out = nb.aggregate(&[upload(&[(0, vec![6.0, 0.0]), (1, vec![8.0, 0.0])])]);
        // ‖(6, 8)‖ = 10 → factor 0.5.
        assert!((out.items[&0][0] - 3.0).abs() < 1e-5);
        assert!((out.items[&1][0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn attacker_influence_bounded() {
        let nb = NormBound::new(0.5);
        let benign: Vec<GlobalGradients> = (0..9).map(|_| upload(&[(0, vec![0.1, 0.0])])).collect();
        let mut all = benign;
        all.push(upload(&[(0, vec![1000.0, -1000.0])]));
        let out = nb.aggregate(&all);
        let d = frs_linalg::l2_distance(&out.items[&0], &[0.9, 0.0]);
        assert!(d <= 0.5 + 1e-5, "attacker moved aggregate by {d}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        NormBound::new(0.0);
    }
}
