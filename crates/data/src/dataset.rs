//! The immutable interaction store.
//!
//! A [`Dataset`] is a set of (user, item) implicit-feedback interactions held
//! as one sorted item list per user. That layout serves every consumer:
//! clients iterate their own positives (`D⁺_i`), the negative sampler needs
//! fast membership tests (binary search on the sorted list), and popularity
//! counts are materialized once at construction for the miner ground truth.

use serde::{Deserialize, Serialize};

/// Implicit-feedback interaction data for `n_users × n_items`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    n_items: usize,
    /// `user_items[u]` is the ascending list of items user `u` interacted with.
    user_items: Vec<Vec<u32>>,
    /// `item_pop[j]` = number of users that interacted with item `j`
    /// (the paper's definition of popularity, Section IV-B).
    item_pop: Vec<u32>,
}

impl Dataset {
    /// Builds a dataset from per-user interaction lists. Lists are sorted and
    /// deduplicated; out-of-range items panic.
    pub fn from_user_items(n_items: usize, mut user_items: Vec<Vec<u32>>) -> Self {
        let mut item_pop = vec![0u32; n_items];
        for items in &mut user_items {
            items.sort_unstable();
            items.dedup();
            for &j in items.iter() {
                assert!((j as usize) < n_items, "item id {j} out of range");
                item_pop[j as usize] += 1;
            }
        }
        Self {
            n_items,
            user_items,
            item_pop,
        }
    }

    /// Number of users (clients in the federation).
    #[inline]
    pub fn n_users(&self) -> usize {
        self.user_items.len()
    }

    /// Number of items (rows of the shared embedding table).
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total interaction count.
    pub fn n_interactions(&self) -> usize {
        self.user_items.iter().map(Vec::len).sum::<usize>()
    }

    /// The ascending interacted-item list `D⁺_u` of user `u`.
    #[inline]
    pub fn items_of(&self, user: usize) -> &[u32] {
        &self.user_items[user]
    }

    /// True when `user` has interacted with `item` (O(log |D⁺_u|)).
    #[inline]
    pub fn interacted(&self, user: usize, item: u32) -> bool {
        self.user_items[user].binary_search(&item).is_ok()
    }

    /// Popularity (interaction count) of every item.
    #[inline]
    pub fn item_popularity(&self) -> &[u32] {
        &self.item_pop
    }

    /// Item ids sorted by descending popularity (ties by ascending id) —
    /// the ground-truth "popularity ranking" axis of Fig. 3 and Fig. 4.
    pub fn popularity_ranking(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.n_items as u32).collect(); // lint:allow(lossy-index-cast): loaders reject catalogs past the u32 id space
        ids.sort_unstable_by(|&a, &b| {
            self.item_pop[b as usize]
                .cmp(&self.item_pop[a as usize])
                .then(a.cmp(&b))
        });
        ids
    }

    /// `rank[j]` = zero-based popularity rank of item `j` (0 = most popular).
    pub fn popularity_rank_of(&self) -> Vec<usize> {
        let ranking = self.popularity_ranking();
        let mut rank = vec![0usize; self.n_items];
        for (pos, &j) in ranking.iter().enumerate() {
            rank[j as usize] = pos;
        }
        rank
    }

    /// The `count` coldest items (fewest interactions, ties by id), the pool
    /// the paper draws target items from ("usually an extremely cold item",
    /// Section V-A). Items with zero interactions come first.
    pub fn coldest_items(&self, count: usize) -> Vec<u32> {
        let mut ranking = self.popularity_ranking();
        ranking.reverse();
        ranking.truncate(count);
        ranking
    }

    /// Returns a copy with interaction `(user, item)` removed (used by the
    /// leave-one-out split). Popularity counts are recomputed.
    pub fn without_interaction(&self, user: usize, item: u32) -> Self {
        let mut user_items = self.user_items.clone();
        if let Ok(pos) = user_items[user].binary_search(&item) {
            user_items[user].remove(pos);
        }
        Self::from_user_items(self.n_items, user_items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        // 3 users, 4 items. Item 1 is most popular (3 users), item 3 untouched.
        Dataset::from_user_items(4, vec![vec![0, 1], vec![1, 2], vec![1]])
    }

    #[test]
    fn counts_are_consistent() {
        let d = small();
        assert_eq!(d.n_users(), 3);
        assert_eq!(d.n_items(), 4);
        assert_eq!(d.n_interactions(), 5);
        assert_eq!(d.item_popularity(), &[1, 3, 1, 0]);
    }

    #[test]
    fn membership_queries() {
        let d = small();
        assert!(d.interacted(0, 1));
        assert!(!d.interacted(0, 2));
        assert!(!d.interacted(2, 3));
    }

    #[test]
    fn duplicate_interactions_are_deduped() {
        let d = Dataset::from_user_items(2, vec![vec![1, 1, 0, 1]]);
        assert_eq!(d.items_of(0), &[0, 1]);
        assert_eq!(d.item_popularity(), &[1, 1]);
    }

    #[test]
    fn popularity_ranking_descending() {
        let d = small();
        assert_eq!(d.popularity_ranking(), vec![1, 0, 2, 3]);
        let rank = d.popularity_rank_of();
        assert_eq!(rank[1], 0);
        assert_eq!(rank[3], 3);
    }

    #[test]
    fn coldest_items_returns_tail() {
        let d = small();
        assert_eq!(d.coldest_items(1), vec![3]);
        assert_eq!(d.coldest_items(2), vec![3, 2]);
    }

    #[test]
    fn without_interaction_updates_popularity() {
        let d = small().without_interaction(1, 1);
        assert_eq!(d.item_popularity(), &[1, 2, 1, 0]);
        assert!(!d.interacted(1, 1));
        assert!(d.interacted(1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        Dataset::from_user_items(2, vec![vec![2]]);
    }
}
