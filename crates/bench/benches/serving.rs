//! Serving-path latency: what one top-K query costs end to end through the
//! daemon's request handler (`respond_line`: parse → score → rank → encode),
//! and what a mid-run checkpoint write costs the trainer.
//!
//! Besides the shim's median-of-samples records, this bench measures a true
//! p99 over a burst of individual queries (`serve/top_k_query_p99`) —
//! serving is latency-sensitive in the tail, not the middle — and appends
//! it to `FRS_BENCH_JSON` in the same record shape so the CI gate covers it
//! like any other benchmark.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frs_attacks::AttackKind;
use frs_bench::{bench_simulation, bench_world};
use frs_defense::DefenseKind;
use frs_experiments::scenario::TrendPoint;
use frs_experiments::{ScenarioCheckpoint, SuiteCache};
use frs_model::ModelKind;
use frs_serve::{respond_line, Router, ScenarioHandle, Snapshot};

fn serving_fixture() -> (Arc<Router>, usize) {
    let (model, users, data) = bench_world();
    let n_users = data.n_users();
    let snapshot = Snapshot::new(5, false, model, users, data);
    let handle = Arc::new(ScenarioHandle::new("bench".to_string(), snapshot));
    (Arc::new(Router::new(vec![handle]).unwrap()), n_users)
}

/// One representative mid-run checkpoint: a real simulation's captured
/// state plus a plausible sampled trend.
fn sample_checkpoint() -> ScenarioCheckpoint {
    let sim = bench_simulation(ModelKind::Mf, AttackKind::PieckIpe, DefenseKind::Ours);
    ScenarioCheckpoint {
        trend: (1..=4)
            .map(|i| TrendPoint {
                round: i * 5,
                er: 0.1 * i as f64,
                hr: 0.5,
            })
            .collect(),
        sim: sim.capture_checkpoint(),
    }
}

fn serving(c: &mut Criterion) {
    let (router, n_users) = serving_fixture();

    let mut group = c.benchmark_group("serve");
    let mut user = 0usize;
    group.bench_function("top_k_query", |b| {
        b.iter(|| {
            user = (user + 7) % n_users;
            let line = format!("{{\"user\":{user},\"k\":10}}");
            black_box(respond_line(&line, &router))
        });
    });
    group.bench_function("status_query", |b| {
        b.iter(|| black_box(respond_line("{}", &router)));
    });

    let ckpt = sample_checkpoint();
    let dir = std::env::temp_dir().join(format!("frs-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = SuiteCache::open(&dir).unwrap();
    group.bench_function("checkpoint_write", |b| {
        b.iter(|| cache.store_checkpoint("bench-ckpt", &ckpt).unwrap());
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);

    report_p99(&router, n_users);
}

/// Measures per-query latency over a burst and reports the p99, in the same
/// print + JSONL shape the shim uses so `bench-gate` treats it uniformly.
fn report_p99(router: &Router, n_users: usize) {
    let quick = std::env::var("FRS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let burst = if quick { 200 } else { 2000 };
    // Best-of-3 bursts: a single burst's p99 is dominated by whatever the
    // scheduler did that instant; the minimum over bursts is the stable
    // "true tail" of the handler itself.
    let p99 = (0..3)
        .map(|_| {
            let mut lat: Vec<Duration> = Vec::with_capacity(burst);
            for i in 0..burst {
                let line = format!("{{\"user\":{},\"k\":10}}", (i * 7) % n_users);
                let start = Instant::now();
                black_box(respond_line(&line, router));
                lat.push(start.elapsed());
            }
            lat.sort_unstable();
            lat[burst * 99 / 100]
        })
        .min()
        .unwrap();
    println!("bench {:<40} {:>12.3?}/iter", "serve/top_k_query_p99", p99);
    if let Ok(path) = std::env::var("FRS_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write as _;
            let line = format!(
                "{{\"bench\":\"serve/top_k_query_p99\",\"ns_per_iter\":{},\"quick\":{quick}}}",
                p99.as_nanos()
            );
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| writeln!(file, "{line}"));
            if let Err(e) = appended {
                eprintln!("FRS_BENCH_JSON: cannot append to {path}: {e}");
            }
        }
    }
}

criterion_group!(benches, serving);
criterion_main!(benches);
