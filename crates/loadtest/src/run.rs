//! The load driver: saturate a running serve daemon and measure it.
//!
//! Two client models, per the classic load-testing split:
//!
//! - **Closed loop** — each connection keeps a fixed number of requests in
//!   flight (`pipeline`) and sends the next as each response lands. This
//!   finds the daemon's throughput ceiling; latency here measures service
//!   time under full pipelines.
//! - **Open loop** — requests are sent on a fixed schedule (`rate` per
//!   second across all connections) regardless of response progress, and
//!   latency is measured from the *scheduled* send time, so queueing delay
//!   is part of the number (no coordinated omission).
//!
//! The request stream is seeded: the same seed, distribution, and counts
//! produce the same user ids in the same order, making a report
//! reproducible run to run (timing aside).

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist::{KeyDist, KeySampler};
use crate::hist::LogHistogram;

/// Where the daemon under test listens.
#[derive(Debug, Clone)]
pub enum Target {
    Unix(PathBuf),
    Tcp(String),
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unix(path) => write!(f, "unix:{}", path.display()),
            Self::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// Client model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fixed in-flight window per connection.
    Closed,
    /// Fixed schedule: `rate` requests per second across all connections.
    Open { rate: f64 },
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "closed"),
            Self::Open { rate } => write!(f, "open@{rate}/s"),
        }
    }
}

/// Everything one loadtest run needs.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    pub target: Target,
    /// Concurrent connections.
    pub connections: usize,
    /// In-flight requests per connection (closed loop).
    pub pipeline: usize,
    /// Total requests across all connections.
    pub requests: u64,
    pub mode: Mode,
    pub dist: KeyDist,
    pub seed: u64,
    /// Top-K cutoff each query asks for.
    pub k: usize,
    /// Scenario routing keys to spread requests over; empty hits the
    /// daemon's default scenario with no routing field (the PR 6 shape).
    pub scenarios: Vec<String>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            target: Target::Tcp("127.0.0.1:0".into()),
            connections: 4,
            pipeline: 8,
            requests: 10_000,
            mode: Mode::Closed,
            dist: KeyDist::Uniform,
            seed: 42,
            k: 10,
            scenarios: Vec::new(),
        }
    }
}

/// The measured outcome of a run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub target: String,
    pub mode: String,
    pub dist: String,
    pub connections: usize,
    pub pipeline: usize,
    pub seed: u64,
    pub sent: u64,
    pub received: u64,
    pub errors: u64,
    pub elapsed_ns: u64,
    pub qps: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    /// Wall time per answered query — the bench-gate "iteration" cost, so a
    /// QPS floor rides the gate as a slower-than-baseline failure.
    pub ns_per_query: u64,
}

impl LoadReport {
    /// The run's bench-gate records, one JSON object per line, in the same
    /// shape `frs_bench::gate` collects: `{"bench":ID,"ns_per_iter":N}`.
    pub fn gate_records(&self) -> String {
        format!(
            "{{\"bench\":\"serve/loadtest_ns_per_query\",\"ns_per_iter\":{}}}\n\
             {{\"bench\":\"serve/loadtest_p99_ns\",\"ns_per_iter\":{}}}\n",
            self.ns_per_query.max(1),
            self.p99_ns.max(1),
        )
    }

    /// Human-readable summary block.
    pub fn summary(&self) -> String {
        format!(
            "target        {}\n\
             mode          {} · {} conns × pipeline {} · dist {} · seed {}\n\
             requests      {} sent, {} answered, {} errors\n\
             elapsed       {:.3} s\n\
             throughput    {:.0} queries/s ({} ns/query)\n\
             latency       p50 {} µs · p95 {} µs · p99 {} µs · max {} µs",
            self.target,
            self.mode,
            self.connections,
            self.pipeline,
            self.dist,
            self.seed,
            self.sent,
            self.received,
            self.errors,
            self.elapsed_ns as f64 / 1e9,
            self.qps,
            self.ns_per_query,
            self.p50_ns / 1_000,
            self.p95_ns / 1_000,
            self.p99_ns / 1_000,
            self.max_ns / 1_000,
        )
    }
}

/// A duplex client connection to either transport.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn connect(target: &Target) -> io::Result<Self> {
        match target {
            Target::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            Target::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
        }
    }

    fn split_reader(&self) -> io::Result<Box<dyn io::Read + Send>> {
        match self {
            Conn::Unix(s) => {
                let r = s.try_clone()?;
                r.set_read_timeout(Some(READ_TIMEOUT))?;
                Ok(Box::new(r))
            }
            Conn::Tcp(s) => {
                let r = s.try_clone()?;
                r.set_read_timeout(Some(READ_TIMEOUT))?;
                Ok(Box::new(r))
            }
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// How long a client waits on a response before declaring the daemon stuck.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Wire shape of one generated query (field names match the daemon's
/// `Request`; `scenario: None` serializes as `null`, which routes to the
/// default scenario exactly like omitting the field).
#[derive(Serialize)]
struct QueryLine {
    user: usize,
    k: usize,
    scenario: Option<String>,
}

/// Minimal view of the daemon's status response for bootstrapping.
#[derive(Deserialize)]
struct StatusProbe {
    n_users: usize,
    #[serde(default)]
    scenarios: Vec<ScenarioProbe>,
}

#[derive(Deserialize)]
struct ScenarioProbe {
    name: String,
    n_users: usize,
}

/// Deterministic per-connection request stream.
struct RequestGen {
    rng: StdRng,
    sampler: KeySampler,
    scenarios: Vec<String>,
    k: usize,
}

impl RequestGen {
    fn next_line(&mut self) -> Result<String, String> {
        let user = self.sampler.sample(&mut self.rng);
        let scenario = match self.scenarios.len() {
            0 => None,
            1 => Some(self.scenarios[0].clone()), // lint:allow(panic-in-daemon): this match arm runs only when len() == 1
            n => Some(self.scenarios[self.rng.gen_range(0..n)].clone()), // lint:allow(panic-in-daemon): gen_range(0..n) is below len() by construction
        };
        let mut line = serde_json::to_string(&QueryLine {
            user,
            k: self.k,
            scenario,
        })
        .map_err(|e| format!("query serialization: {e}"))?;
        line.push('\n');
        Ok(line)
    }
}

/// What one connection worker measured.
struct ConnStats {
    hist: LogHistogram,
    sent: u64,
    received: u64,
    errors: u64,
}

/// Connects (with retries while a freshly booted daemon binds), sends one
/// status request, and returns the parsed probe.
fn probe_status(target: &Target) -> Result<StatusProbe, String> {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut conn = loop {
        match Conn::connect(target) {
            Ok(conn) => break conn,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("cannot reach {target}: {e}")),
        }
    };
    let mut reader = BufReader::new(
        conn.split_reader()
            .map_err(|e| format!("status probe: {e}"))?,
    );
    conn.write_all(b"{}\n")
        .map_err(|e| format!("status probe write: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("status probe read: {e}"))?;
    serde_json::from_str(line.trim()).map_err(|e| format!("bad status response: {e}"))
}

/// Runs one loadtest against a live daemon.
pub fn run(opts: &LoadOptions) -> Result<LoadReport, String> {
    if opts.connections == 0 || opts.requests == 0 {
        return Err("need at least one connection and one request".into());
    }
    if opts.pipeline == 0 {
        return Err("pipeline depth must be at least 1".into());
    }
    if let Mode::Open { rate } = opts.mode {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(format!("open-loop rate must be positive, got {rate}"));
        }
    }

    let status = probe_status(&opts.target)?;
    // The sampled user space must be valid for every scenario we hit.
    let mut n_users = status.n_users;
    for name in &opts.scenarios {
        match status.scenarios.iter().find(|s| &s.name == name) {
            Some(s) => n_users = n_users.min(s.n_users),
            None => {
                let served: Vec<&str> = status.scenarios.iter().map(|s| s.name.as_str()).collect();
                return Err(format!(
                    "daemon does not serve scenario `{name}` (serving: {})",
                    served.join(", ")
                ));
            }
        }
    }
    if n_users == 0 {
        return Err("daemon reports zero servable users".into());
    }

    let started = Instant::now();
    let workers: Vec<_> = (0..opts.connections)
        .map(|c| {
            let quota = opts.requests / opts.connections as u64
                + u64::from((c as u64) < opts.requests % opts.connections as u64);
            let gen = RequestGen {
                rng: StdRng::seed_from_u64(
                    opts.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                sampler: KeySampler::new(&opts.dist, n_users)?,
                scenarios: opts.scenarios.clone(),
                k: opts.k,
            };
            let target = opts.target.clone();
            let mode = opts.mode;
            let pipeline = opts.pipeline;
            let total_conns = opts.connections;
            Ok(std::thread::spawn(move || {
                run_connection(&target, mode, pipeline, total_conns, quota, gen)
            }))
        })
        .collect::<Result<_, String>>()?;

    let mut hist = LogHistogram::new();
    let (mut sent, mut received, mut errors) = (0u64, 0u64, 0u64);
    for worker in workers {
        let stats = worker
            .join()
            .map_err(|_| "loadtest worker panicked".to_string())??;
        hist.merge(&stats.hist);
        sent += stats.sent;
        received += stats.received;
        errors += stats.errors;
    }
    let elapsed_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    if received == 0 {
        return Err("no responses received — is the daemon serving?".into());
    }

    Ok(LoadReport {
        target: opts.target.to_string(),
        mode: opts.mode.to_string(),
        dist: opts.dist.to_string(),
        connections: opts.connections,
        pipeline: opts.pipeline,
        seed: opts.seed,
        sent,
        received,
        errors,
        elapsed_ns,
        qps: received as f64 / (elapsed_ns as f64 / 1e9),
        p50_ns: hist.quantile(0.50),
        p95_ns: hist.quantile(0.95),
        p99_ns: hist.quantile(0.99),
        max_ns: hist.max(),
        ns_per_query: (elapsed_ns / received).max(1),
    })
}

fn run_connection(
    target: &Target,
    mode: Mode,
    pipeline: usize,
    total_conns: usize,
    quota: u64,
    gen: RequestGen,
) -> Result<ConnStats, String> {
    if quota == 0 {
        return Ok(ConnStats {
            hist: LogHistogram::new(),
            sent: 0,
            received: 0,
            errors: 0,
        });
    }
    let conn = Conn::connect(target).map_err(|e| format!("connect {target}: {e}"))?;
    match mode {
        Mode::Closed => closed_loop(conn, pipeline, quota, gen),
        Mode::Open { rate } => open_loop(conn, rate / total_conns as f64, quota, gen),
    }
}

/// Keeps `pipeline` requests in flight, measuring send→response time.
fn closed_loop(
    mut conn: Conn,
    pipeline: usize,
    quota: u64,
    mut gen: RequestGen,
) -> Result<ConnStats, String> {
    let mut reader = BufReader::new(conn.split_reader().map_err(|e| e.to_string())?);
    let mut stats = ConnStats {
        hist: LogHistogram::new(),
        sent: 0,
        received: 0,
        errors: 0,
    };
    let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(pipeline);
    let mut line = String::new();
    while stats.received < quota {
        // Refill the window in one write (the pipelined batch).
        if stats.sent < quota && inflight.len() < pipeline {
            let mut batch = String::new();
            let mut in_batch = 0;
            while stats.sent < quota && inflight.len() + in_batch < pipeline {
                batch.push_str(&gen.next_line()?);
                stats.sent += 1;
                in_batch += 1;
            }
            let now = Instant::now();
            for _ in 0..in_batch {
                inflight.push_back(now);
            }
            conn.write_all(batch.as_bytes())
                .map_err(|e| format!("write: {e}"))?;
        }
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection mid-run".into());
        }
        let sent_at = inflight
            .pop_front()
            .ok_or_else(|| "daemon answered more lines than were sent".to_string())?;
        stats
            .hist
            .record(sent_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        stats.received += 1;
        if line.starts_with("{\"error\"") {
            stats.errors += 1;
        }
    }
    Ok(stats)
}

/// Sends on a fixed schedule; latency is measured from the scheduled send
/// time so queueing delay counts (no coordinated omission).
fn open_loop(
    mut conn: Conn,
    rate_per_conn: f64,
    quota: u64,
    mut gen: RequestGen,
) -> Result<ConnStats, String> {
    let mut reader = BufReader::new(conn.split_reader().map_err(|e| e.to_string())?);
    let (sched_tx, sched_rx) = mpsc::channel::<Instant>();

    let writer = std::thread::spawn(move || -> Result<u64, String> {
        let start = Instant::now();
        let mut sent = 0u64;
        for i in 0..quota {
            let due = start + Duration::from_nanos((i as f64 * 1e9 / rate_per_conn) as u64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            conn.write_all(gen.next_line()?.as_bytes())
                .map_err(|e| format!("write: {e}"))?;
            // Latency anchors to the *scheduled* time even when the writer
            // itself fell behind.
            if sched_tx.send(due).is_err() {
                break;
            }
            sent += 1;
        }
        Ok(sent)
    });

    let mut stats = ConnStats {
        hist: LogHistogram::new(),
        sent: 0,
        received: 0,
        errors: 0,
    };
    let mut line = String::new();
    for _ in 0..quota {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            break;
        }
        let due = sched_rx.recv().map_err(|e| format!("schedule: {e}"))?;
        stats
            .hist
            .record(due.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        stats.received += 1;
        if line.starts_with("{\"error\"") {
            stats.errors += 1;
        }
    }
    stats.sent = writer
        .join()
        .map_err(|_| "open-loop writer panicked".to_string())??;
    Ok(stats)
}
