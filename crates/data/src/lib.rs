//! Synthetic long-tail recommendation datasets.
//!
//! The paper evaluates on MovieLens-100K, MovieLens-1M and Amazon Digital
//! Music. Those downloads are not available here, so this crate generates
//! *synthetic equivalents*: implicit-feedback datasets whose item-popularity
//! distribution is Zipf-shaped and calibrated to the paper's Fig. 3 property —
//! the top 15% of items carry more than 50% of all interactions — and whose
//! user/item/interaction counts match Table VIII. Every mechanism the paper
//! analyses (Δ-Norm mining, popularity bias, user-embedding closeness, the
//! p_j probabilities of Eq. 11–13) depends only on this distributional shape,
//! which is what the generator reproduces. See DESIGN.md §3.
//!
//! Layout:
//! - [`dataset`]: the immutable interaction store ([`Dataset`]) in per-user
//!   sorted adjacency form, with popularity counts and membership queries.
//! - [`popularity`]: Zipf weights and weighted sampling without replacement.
//! - [`synth`]: the generator ([`synth::generate`]) driven by a [`DatasetSpec`].
//! - [`split`]: leave-one-out train/test splitting (paper Section VII-A1).
//! - [`sampling`]: per-round negative sampling at ratio `q` (Section III-A).
//! - [`presets`]: the three paper-scale specs plus scaled-down CI variants.
//! - [`stats`]: Table VIII / Fig. 3 style dataset statistics.

pub mod dataset;
pub mod movielens;
pub mod popularity;
pub mod presets;
pub mod sampling;
pub mod split;
pub mod stats;
pub mod synth;

pub use dataset::Dataset;
pub use movielens::{load_path as load_movielens, LoadOptions};
pub use presets::{DataSource, DatasetSpec};
pub use sampling::NegativeSampler;
pub use split::{leave_one_out, TrainTestSplit};
pub use stats::DatasetStats;
