//! Federation-protocol invariants that span crates: wire codec on real
//! uploads, thread-count independence, malicious-population accounting.

use pieck_frs::attacks::AttackKind;
use pieck_frs::data::{synth, DatasetSpec};
use pieck_frs::experiments::scenario::{build_simulation, build_world};
use pieck_frs::experiments::{paper_scenario, PaperDataset};
use pieck_frs::federation::{wire, BenignClient, Client, RoundContext};
use pieck_frs::linalg::SeedStream;
use pieck_frs::model::{GlobalModel, LossKind, ModelConfig, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn real_client_uploads_survive_wire_roundtrip() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = Arc::new(synth::generate(&DatasetSpec::tiny(), &mut rng));
    for config in [ModelConfig::mf(8), ModelConfig::ncf(8)] {
        let model = GlobalModel::new(&config, data.n_items(), &mut rng);
        let mut client = BenignClient::new(0, Arc::clone(&data), 8, 0.1, 3);
        let ctx = RoundContext::new(0, 1.0, 1.0, 1, LossKind::Bce, SeedStream::new(4));
        let upload = client.local_round(&ctx, &model);
        let decoded = wire::decode(wire::encode(&upload)).expect("roundtrip");
        assert_eq!(upload, decoded, "{:?}", config.kind);
        assert_eq!(wire::encode(&upload).len(), wire::encoded_size(&upload));
    }
}

#[test]
fn thread_count_does_not_change_results() {
    use pieck_frs::federation::{CoreBudget, RoundThreads};

    let build = |round_threads: RoundThreads, lease_from: Option<&CoreBudget>| {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.1, 3);
        cfg.attack = AttackKind::PieckUea.into();
        cfg.federation.round_threads = round_threads;
        let (_, split, targets) = build_world(&cfg);
        let train = Arc::new(split.train);
        let mut sim = build_simulation(&cfg, train, &targets);
        sim.set_core_lease(lease_from.map(CoreBudget::lease));
        sim.run(15);
        sim.model().items().clone()
    };
    let budget = CoreBudget::new(4);
    let sequential = build(RoundThreads::Fixed(1), None);
    assert_eq!(sequential, build(RoundThreads::Fixed(4), None));
    assert_eq!(sequential, build(RoundThreads::Auto, Some(&budget)));
}

#[test]
fn malicious_population_matches_ratio() {
    let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.1, 4);
    cfg.attack = AttackKind::PieckUea.into();
    cfg.malicious_ratio = 0.10;
    let (_, split, targets) = build_world(&cfg);
    let train = Arc::new(split.train);
    let n_benign = train.n_users();
    let sim = build_simulation(&cfg, train, &targets);
    let n_mal = sim.malicious_ids().len();
    let ratio = n_mal as f64 / (n_benign + n_mal) as f64;
    assert!((ratio - 0.10).abs() < 0.02, "p̃ = {ratio}");
    assert_eq!(sim.n_clients(), n_benign + n_mal);
}

#[test]
fn malicious_sampling_rate_converges_to_ratio() {
    let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, 0.1, 5);
    cfg.attack = AttackKind::PieckIpe.into();
    cfg.malicious_ratio = 0.05;
    let (_, split, targets) = build_world(&cfg);
    let train = Arc::new(split.train);
    let mut sim = build_simulation(&cfg, train, &targets);
    sim.run(60);
    let rate = sim.stats().malicious_selection_rate();
    assert!(
        (rate - 0.05).abs() < 0.03,
        "empirical selection rate {rate}"
    );
}
