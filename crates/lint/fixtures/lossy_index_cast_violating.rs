//! Violating fixture: silently truncating index casts.

pub fn item_id(index: usize) -> u32 {
    index as u32
}

pub fn delta(count: usize) -> i32 {
    count as i32
}
