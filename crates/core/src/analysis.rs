//! Section V-A as executable code: why server-side filtering cannot stop
//! PIECK.
//!
//! For a target item `v_j`, the expected fraction of *poisonous* gradients
//! among all gradients the server receives for `v_j` in a round is (Eq. 11):
//!
//! `Ẽ(v_j) = p̃ / ((1 − p̃)·p_j + p̃)`
//!
//! where `p_j` (Eq. 12–13) is the probability that a benign user's round
//! dataset contains `v_j`:
//!
//! `p_j = (1/|Ū|) Σ_i p_ij`, with `p_ij = q·|D⁺_i| / (|V| − |D⁺_i|)` for an
//! uninteracted item and 1 for an interacted one.
//!
//! A majority-seeking defense (e.g. Median) needs `Ẽ(v_j) < 0.5`, i.e.
//! `p_j > p̃/(1−p̃)` — and for cold target items `p_j` is tiny, so the
//! requirement fails: the poison *is* the majority. [`DefenseFeasibility`]
//! evaluates exactly this, per item, for a concrete dataset.

use frs_data::{Dataset, NegativeSampler};
use serde::{Deserialize, Serialize};

/// Eq. 13: probability that `item` appears in benign user `user`'s round
/// dataset (1 if interacted, else the negative-sampling inclusion rate).
pub fn p_ij(data: &Dataset, sampler: &NegativeSampler, user: usize, item: u32) -> f64 {
    sampler.inclusion_probability(data, user, item)
}

/// Eq. 12: mean of `p_ij` over all (benign) users.
pub fn p_j(data: &Dataset, sampler: &NegativeSampler, item: u32) -> f64 {
    let n = data.n_users();
    if n == 0 {
        return 0.0;
    }
    // lint:allow(float-reduction-order): sequential fold in ascending user order — the range pins the order
    (0..n).map(|u| p_ij(data, sampler, u, item)).sum::<f64>() / n as f64
}

/// Eq. 11: expected poisonous-gradient fraction for `item` at malicious
/// ratio `p̃`.
pub fn expected_poison_fraction(pj: f64, malicious_ratio: f64) -> f64 {
    let p = malicious_ratio.clamp(0.0, 1.0);
    if p == 0.0 {
        return 0.0;
    }
    p / ((1.0 - p) * pj + p)
}

/// The feasibility verdict for one item under a majority-seeking defense.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DefenseFeasibility {
    pub item: u32,
    /// Eq. 12 probability that a benign round-dataset contains the item.
    pub p_j: f64,
    /// Eq. 11 expected poisonous fraction of the item's gradients.
    pub expected_poison_fraction: f64,
    /// Whether a majority-based defense can work (`Ẽ(v_j) < 0.5`).
    pub majority_defense_feasible: bool,
}

impl DefenseFeasibility {
    /// Evaluates Eq. 11–13 for `item` on a concrete dataset.
    pub fn evaluate(data: &Dataset, q: usize, malicious_ratio: f64, item: u32) -> Self {
        let sampler = NegativeSampler::new(q.max(1));
        let pj = p_j(data, &sampler, item);
        let e = expected_poison_fraction(pj, malicious_ratio);
        Self {
            item,
            p_j: pj,
            expected_poison_fraction: e,
            majority_defense_feasible: e < 0.5,
        }
    }
}

/// The paper's contradiction argument made concrete: the minimum `p_j` a
/// majority defense requires at ratio `p̃` is `p̃/(1−p̃)`; returns that bound.
pub fn required_p_j(malicious_ratio: f64) -> f64 {
    let p = malicious_ratio.clamp(0.0, 0.999);
    p / (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_data::{synth, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> Dataset {
        synth::generate(&DatasetSpec::tiny(), &mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn eq11_limits() {
        // p_j = 1 (everyone uploads): Ẽ = p̃ exactly (the conventional-FL case).
        assert!((expected_poison_fraction(1.0, 0.05) - 0.05).abs() < 1e-12);
        // p_j → 0: Ẽ → 1 (poison is everything).
        assert!(expected_poison_fraction(1e-9, 0.05) > 0.99);
        // No malicious users: Ẽ = 0.
        assert_eq!(expected_poison_fraction(0.5, 0.0), 0.0);
    }

    #[test]
    fn eq11_monotone_decreasing_in_pj() {
        let e1 = expected_poison_fraction(0.01, 0.05);
        let e2 = expected_poison_fraction(0.1, 0.05);
        let e3 = expected_poison_fraction(0.9, 0.05);
        assert!(e1 > e2 && e2 > e3);
    }

    #[test]
    fn cold_items_have_poison_majority() {
        let data = world();
        let cold = data.coldest_items(1)[0];
        let verdict = DefenseFeasibility::evaluate(&data, 1, 0.05, cold);
        // Tiny preset: |D+| ≈ 25 of 120 items → p_j ≈ 25/95 ≈ 0.26 for the
        // cold item; Ẽ ≈ 0.05/(0.95·0.26+0.05) ≈ 0.17. The *shape* to check:
        // Ẽ is far above the conventional-FL p̃ = 5%.
        assert!(verdict.expected_poison_fraction > 2.0 * 0.05);
        assert!(verdict.p_j < 0.5);
    }

    #[test]
    fn popular_items_are_defensible_cold_less_so() {
        let data = world();
        let popular = data.popularity_ranking()[0];
        let cold = data.coldest_items(1)[0];
        let vp = DefenseFeasibility::evaluate(&data, 1, 0.05, popular);
        let vc = DefenseFeasibility::evaluate(&data, 1, 0.05, cold);
        assert!(vp.p_j > vc.p_j, "popular items are in more round datasets");
        assert!(
            vp.expected_poison_fraction < vc.expected_poison_fraction,
            "poison dilutes on popular items"
        );
    }

    #[test]
    fn sparse_real_scale_breaks_majority_defenses() {
        // At ML-100K-like sparsity (|D+| ≪ |V|), p_j for a cold item falls
        // below the p̃/(1−p̃) bound even at 5% malicious — the paper's
        // MEDIAN contradiction.
        let spec = DatasetSpec::ml100k_like().scaled(0.3);
        let data = synth::generate(&spec, &mut StdRng::seed_from_u64(4));
        let cold = data.coldest_items(1)[0];
        let verdict = DefenseFeasibility::evaluate(&data, 1, 0.2, cold);
        assert!(
            verdict.p_j < required_p_j(0.2),
            "p_j {} vs bound {}",
            verdict.p_j,
            required_p_j(0.2)
        );
        assert!(!verdict.majority_defense_feasible);
    }

    #[test]
    fn required_pj_bound() {
        assert!(
            (required_p_j(0.5) - 1.0).abs() < 1e-12,
            "p̃=0.5 ⇒ p_j > 1: impossible"
        );
        assert!((required_p_j(0.05) - 0.0526).abs() < 1e-3);
    }

    #[test]
    fn empirical_pj_matches_analytic() {
        // Sample actual round datasets and compare inclusion frequency to p_j.
        let data = world();
        let sampler = NegativeSampler::new(1);
        let cold = data.coldest_items(1)[0];
        let analytic = p_j(&data, &sampler, cold);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 300;
        let mut hits = 0usize;
        for _ in 0..trials {
            for u in 0..data.n_users() {
                if data.interacted(u, cold) || sampler.sample(&data, u, &mut rng).contains(&cold) {
                    hits += 1;
                }
            }
        }
        let empirical = hits as f64 / (trials * data.n_users()) as f64;
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
    }
}
