//! Coordinate-wise Median and TrimmedMean \[40\].
//!
//! Both reduce the gradients *per item, per coordinate, over the clients that
//! uploaded for that item* (items nobody touched simply don't update). The
//! MLP parameters of DL-FRS get the same treatment over their flattened
//! vectors. Both assume benign values form the majority per coordinate —
//! which Eq. (11) shows is barely true or false for cold target items under
//! PIECK, and TrimmedMean's fixed trim budget is easily outnumbered.

use frs_federation::{gather_item_gradients_refs, gather_mlp_gradients_refs, Aggregator};
use frs_linalg::{coordinate_median, coordinate_trimmed_mean};
use frs_model::GlobalGradients;

/// Applies a per-item coordinate reduction plus the same rule on the MLP,
/// over a *selection* of uploads by reference (so Bulyan can reduce its
/// Krum-selected subset without cloning a single upload). The closure returns
/// the final — already rescaled — combined vector for one gradient group.
///
/// On rescaling: the undefended baseline aggregator is a *sum*, so a
/// mean-like statistic must be scaled back to sum magnitude or the server's
/// effective learning rate collapses by a factor of the batch size and the
/// recommender never trains (which would make every ER comparison
/// meaningless). Median/TrimmedMean rescale by the uploader count; Bulyan by
/// its post-trim kept count.
pub(crate) fn reduce_upload_refs(
    uploads: &[&GlobalGradients],
    reduce: impl Fn(&[&[f32]]) -> Vec<f32>,
) -> GlobalGradients {
    let mut out = GlobalGradients::new();
    for (item, grads) in gather_item_gradients_refs(uploads) {
        out.items.insert(item, reduce(&grads));
    }
    let mlp_uploads = gather_mlp_gradients_refs(uploads);
    if let Some(first) = mlp_uploads.first() {
        let flats: Vec<Vec<f32>> = mlp_uploads.iter().map(|m| m.flatten()).collect();
        let refs: Vec<&[f32]> = flats.iter().map(|f| f.as_slice()).collect();
        out.mlp = Some(first.unflatten_like(&reduce(&refs)));
    }
    out
}

/// Coordinate-wise median over each item's uploaders.
#[derive(Debug, Clone, Copy, Default)]
pub struct Median;

impl Aggregator for Median {
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients {
        let refs: Vec<&GlobalGradients> = uploads.iter().collect();
        reduce_upload_refs(&refs, |grads| {
            let mut combined = coordinate_median(grads);
            frs_linalg::scale(&mut combined, grads.len() as f32);
            combined
        })
    }

    fn name(&self) -> &'static str {
        "Median"
    }
}

/// Coordinate-wise trimmed mean: drop the `trim_ratio` fraction of extreme
/// values on each side, average the survivors.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    /// Fraction (of an item's uploaders) trimmed from *each* side per
    /// coordinate — matched to the assumed malicious ratio `p̃`.
    pub trim_ratio: f64,
}

impl TrimmedMean {
    /// Creates the defense; `trim_ratio` must be in `[0, 0.5)`.
    pub fn new(trim_ratio: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&trim_ratio),
            "trim ratio must be in [0, 0.5)"
        );
        Self { trim_ratio }
    }
}

impl Aggregator for TrimmedMean {
    fn aggregate(&self, uploads: &[GlobalGradients]) -> GlobalGradients {
        let refs: Vec<&GlobalGradients> = uploads.iter().collect();
        reduce_upload_refs(&refs, |grads| {
            let trim = ((grads.len() as f64) * self.trim_ratio).ceil() as usize;
            let mut combined = coordinate_trimmed_mean(grads, trim);
            frs_linalg::scale(&mut combined, grads.len() as f32);
            combined
        })
    }

    fn name(&self) -> &'static str {
        "TrimmedMean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(pairs: &[(u32, Vec<f32>)]) -> GlobalGradients {
        let mut g = GlobalGradients::new();
        for (item, grad) in pairs {
            g.add_item_grad(*item, grad);
        }
        g
    }

    #[test]
    fn median_resists_minority_outlier() {
        let uploads = vec![
            upload(&[(0, vec![0.10, -0.10])]),
            upload(&[(0, vec![0.12, -0.08])]),
            upload(&[(0, vec![0.09, -0.11])]),
            upload(&[(0, vec![100.0, -100.0])]),
        ];
        let out = Median.aggregate(&uploads);
        // 4 uploaders: median ≈ 0.1 rescaled by 4 ⇒ ≈ 0.4, far below poison.
        assert!(out.items[&0][0] < 1.0, "{:?}", out.items[&0]);
        assert!(out.items[&0][1] > -1.0);
    }

    #[test]
    fn median_follows_poisonous_majority() {
        // The PIECK situation: 3 poisonous vs 1 benign upload for a cold item.
        let uploads = vec![
            upload(&[(0, vec![5.0])]),
            upload(&[(0, vec![5.1])]),
            upload(&[(0, vec![4.9])]),
            upload(&[(0, vec![-0.01])]),
        ];
        let out = Median.aggregate(&uploads);
        assert!(out.items[&0][0] > 4.0, "majority poison wins under median");
    }

    #[test]
    fn median_is_per_item_over_uploaders_only() {
        // Item 1 uploaded by one client only — it still updates.
        let uploads = vec![
            upload(&[(0, vec![1.0]), (1, vec![7.0])]),
            upload(&[(0, vec![3.0])]),
        ];
        let out = Median.aggregate(&uploads);
        // Rescaled by uploader count: median(1,3)=2 ×2 = 4; single upload ×1.
        assert_eq!(out.items[&0], vec![4.0]);
        assert_eq!(out.items[&1], vec![7.0]);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let uploads: Vec<GlobalGradients> = [0.0f32, 10.0, 10.0, 10.0, 1000.0]
            .iter()
            .map(|&v| upload(&[(0, vec![v])]))
            .collect();
        // n=5, trim=ceil(5·0.25)=2 per side → middle value 10, rescaled ×5.
        let out = TrimmedMean::new(0.25).aggregate(&uploads);
        assert_eq!(out.items[&0], vec![50.0]);
    }

    #[test]
    fn trimmed_mean_small_trim_leaks_poison_cluster() {
        // 3 poison vs 4 benign with a 5% trim: one extreme dropped per side,
        // poison majority of survivors persists — the Table IV failure mode.
        let uploads: Vec<GlobalGradients> = [5.0f32, 5.1, 4.9, -0.01, 0.0, 0.01, -0.02]
            .iter()
            .map(|&v| upload(&[(0, vec![v])]))
            .collect();
        let out = TrimmedMean::new(0.05).aggregate(&uploads);
        assert!(out.items[&0][0] > 1.0, "poison leaks: {:?}", out.items[&0]);
    }

    #[test]
    #[should_panic(expected = "trim ratio")]
    fn half_trim_rejected() {
        TrimmedMean::new(0.5);
    }
}
