//! Fixture: a bare waiver — it silences nothing and is itself flagged.

pub fn item_id(index: usize) -> u32 {
    index as u32 // lint:allow(lossy-index-cast)
}
