//! Dataset statistics (Table VIII and Fig. 3 views).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Summary statistics of a dataset, as reported in the paper's Table VIII,
/// plus the popularity-concentration curve behind Fig. 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    pub n_users: usize,
    pub n_items: usize,
    pub n_interactions: usize,
    /// Interactions per user ("Rate").
    pub rate: f64,
    /// `1 − interactions/(users·items)` ("Sparsity").
    pub sparsity: f64,
    /// Item interaction counts sorted descending (the Fig. 3 curve).
    pub popularity_curve: Vec<u32>,
}

impl DatasetStats {
    /// Computes all statistics in one pass.
    pub fn compute(data: &Dataset) -> Self {
        let n_users = data.n_users();
        let n_items = data.n_items();
        let n_interactions = data.n_interactions();
        let mut popularity_curve = data.item_popularity().to_vec();
        popularity_curve.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            n_users,
            n_items,
            n_interactions,
            rate: n_interactions as f64 / n_users.max(1) as f64,
            sparsity: 1.0 - n_interactions as f64 / (n_users.max(1) * n_items.max(1)) as f64,
            popularity_curve,
        }
    }

    /// Fraction of interactions carried by the `top_fraction` most popular
    /// items. Fig. 3's blue/red dotted lines: `head_share(0.15) > 0.5`.
    pub fn head_share(&self, top_fraction: f64) -> f64 {
        if self.n_interactions == 0 {
            return 0.0;
        }
        let head = ((self.n_items as f64 * top_fraction).ceil() as usize).min(self.n_items);
        let head_sum: u64 = self.popularity_curve[..head]
            .iter()
            .map(|&c| c as u64)
            .sum::<u64>();
        head_sum as f64 / self.n_interactions as f64
    }

    /// Smallest fraction of items (by popularity) that covers `share` of all
    /// interactions — the inverse view of [`Self::head_share`].
    pub fn items_covering(&self, share: f64) -> f64 {
        if self.n_interactions == 0 {
            return 0.0;
        }
        let target = share * self.n_interactions as f64;
        let mut acc = 0u64;
        for (idx, &c) in self.popularity_curve.iter().enumerate() {
            acc += c as u64;
            if acc as f64 >= target {
                return (idx + 1) as f64 / self.n_items as f64;
            }
        }
        1.0
    }

    /// Number of items with at least one interaction.
    pub fn active_items(&self) -> usize {
        self.popularity_curve.iter().take_while(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DatasetSpec;
    use crate::synth::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_counts() {
        let d = Dataset::from_user_items(4, vec![vec![0, 1], vec![1]]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.n_interactions, 3);
        assert!((s.rate - 1.5).abs() < 1e-12);
        assert!((s.sparsity - (1.0 - 3.0 / 8.0)).abs() < 1e-12);
        assert_eq!(s.popularity_curve, vec![2, 1, 0, 0]);
    }

    #[test]
    fn head_share_full_is_one() {
        let d = Dataset::from_user_items(4, vec![vec![0, 1], vec![1]]);
        let s = DatasetStats::compute(&d);
        assert!((s.head_share(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn items_covering_inverse_of_head_share() {
        let d = generate(&DatasetSpec::tiny(), &mut StdRng::seed_from_u64(1));
        let s = DatasetStats::compute(&d);
        let frac = s.items_covering(0.5);
        // That fraction of items should indeed cover ≥ 50%.
        assert!(s.head_share(frac) >= 0.5 - 1e-9);
        assert!(frac > 0.0 && frac <= 1.0);
    }

    #[test]
    fn long_tail_on_tiny_preset() {
        let d = generate(&DatasetSpec::tiny(), &mut StdRng::seed_from_u64(2));
        let s = DatasetStats::compute(&d);
        // Long-tail: half the interactions concentrated well below half the
        // items.
        assert!(s.items_covering(0.5) < 0.5);
    }

    #[test]
    fn active_items_counts_nonzero() {
        let d = Dataset::from_user_items(5, vec![vec![0], vec![0, 2]]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.active_items(), 2);
    }

    #[test]
    fn empty_dataset_is_safe() {
        let d = Dataset::from_user_items(3, vec![]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.head_share(0.5), 0.0);
        assert_eq!(s.items_covering(0.5), 0.0);
    }
}
