//! Table VII: system-setting variations — a large sampling ratio (q = 10)
//! and multiple target items (|T| = 3) — for the PIECK attacks with and
//! without our defense (MF-FRS, ML-100K).
//!
//! Usage: `table7_settings [--scale f] [--rounds n] [--seed s]`

use frs_attacks::AttackKind;
use frs_defense::DefenseKind;
use frs_experiments::report::pct;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_model::ModelKind;

fn main() {
    let args = CommonArgs::parse();
    let rows: [(AttackKind, DefenseKind); 5] = [
        (AttackKind::NoAttack, DefenseKind::NoDefense),
        (AttackKind::PieckIpe, DefenseKind::NoDefense),
        (AttackKind::PieckIpe, DefenseKind::Ours),
        (AttackKind::PieckUea, DefenseKind::NoDefense),
        (AttackKind::PieckUea, DefenseKind::Ours),
    ];

    println!("\n### Table VII — q=10 and |T|=3 (MF-FRS, ml100k-like)");
    let mut table = Table::new(&[
        "Attack", "Defense", "q=10 ER", "q=10 HR", "|T|=3 ER", "|T|=3 HR",
    ]);
    for (attack, defense) in rows {
        let mut cells = vec![attack.label().to_string(), defense.label().to_string()];
        // Column pair 1: q = 10.
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
        cfg.attack = attack;
        cfg.defense = defense;
        cfg.federation.negative_ratio = 10;
        cfg.rounds = args.rounds_or(150);
        cfg.mined_top_n = if attack == AttackKind::PieckUea { 15 } else { 10 };
        let out = run(&cfg);
        cells.push(pct(out.er_percent));
        cells.push(pct(out.hr_percent));
        // Column pair 2: |T| = 3 (Train-One-Then-Copy).
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
        cfg.attack = attack;
        cfg.defense = defense;
        cfg.n_targets = 3;
        cfg.rounds = args.rounds_or(150);
        cfg.mined_top_n = if attack == AttackKind::PieckUea { 30 } else { 10 };
        let out = run(&cfg);
        cells.push(pct(out.er_percent));
        cells.push(pct(out.hr_percent));
        table.row(&cells);
    }
    print!("{}", table.to_markdown());
}
