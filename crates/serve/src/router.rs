//! Multi-scenario routing: one daemon, several models behind one listener.
//!
//! A [`ScenarioHandle`] bundles everything the daemon tracks per hosted
//! scenario — its epoch-swapped [`SnapshotCell`], a query counter, and the
//! latest online-evaluation probe. A [`Router`] owns one handle per
//! scenario, keyed by name; requests carrying `{"scenario":...}` resolve to
//! the named handle, requests without one resolve to the first (default)
//! scenario, which is exactly the sole scenario for single-model daemons —
//! so clients written against the pre-routing protocol keep working.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::snapshot::{Snapshot, SnapshotCell};
use crate::wire::{ProbeStatus, ScenarioStatus};

/// One hosted scenario: name, live snapshot cell, and serving counters.
#[derive(Debug)]
pub struct ScenarioHandle {
    name: String,
    cell: SnapshotCell,
    queries: AtomicU64,
    probe: Mutex<Option<ProbeStatus>>,
}

impl ScenarioHandle {
    /// A handle primed with the scenario's initial snapshot.
    pub fn new(name: impl Into<String>, initial: Snapshot) -> Self {
        Self {
            name: name.into(),
            cell: SnapshotCell::new(initial),
            queries: AtomicU64::new(0),
            probe: Mutex::new(None),
        }
    }

    /// The routing key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publishes a new snapshot epoch (delegates to the cell).
    pub fn publish(&self, snapshot: Snapshot) {
        self.cell.publish(snapshot);
    }

    /// The latest snapshot (an `Arc` clone, never blocks the trainer).
    pub fn latest(&self) -> Arc<Snapshot> {
        self.cell.latest()
    }

    /// Top-K queries this scenario has answered.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::SeqCst)
    }

    pub(crate) fn count_query(&self) {
        self.queries.fetch_add(1, Ordering::SeqCst);
    }

    /// Publishes the latest online-evaluation probe values. The slot holds
    /// a plain value swap, so a poisoned lock (a panicked writer) leaves
    /// nothing half-updated — recover the guard rather than spreading the
    /// panic into every serving thread that reads a probe afterwards.
    pub fn set_probe(&self, probe: ProbeStatus) {
        *self.probe.lock().unwrap_or_else(PoisonError::into_inner) = Some(probe);
    }

    /// The latest probe, if any round has been probed yet.
    pub fn probe(&self) -> Option<ProbeStatus> {
        self.probe
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// This scenario's status-endpoint entry.
    pub fn status(&self) -> ScenarioStatus {
        let snapshot = self.cell.latest();
        ScenarioStatus {
            name: self.name.clone(),
            epoch: self.cell.epoch(),
            round: snapshot.round(),
            training_done: snapshot.training_done(),
            n_users: snapshot.n_users(),
            n_items: snapshot.n_items(),
            queries_served: self.queries_served(),
            probe: self.probe(),
        }
    }
}

/// The daemon's scenario table. Registration order is protocol-visible:
/// the first scenario is the default route and leads the status listing.
#[derive(Debug)]
pub struct Router {
    scenarios: Vec<Arc<ScenarioHandle>>,
    total_queries: AtomicU64,
}

impl Router {
    /// Builds a router over `scenarios`. At least one scenario is required
    /// and names must be unique (they are the routing keys).
    pub fn new(scenarios: Vec<Arc<ScenarioHandle>>) -> Result<Self, String> {
        if scenarios.is_empty() {
            return Err("a daemon needs at least one scenario".into());
        }
        for (i, handle) in scenarios.iter().enumerate() {
            if scenarios.iter().take(i).any(|h| h.name() == handle.name()) {
                return Err(format!("duplicate scenario name `{}`", handle.name()));
            }
        }
        Ok(Self {
            scenarios,
            total_queries: AtomicU64::new(0),
        })
    }

    /// A single-scenario router (the pre-routing daemon shape). Built
    /// directly — a one-element table needs neither the emptiness nor the
    /// duplicate-name check, so there is no error path to unwrap.
    pub fn single(name: impl Into<String>, initial: Snapshot) -> (Self, Arc<ScenarioHandle>) {
        let handle = Arc::new(ScenarioHandle::new(name, initial));
        let router = Self {
            scenarios: vec![Arc::clone(&handle)],
            total_queries: AtomicU64::new(0),
        };
        (router, handle)
    }

    /// Every hosted scenario, registration order.
    pub fn scenarios(&self) -> &[Arc<ScenarioHandle>] {
        &self.scenarios
    }

    /// The default scenario (first registered). Both constructors
    /// guarantee at least one scenario, so the emptiness arm is
    /// unreachable in practice — but a daemon answers it as a protocol
    /// error rather than trusting an invariant with a worker thread.
    pub fn default_scenario(&self) -> Result<&Arc<ScenarioHandle>, String> {
        self.scenarios
            .first()
            .ok_or_else(|| "daemon hosts no scenarios".to_string())
    }

    /// Resolves a request's scenario key: `None` routes to the default,
    /// an unknown name is a protocol error listing what is being served.
    pub fn resolve(&self, scenario: Option<&str>) -> Result<&Arc<ScenarioHandle>, String> {
        match scenario {
            None => self.default_scenario(),
            Some(name) => self
                .scenarios
                .iter()
                .find(|h| h.name() == name)
                .ok_or_else(|| {
                    let names: Vec<&str> = self.scenarios.iter().map(|h| h.name()).collect();
                    format!("unknown scenario `{name}` (serving: {})", names.join(", "))
                }),
        }
    }

    /// Top-K queries answered across all scenarios.
    pub fn queries_served(&self) -> u64 {
        self.total_queries.load(Ordering::SeqCst)
    }

    pub(crate) fn count_query(&self, handle: &ScenarioHandle) {
        handle.count_query();
        self.total_queries.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_data::Dataset;
    use frs_model::{EmbeddingStore, GlobalModel, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snap(round: usize) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(3);
        let model = GlobalModel::new(&ModelConfig::mf(4), 6, &mut rng);
        let train = Arc::new(Dataset::from_user_items(6, vec![vec![0], vec![1]]));
        let users = EmbeddingStore::from_rows(vec![vec![0.2; 4], vec![0.4; 4]]);
        Snapshot::new(round, false, model, users, train)
    }

    #[test]
    fn resolves_default_named_and_unknown() {
        let a = Arc::new(ScenarioHandle::new("a", snap(1)));
        let b = Arc::new(ScenarioHandle::new("b", snap(2)));
        let router = Router::new(vec![a, b]).unwrap();

        assert_eq!(router.resolve(None).unwrap().name(), "a", "default=first");
        assert_eq!(router.resolve(Some("b")).unwrap().name(), "b");
        let err = router.resolve(Some("c")).unwrap_err();
        assert!(err.contains("unknown scenario `c`"), "{err}");
        assert!(err.contains("a, b"), "error lists what is served: {err}");
    }

    #[test]
    fn rejects_empty_and_duplicate_registrations() {
        assert!(Router::new(Vec::new()).is_err());
        let dup = Router::new(vec![
            Arc::new(ScenarioHandle::new("x", snap(0))),
            Arc::new(ScenarioHandle::new("x", snap(0))),
        ]);
        assert!(dup.unwrap_err().contains("duplicate"));
    }

    #[test]
    fn counters_track_per_scenario_and_total() {
        let (router, handle) = Router::single("only", snap(0));
        router.count_query(&handle);
        router.count_query(&handle);
        assert_eq!(handle.queries_served(), 2);
        assert_eq!(router.queries_served(), 2);
    }

    #[test]
    fn status_carries_epoch_and_probe() {
        let handle = ScenarioHandle::new("s", snap(0));
        assert_eq!(handle.status().epoch, 0);
        assert!(handle.status().probe.is_none());

        handle.publish(snap(1));
        handle.set_probe(ProbeStatus {
            round: 1,
            er_percent: 2.0,
            hr_percent: 8.5,
        });
        let status = handle.status();
        assert_eq!((status.epoch, status.round), (1, 1));
        assert_eq!(status.probe.unwrap().round, 1);
    }
}
