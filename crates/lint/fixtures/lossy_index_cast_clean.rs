//! Clean fixture: checked narrowing and lossless widening.

pub fn item_id(index: usize) -> Option<u32> {
    u32::try_from(index).ok()
}

pub fn widen(id: u32) -> u64 {
    u64::from(id)
}
