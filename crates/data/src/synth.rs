//! The synthetic dataset generator.
//!
//! Generation recipe (all draws from one seeded RNG):
//!
//! 1. Assign each *item id* a popularity rank by shuffling `0..n_items` — so
//!    popular items are scattered across the id space exactly like a real
//!    catalogue (id order carries no popularity signal the miner could cheat
//!    on).
//! 2. Zipf weights over popularity ranks give the item-sampling distribution.
//! 3. Split the interaction budget across users by Zipf-weighted user
//!    activity, floored at `min_interactions_per_user` and capped at
//!    `n_items` (a user cannot interact with more items than exist).
//! 4. For each user, draw that many *distinct* items from the item
//!    distribution.
//!
//! The result reproduces the two marginals the paper's analysis depends on
//! (long-tail item popularity, long-tail user activity) with independent
//! user/item coupling, which is the standard null model for implicit-feedback
//! data.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::popularity::{zipf_weights, CumulativeSampler};
use crate::presets::DatasetSpec;

/// Generates a dataset according to `spec`, deterministically in `rng`.
pub fn generate<R: Rng + ?Sized>(spec: &DatasetSpec, rng: &mut R) -> Dataset {
    assert!(spec.n_users > 0 && spec.n_items > 0);
    assert!(
        spec.min_interactions_per_user >= 2,
        "need ≥2 interactions per user for leave-one-out"
    );
    assert!(
        spec.min_interactions_per_user <= spec.n_items,
        "cannot give each user more interactions than items exist"
    );

    // Step 1: scatter popularity ranks across item ids.
    // lint:allow(lossy-index-cast): synthesis specs are validated against the u32 id space before generation
    let mut rank_to_item: Vec<u32> = (0..spec.n_items as u32).collect();
    rank_to_item.shuffle(rng);

    // Step 2: item distribution over ranks.
    let item_sampler = CumulativeSampler::new(&zipf_weights(spec.n_items, spec.item_zipf_exponent));

    // Step 3: per-user interaction budgets.
    let budgets = user_budgets(spec, rng);

    // Step 4: draw each user's distinct item set.
    let user_items: Vec<Vec<u32>> = budgets
        .iter()
        .map(|&k| {
            item_sampler
                .sample_distinct(k, rng)
                .into_iter()
                .map(|rank| rank_to_item[rank])
                .collect()
        })
        .collect();

    Dataset::from_user_items(spec.n_items, user_items)
}

/// Splits `spec.n_interactions` across users with Zipf-weighted activity,
/// respecting the per-user floor and the `n_items` cap.
fn user_budgets<R: Rng + ?Sized>(spec: &DatasetSpec, rng: &mut R) -> Vec<usize> {
    let n = spec.n_users;
    let floor = spec.min_interactions_per_user;
    let cap = spec.n_items;
    let total = spec.n_interactions.max(n * floor);

    // Shuffle activity ranks over users (user id 0 shouldn't always be the
    // power user).
    let mut rank_of_user: Vec<usize> = (0..n).collect();
    rank_of_user.shuffle(rng);

    let weights = zipf_weights(n, spec.user_zipf_exponent);
    let weight_sum = weights.iter().sum::<f64>(); // lint:allow(float-reduction-order): sequential fold in ascending rank order over the Zipf table

    let spare = total.saturating_sub(n * floor) as f64;
    let mut budgets = vec![floor; n];
    for (user, &rank) in rank_of_user.iter().enumerate() {
        let extra = (spare * weights[rank] / weight_sum).round() as usize;
        budgets[user] = (floor + extra).min(cap);
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen_tiny(seed: u64) -> Dataset {
        let spec = DatasetSpec::tiny();
        generate(&spec, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn respects_shape() {
        let spec = DatasetSpec::tiny();
        let d = gen_tiny(1);
        assert_eq!(d.n_users(), spec.n_users);
        assert_eq!(d.n_items(), spec.n_items);
    }

    #[test]
    fn interaction_count_near_target() {
        let spec = DatasetSpec::tiny();
        let d = gen_tiny(2);
        let got = d.n_interactions() as f64;
        let want = spec.n_interactions as f64;
        assert!(
            (got - want).abs() / want < 0.25,
            "generated {got} vs target {want}"
        );
    }

    #[test]
    fn every_user_has_minimum() {
        let spec = DatasetSpec::tiny();
        let d = gen_tiny(3);
        for u in 0..d.n_users() {
            assert!(
                d.items_of(u).len() >= spec.min_interactions_per_user,
                "user {u} has {}",
                d.items_of(u).len()
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = gen_tiny(7);
        let b = gen_tiny(7);
        for u in 0..a.n_users() {
            assert_eq!(a.items_of(u), b.items_of(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen_tiny(7);
        let b = gen_tiny(8);
        let same = (0..a.n_users()).all(|u| a.items_of(u) == b.items_of(u));
        assert!(!same);
    }

    #[test]
    fn long_tail_property_holds() {
        // Fig. 3: top 15% of items should carry ≥ ~50% of interactions on the
        // ml100k-like preset (use a scaled version to keep the test fast).
        let spec = DatasetSpec::ml100k_like().scaled(0.4);
        let d = generate(&spec, &mut StdRng::seed_from_u64(11));
        let stats = DatasetStats::compute(&d);
        assert!(
            stats.head_share(0.15) > 0.45,
            "top-15% share {}",
            stats.head_share(0.15)
        );
    }

    #[test]
    fn popularity_not_correlated_with_item_id() {
        // The most popular item should rarely be item 0 — popularity ranks
        // are shuffled over ids.
        let mut top_ids = Vec::new();
        for seed in 0..8 {
            let d = gen_tiny(seed);
            top_ids.push(d.popularity_ranking()[0]);
        }
        let all_zero = top_ids.iter().all(|&i| i == 0);
        assert!(!all_zero, "popular item pinned to id 0: {top_ids:?}");
    }
}
