//! `lint.toml`: which rules audit which crates.
//!
//! The committed config is the contract — a rule with no `[rule.<id>]`
//! section runs nowhere, and every key is validated against the builtin
//! registry so a typo ( `crates` vs `crate`, a misspelled rule id, an
//! unknown package name at runtime) is a configuration error (exit 2),
//! never a silently skipped check.
//!
//! ```toml
//! [rule.unseeded-entropy]
//! crates = ["*"]                      # every workspace package…
//! exclude = ["frs-serve", "frs-bench"] # …except these
//! skip_tests = true                    # default: tests/benches/examples
//!                                      # and #[cfg(test)] regions exempt
//! ```

use std::collections::BTreeMap;

use crate::toml_mini;

/// Where one rule applies.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleScope {
    /// Package names, or the single entry `"*"` for every package.
    pub crates: Vec<String>,
    /// Packages carved out of a `"*"` (or explicit) scope.
    pub exclude: Vec<String>,
    /// Skip `tests/`, `benches/`, `examples/` targets and `#[cfg(test)]`
    /// regions (default `true`).
    pub skip_tests: bool,
}

impl RuleScope {
    /// Does this scope cover the named package?
    pub fn covers(&self, package: &str) -> bool {
        if self.exclude.iter().any(|c| c == package) {
            return false;
        }
        self.crates.iter().any(|c| c == "*" || c == package)
    }
}

/// The parsed, validated lint configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// rule id → scope. Only rules present here run at all.
    pub rules: BTreeMap<String, RuleScope>,
}

impl LintConfig {
    /// Parses and validates `lint.toml` text. `known_rules` is the builtin
    /// registry's id list; sections for unknown rules are errors.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Self, String> {
        let doc = toml_mini::parse(text)?;
        let mut rules = BTreeMap::new();
        for (section, entries) in &doc {
            if section.is_empty() {
                for key in entries.keys() {
                    if key != "version" {
                        return Err(format!("unknown top-level key `{key}`"));
                    }
                }
                continue;
            }
            let rule_id = section
                .strip_prefix("rule.")
                .ok_or_else(|| format!("unknown section [{section}] (expected [rule.<id>])"))?;
            if !known_rules.contains(&rule_id) {
                return Err(format!(
                    "[rule.{rule_id}] does not name a builtin rule (known: {})",
                    known_rules.join(", ")
                ));
            }
            let mut scope = RuleScope {
                crates: Vec::new(),
                exclude: Vec::new(),
                skip_tests: true,
            };
            for (key, value) in entries {
                match key.as_str() {
                    "crates" => {
                        scope.crates = value
                            .as_str_array()
                            .ok_or_else(|| format!("[rule.{rule_id}] crates must be an array"))?
                            .to_vec();
                    }
                    "exclude" => {
                        scope.exclude = value
                            .as_str_array()
                            .ok_or_else(|| format!("[rule.{rule_id}] exclude must be an array"))?
                            .to_vec();
                    }
                    "skip_tests" => {
                        scope.skip_tests = value
                            .as_bool()
                            .ok_or_else(|| format!("[rule.{rule_id}] skip_tests must be a bool"))?;
                    }
                    other => {
                        return Err(format!("[rule.{rule_id}] unknown key `{other}`"));
                    }
                }
            }
            if scope.crates.is_empty() {
                return Err(format!(
                    "[rule.{rule_id}] needs a non-empty `crates` list (use [\"*\"] for all)"
                ));
            }
            rules.insert(rule_id.to_string(), scope);
        }
        Ok(Self { rules })
    }

    /// Validates that every crate name the config mentions is a real
    /// workspace package — a renamed crate must not quietly un-scope a rule.
    pub fn check_crate_names(&self, packages: &[String]) -> Result<(), String> {
        for (rule, scope) in &self.rules {
            for name in scope.crates.iter().chain(&scope.exclude) {
                if name != "*" && !packages.iter().any(|p| p == name) {
                    return Err(format!(
                        "[rule.{rule}] names `{name}`, which is not a workspace package \
                         (packages: {})",
                        packages.join(", ")
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOWN: &[&str] = &["map-iter-order", "unseeded-entropy"];

    #[test]
    fn parses_scopes_with_defaults() {
        let cfg = LintConfig::parse(
            "version = 1\n\
             [rule.map-iter-order]\ncrates = [\"*\"]\nexclude = [\"frs-bench\"]\n\
             [rule.unseeded-entropy]\ncrates = [\"frs-data\"]\nskip_tests = false\n",
            KNOWN,
        )
        .unwrap();
        let mio = &cfg.rules["map-iter-order"];
        assert!(mio.covers("frs-data"));
        assert!(!mio.covers("frs-bench"), "excluded from *");
        assert!(mio.skip_tests, "defaults on");
        let entropy = &cfg.rules["unseeded-entropy"];
        assert!(entropy.covers("frs-data"));
        assert!(!entropy.covers("frs-model"));
        assert!(!entropy.skip_tests);
    }

    #[test]
    fn unknown_rule_key_or_section_is_an_error() {
        assert!(LintConfig::parse("[rule.nope]\ncrates = [\"*\"]\n", KNOWN).is_err());
        assert!(LintConfig::parse("[other.thing]\nk = 1\n", KNOWN).is_err());
        assert!(
            LintConfig::parse("[rule.map-iter-order]\ncrate = [\"*\"]\n", KNOWN).is_err(),
            "misspelled `crates` must not silently scope the rule to nothing"
        );
        assert!(LintConfig::parse("[rule.map-iter-order]\ncrates = []\n", KNOWN).is_err());
        assert!(LintConfig::parse("stray = 1\n", KNOWN).is_err());
    }

    #[test]
    fn crate_name_validation() {
        let cfg =
            LintConfig::parse("[rule.map-iter-order]\ncrates = [\"frs-data\"]\n", KNOWN).unwrap();
        assert!(cfg.check_crate_names(&["frs-data".into()]).is_ok());
        assert!(cfg.check_crate_names(&["frs-model".into()]).is_err());
    }
}
