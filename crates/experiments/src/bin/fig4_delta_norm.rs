//! Fig. 4: popularity ranks of the top-50 items by Δ-Norm at rounds 4, 8,
//! 20 and 80, for MF-FRS and DL-FRS — the evidence behind Properties 1–2:
//! popular items dominate the Δ-Norm ranking, persistently.
//!
//! Usage: `fig4_delta_norm [--scale f] [--seed s]`

use frs_experiments::{paper_scenario, CommonArgs, PaperDataset, Table};
use frs_metrics::DeltaNormTracker;
use frs_model::ModelKind;
use std::sync::Arc;

fn main() {
    let args = CommonArgs::parse();
    let snapshots = [4usize, 8, 20, 80];
    let top_k = 50;

    for kind in [ModelKind::Mf, ModelKind::Ncf] {
        let cfg = paper_scenario(PaperDataset::Ml100k, kind, args.scale, args.seed);
        let (_, split, _) = frs_experiments::scenario::build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let popularity_rank = train.popularity_rank_of();
        let n_popular = (train.n_items() as f64 * 0.15).ceil() as usize;
        let mut sim =
            frs_experiments::scenario::build_simulation(&cfg, Arc::clone(&train), &[]);

        println!(
            "\n### Fig. 4 — top-{top_k} Δ-Norm items on {} ({})",
            cfg.dataset.name,
            kind.label()
        );
        let mut table = Table::new(&[
            "Round",
            "popular in top-50 (true top-15%)",
            "median popularity rank",
            "max popularity rank",
        ]);
        let mut tracker = DeltaNormTracker::new(train.n_items());
        tracker.observe(sim.model().items());
        let last = *snapshots.last().unwrap();
        for round in 1..=last {
            sim.run_round();
            tracker.observe(sim.model().items());
            if snapshots.contains(&round) {
                let top = tracker.top_n(top_k);
                let mut ranks: Vec<usize> =
                    top.iter().map(|&j| popularity_rank[j as usize]).collect();
                ranks.sort_unstable();
                let popular_hits = ranks.iter().filter(|&&r| r < n_popular).count();
                table.row(&[
                    round.to_string(),
                    format!("{popular_hits}/{top_k}"),
                    ranks[ranks.len() / 2].to_string(),
                    ranks.last().unwrap().to_string(),
                ]);
                tracker.reset_accumulation();
            }
        }
        print!("{}", table.to_markdown());
    }
}
