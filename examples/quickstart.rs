//! Quickstart: train a federated matrix-factorization recommender on a
//! synthetic long-tail dataset and evaluate recommendation quality.
//!
//! Run with: `cargo run --release --example quickstart`

use pieck_frs::data::{leave_one_out, synth, DatasetSpec};
use pieck_frs::federation::{BenignClient, Client, ClientsPerRound, FederationConfig, Simulation};
use pieck_frs::metrics::QualityReport;
use pieck_frs::model::{GlobalModel, ModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // 1. A synthetic implicit-feedback dataset with a realistic long tail:
    //    top 15% of items carry >50% of the interactions.
    let spec = DatasetSpec::ml100k_like().scaled(0.25);
    let mut rng = StdRng::seed_from_u64(42);
    let full = synth::generate(&spec, &mut rng);
    println!(
        "dataset: {} users × {} items, {} interactions",
        full.n_users(),
        full.n_items(),
        full.n_interactions()
    );

    // 2. Leave-one-out split: one held-out test item per user.
    let split = leave_one_out(&full, &mut rng);
    let train = Arc::new(split.train.clone());

    // 3. One federated client per user; the global model is the shared
    //    item-embedding table.
    let model = GlobalModel::new(&ModelConfig::mf(16), train.n_items(), &mut rng);
    let clients: Vec<Box<dyn Client>> = (0..train.n_users())
        .map(|u| {
            Box::new(BenignClient::new(
                u,
                Arc::clone(&train),
                16,
                0.1,
                42 + u as u64,
            )) as Box<dyn Client>
        })
        .collect();
    let config = FederationConfig {
        clients_per_round: ClientsPerRound::Count(64),
        seed: 42,
        ..Default::default()
    };
    // The builder defaults to plain-sum aggregation (no defense).
    let mut sim = Simulation::builder(model)
        .clients(clients)
        .config(config)
        .build();

    // 4. Train for 150 communication rounds, reporting HR@10 as we go.
    let benign = sim.benign_ids();
    for checkpoint in [10usize, 50, 100, 150] {
        while sim.rounds_done() < checkpoint {
            sim.run_round();
        }
        let q = QualityReport::compute(sim.model(), &sim.user_embeddings(), &benign, &split, 10);
        println!(
            "round {:>4}: HR@10 = {:5.2}%   NDCG@10 = {:.4}",
            checkpoint,
            q.hr_percent(),
            q.ndcg
        );
    }
    println!(
        "\nmean round time: {:?}, total upload: {} KiB",
        sim.stats().mean_round_time(),
        sim.stats().total_upload_bytes / 1024
    );
}
