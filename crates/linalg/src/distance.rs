//! Shared pairwise-distance kernel for the robust aggregators.
//!
//! Krum, Multi-Krum, and Bulyan all start from the same object: the symmetric
//! matrix of squared L2 distances between the round's uploads. Historically
//! each aggregator rebuilt it from scratch; [`DistanceMatrix`] computes it
//! once per round and every consumer reads from the same storage. Bulyan's
//! selection loop additionally needs to *remove* uploads as it prunes — that
//! is [`DistanceMatrix::deactivate`], which masks a row/column out of all
//! subsequent queries instead of recomputing the surviving submatrix.
//!
//! # Determinism contract
//!
//! Every kernel in this module is bitwise-deterministic and pinned to the
//! summation order of the naive scalar reference:
//!
//! - [`squared_distance_blocked`] accumulates `(a[i]-b[i])²` strictly in index
//!   order (the unrolling only widens the independent subtract/multiply work,
//!   never the adds), so it returns the exact same bits as
//!   [`crate::vector::squared_l2_distance`].
//! - [`DistanceMatrix::krum_scores`] sums each row's `keep` smallest distances
//!   in ascending value order via a partial select
//!   ([`crate::rank::sum_k_smallest`]), which is bitwise-identical to fully
//!   sorting the row and summing the prefix.
//!
//! The `kernel-parity` CI job pins both claims with proptest suites
//! (`cargo test --release -p frs-linalg --test kernel_parity`).

/// Symmetric matrix of pairwise distances with an activity mask.
///
/// Stored dense and row-major (`n × n`, diagonal zero). The mask starts all
/// active; [`deactivate`](Self::deactivate) removes an index from every later
/// [`krum_scores`](Self::krum_scores) query in O(1) instead of shrinking the
/// matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f32>,
    active: Vec<bool>,
    n_active: usize,
}

/// Tile edge used by [`DistanceMatrix::from_fn`]. Pairs are evaluated tile by
/// tile so that the per-upload working set (gradient slices, precomputed
/// self-dots) stays cache-resident while it is reused against a whole block of
/// partners. Each pair is still evaluated exactly once and written to a fixed
/// slot, so blocking cannot change any value.
pub const DISTANCE_BLOCK: usize = 16;

impl DistanceMatrix {
    /// Build the matrix by evaluating `dist(i, j)` once for every pair
    /// `i < j` (tiled in [`DISTANCE_BLOCK`]-sized blocks) and mirroring into
    /// both triangles. The diagonal is zero.
    pub fn from_fn(n: usize, dist: impl FnMut(usize, usize) -> f32) -> Self {
        Self::from_fn_blocked(n, DISTANCE_BLOCK, dist)
    }

    /// [`from_fn`](Self::from_fn) with an explicit tile edge (`block == 0` is
    /// treated as unblocked). Exposed so the parity suite can pin that the
    /// result is independent of the blocking factor.
    pub fn from_fn_blocked(
        n: usize,
        block: usize,
        mut dist: impl FnMut(usize, usize) -> f32,
    ) -> Self {
        let block = if block == 0 { n.max(1) } else { block };
        let mut data = vec![0.0f32; n * n];
        for i0 in (0..n).step_by(block) {
            for j0 in (i0..n).step_by(block) {
                for i in i0..(i0 + block).min(n) {
                    let j_lo = j0.max(i + 1);
                    for j in j_lo..(j0 + block).min(n) {
                        let d = dist(i, j);
                        data[i * n + j] = d;
                        data[j * n + i] = d;
                    }
                }
            }
        }
        DistanceMatrix {
            n,
            data,
            active: vec![true; n],
            n_active: n,
        }
    }

    /// Total number of rows (active or not).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of rows still active.
    pub fn n_active(&self) -> usize {
        self.n_active
    }

    /// Whether row `i` is still active.
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// The stored distance between `i` and `j` (zero on the diagonal),
    /// regardless of activity.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }

    /// Mask row/column `i` out of all subsequent queries. Returns `false` if
    /// it was already inactive. This is the incremental path Bulyan's pruning
    /// loop uses: the surviving scores are exactly what a freshly built
    /// submatrix over the active set would produce, without recomputing any
    /// distance.
    pub fn deactivate(&mut self, i: usize) -> bool {
        if !self.active[i] {
            return false;
        }
        self.active[i] = false;
        self.n_active -= 1;
        true
    }

    /// Indices still active, ascending.
    pub fn active_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&i| self.active[i])
    }

    /// Krum score for every active row: the sum of its `n_active − f − 2`
    /// smallest distances to other active rows (Blanchard et al.'s
    /// closest-neighbour sum). Returns `None` when `n_active ≤ f + 2`, where
    /// the score is undefined and callers fall back to plain averaging.
    ///
    /// Summation is over the selected distances in ascending value order —
    /// bitwise-identical to sorting the whole row and summing the prefix.
    pub fn krum_scores(&self, f: usize) -> Option<Vec<(usize, f32)>> {
        let n_act = self.n_active;
        if n_act <= f + 2 {
            return None;
        }
        let keep = n_act - f - 2;
        let mut row = Vec::with_capacity(n_act.saturating_sub(1));
        let mut scores = Vec::with_capacity(n_act);
        for i in 0..self.n {
            if !self.active[i] {
                continue;
            }
            row.clear();
            for j in 0..self.n {
                if j != i && self.active[j] {
                    row.push(self.data[i * self.n + j]);
                }
            }
            scores.push((i, crate::rank::sum_k_smallest(&mut row, keep)));
        }
        Some(scores)
    }
}

/// Squared L2 distance with the accumulation unrolled over 4-element chunks.
///
/// The subtract/multiply work of a chunk is expressed as four independent
/// temporaries (so the compiler is free to vectorize it) while the adds into
/// the accumulator stay strictly sequential in index order. Because every
/// floating-point operation has identical operands in an identical order, the
/// result is bitwise-equal to [`crate::vector::squared_l2_distance`].
pub fn squared_distance_blocked(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance over mismatched lengths");
    // `Iterator::sum::<f32>()` folds from -0.0, the IEEE additive identity;
    // start there so even empty/all-negative-zero inputs match bitwise.
    let mut acc = -0.0f32;
    let chunks = a.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        let s0 = d0 * d0;
        let s1 = d1 * d1;
        let s2 = d2 * d2;
        let s3 = d3 * d3;
        acc += s0;
        acc += s1;
        acc += s2;
        acc += s3;
        i += 4;
    }
    while i < a.len() {
        let d = a[i] - b[i];
        acc += d * d;
        i += 1;
    }
    acc
}

/// Dot product with the same unrolling scheme as [`squared_distance_blocked`]:
/// independent per-lane multiplies, strictly sequential adds. Bitwise-equal to
/// [`crate::vector::dot`].
pub fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
    // Same -0.0 starting point as `Iterator::sum::<f32>()`; see
    // `squared_distance_blocked`.
    let mut acc = -0.0f32;
    let chunks = a.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        let p0 = a[i] * b[i];
        let p1 = a[i + 1] * b[i + 1];
        let p2 = a[i + 2] * b[i + 2];
        let p3 = a[i + 3] * b[i + 3];
        acc += p0;
        acc += p1;
        acc += p2;
        acc += p3;
        i += 4;
    }
    while i < a.len() {
        acc += a[i] * b[i];
        i += 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::squared_l2_distance;

    fn demo_points() -> Vec<Vec<f32>> {
        (0..9)
            .map(|i| (0..7).map(|k| ((i * 7 + k) as f32 * 0.37).sin()).collect())
            .collect()
    }

    fn demo_matrix() -> DistanceMatrix {
        let pts = demo_points();
        DistanceMatrix::from_fn(pts.len(), |i, j| squared_l2_distance(&pts[i], &pts[j]))
    }

    #[test]
    fn symmetric_with_zero_diagonal() {
        let m = demo_matrix();
        for i in 0..m.n() {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..m.n() {
                assert_eq!(m.get(i, j).to_bits(), m.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn blocking_factor_does_not_change_values() {
        let pts = demo_points();
        let reference = DistanceMatrix::from_fn_blocked(pts.len(), 0, |i, j| {
            squared_l2_distance(&pts[i], &pts[j])
        });
        for block in [1, 2, 3, 4, 16, 64] {
            let m = DistanceMatrix::from_fn_blocked(pts.len(), block, |i, j| {
                squared_l2_distance(&pts[i], &pts[j])
            });
            for i in 0..m.n() {
                for j in 0..m.n() {
                    assert_eq!(
                        m.get(i, j).to_bits(),
                        reference.get(i, j).to_bits(),
                        "block={block}"
                    );
                }
            }
        }
    }

    #[test]
    fn each_pair_evaluated_exactly_once() {
        let n = 13;
        let mut calls = std::collections::HashSet::new();
        let m = DistanceMatrix::from_fn(n, |i, j| {
            assert!(i < j, "only upper-triangle pairs may be requested");
            assert!(calls.insert((i, j)), "pair ({i},{j}) evaluated twice");
            (i + j) as f32
        });
        assert_eq!(calls.len(), n * (n - 1) / 2);
        assert_eq!(m.n_active(), n);
    }

    #[test]
    fn krum_scores_undefined_at_small_n() {
        let m = demo_matrix(); // n = 9
        assert!(m.krum_scores(9).is_none());
        assert!(m.krum_scores(7).is_none()); // n_active == f + 2
        assert!(m.krum_scores(6).is_some()); // n_active == f + 3
    }

    #[test]
    fn krum_scores_match_full_sort_reference() {
        let m = demo_matrix();
        let f = 2;
        let keep = m.n() - f - 2;
        let got = m.krum_scores(f).expect("defined");
        for (i, score) in got {
            let mut row: Vec<f32> = (0..m.n())
                .filter(|&j| j != i)
                .map(|j| m.get(i, j))
                .collect();
            row.sort_unstable_by(f32::total_cmp);
            let want: f32 = row[..keep].iter().sum();
            assert_eq!(score.to_bits(), want.to_bits(), "row {i}");
        }
    }

    #[test]
    fn deactivation_matches_fresh_submatrix() {
        let pts = demo_points();
        let mut m = demo_matrix();
        assert!(m.deactivate(3));
        assert!(m.deactivate(7));
        assert!(!m.deactivate(3), "second deactivation is a no-op");
        assert_eq!(m.n_active(), pts.len() - 2);

        let survivors: Vec<usize> = m.active_indices().collect();
        let fresh = DistanceMatrix::from_fn(survivors.len(), |a, b| {
            squared_l2_distance(&pts[survivors[a]], &pts[survivors[b]])
        });
        let f = 1;
        let got = m.krum_scores(f).expect("defined on survivors");
        let want = fresh.krum_scores(f).expect("defined on fresh submatrix");
        assert_eq!(got.len(), want.len());
        for ((gi, gs), (wi, ws)) in got.iter().zip(want.iter()) {
            assert_eq!(*gi, survivors[*wi]);
            assert_eq!(gs.to_bits(), ws.to_bits());
        }
    }

    #[test]
    fn blocked_kernels_are_bitwise_scalar() {
        let pts = demo_points();
        for a in &pts {
            for b in &pts {
                assert_eq!(
                    squared_distance_blocked(a, b).to_bits(),
                    squared_l2_distance(a, b).to_bits()
                );
                assert_eq!(
                    dot_blocked(a, b).to_bits(),
                    crate::vector::dot(a, b).to_bits()
                );
            }
        }
    }
}
