//! Client populations: eager boxes, or a lazily-materialized arena pool.
//!
//! The original `Simulation` owned one boxed [`Client`] per user. At paper
//! scale (thousands of users) that is fine; at the ROADMAP's million-client
//! target it is 1M allocations of which a round touches a few hundred. A
//! [`ClientPool`] abstracts the population behind the operations the server
//! actually needs, with two implementations:
//!
//! - [`ClientPool::Eager`] — the original `Vec<Box<dyn Client>>`, still used
//!   when callers hand the builder explicit client objects.
//! - [`ClientPool::Lazy`] ([`LazyClientPool`]) — benign clients exist only
//!   as rows of a flat [`EmbeddingStore`] arena plus a seed function; a
//!   real [`BenignClient`] is constructed for exactly the sampled subset
//!   each round and torn back down into the arena afterwards. Stateful
//!   client-side defenses persist across samplings in a sparse map, built
//!   on demand from a [`RegularizerFactory`]. Attacker-controlled clients
//!   stay materialized (they are few, stateful, and arbitrary types).
//!
//! The two representations are **bit-identical** under every seed, width,
//! and checkpoint cut: the arena rows are initialized by the same
//! [`BenignClient::init_embedding`] draw the eager constructor uses, rounds
//! run the same `local_round` code, and checkpoints serialize the same
//! per-client state shape (`server::tests::lazy_pool_matches_eager_pool`).

use std::collections::BTreeMap;
use std::sync::Arc;

use frs_data::Dataset;
use frs_model::{EmbeddingStore, GlobalGradients, GlobalModel};

use crate::client::{BenignClient, BenignClientState, Client, LocalRegularizer};
use crate::context::RoundContext;
use crate::pool;

/// Builds the client-side defense regularizer for a given user id. Same
/// shape as the defense registry's factory type, so a `DefenseInstance`
/// factory plugs in directly.
pub type RegularizerFactory = Box<dyn Fn(usize) -> Box<dyn LocalRegularizer> + Send + Sync>;

/// The server's view of its client population.
pub enum ClientPool {
    /// Every client is a live boxed object (the original representation).
    Eager(Vec<Box<dyn Client>>),
    /// Benign clients materialize per round from an embedding arena.
    Lazy(LazyClientPool),
}

/// Benign users as arena rows + construction recipe, with the (few) boxed
/// clients occupying the id range above them. See the module docs.
pub struct LazyClientPool {
    n_benign: usize,
    train: Arc<Dataset>,
    /// Row `u` holds user `u`'s private embedding between samplings. Sized
    /// over the *whole* population; rows above `n_benign` stay zero, so the
    /// arena doubles as the dense evaluation table.
    arena: EmbeddingStore,
    reg_factory: Option<RegularizerFactory>,
    /// Stateful per-user defense regularizers, kept only for users that
    /// have been sampled (or restored) so far.
    regs: BTreeMap<usize, Box<dyn LocalRegularizer>>,
    /// Materialized clients above the benign range — the attacker cohort.
    /// Ids must be dense in `n_benign..n_benign + boxed.len()`.
    boxed: Vec<Box<dyn Client>>,
}

/// A round participant: either a benign client materialized from the arena
/// for this round only, or a borrow of a permanently boxed client.
enum Participant<'a> {
    Owned(BenignClient),
    Borrowed(&'a mut Box<dyn Client>),
}

impl LazyClientPool {
    /// Creates the pool and initializes every benign arena row with the
    /// seeded draw `BenignClient::new` would have made. When the
    /// `FRS_ARENA_DIR` environment variable names a directory, the arena is
    /// mmap-backed there (out-of-core populations); otherwise it lives on
    /// the heap. The backing is execution-only — bytes are identical.
    pub fn new(
        n_benign: usize,
        train: Arc<Dataset>,
        dim: usize,
        init_scale: f32,
        seed_fn: impl Fn(usize) -> u64,
        reg_factory: Option<RegularizerFactory>,
        boxed: Vec<Box<dyn Client>>,
    ) -> Self {
        let n_total = n_benign + boxed.len();
        let mut arena = match std::env::var_os("FRS_ARENA_DIR") {
            Some(dir) => EmbeddingStore::zeros_mmap(n_total, dim, std::path::Path::new(&dir)),
            None => EmbeddingStore::zeros(n_total, dim),
        };
        for u in 0..n_benign {
            arena
                .row_mut(u)
                .copy_from_slice(&BenignClient::init_embedding(dim, init_scale, seed_fn(u)));
        }
        Self {
            n_benign,
            train,
            arena,
            reg_factory,
            regs: BTreeMap::new(),
            boxed,
        }
    }

    fn materialize(&mut self, user: usize) -> BenignClient {
        let reg = self
            .regs
            .remove(&user)
            .or_else(|| self.reg_factory.as_ref().map(|f| f(user)));
        BenignClient::from_parts(
            user,
            Arc::clone(&self.train),
            self.arena.row(user).to_vec(),
            reg,
        )
    }

    /// The regularizer state a checkpoint records for user `u`: the live
    /// state when one exists, otherwise a factory-fresh one — exactly what
    /// an eager never-sampled client would serialize.
    fn reg_state(&self, u: usize) -> serde::Value {
        match self.regs.get(&u) {
            Some(reg) => reg.checkpoint_state(),
            None => match &self.reg_factory {
                Some(f) => f(u).checkpoint_state(),
                None => serde::Value::Null,
            },
        }
    }
}

impl ClientPool {
    /// Total number of registered clients.
    pub fn len(&self) -> usize {
        match self {
            Self::Eager(clients) => clients.len(),
            Self::Lazy(pool) => pool.n_benign + pool.boxed.len(),
        }
    }

    /// True when the pool holds no clients at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Panics unless client ids are unique and dense in `0..len()` (the
    /// invariant the whole sampling/aggregation path relies on).
    pub fn assert_dense_ids(&self) {
        match self {
            Self::Eager(clients) => {
                let mut ids: Vec<usize> = clients.iter().map(|c| c.id()).collect();
                ids.sort_unstable();
                for (expect, &got) in ids.iter().enumerate() {
                    assert_eq!(expect, got, "client ids must be dense 0..n");
                }
            }
            Self::Lazy(pool) => {
                for (offset, client) in pool.boxed.iter().enumerate() {
                    assert_eq!(
                        pool.n_benign + offset,
                        client.id(),
                        "client ids must be dense 0..n (boxed clients start at n_benign)"
                    );
                }
            }
        }
    }

    /// Ids of benign clients (the evaluation population `Ū`).
    pub fn benign_ids(&self) -> Vec<usize> {
        match self {
            Self::Eager(clients) => clients
                .iter()
                .filter(|c| !c.is_malicious())
                .map(|c| c.id())
                .collect(),
            Self::Lazy(pool) => (0..pool.n_benign)
                .chain(
                    pool.boxed
                        .iter()
                        .filter(|c| !c.is_malicious())
                        .map(|c| c.id()),
                )
                .collect(),
        }
    }

    /// Ids of attacker-controlled clients (`Ũ`).
    pub fn malicious_ids(&self) -> Vec<usize> {
        match self {
            Self::Eager(clients) => clients
                .iter()
                .filter(|c| c.is_malicious())
                .map(|c| c.id())
                .collect(),
            Self::Lazy(pool) => pool
                .boxed
                .iter()
                .filter(|c| c.is_malicious())
                .map(|c| c.id())
                .collect(),
        }
    }

    /// How many of the given (sorted) selected ids are attacker-controlled.
    pub fn count_malicious(&self, selected: &[usize]) -> usize {
        match self {
            Self::Eager(clients) => {
                let mal: std::collections::HashSet<usize> = clients
                    .iter()
                    .filter(|c| c.is_malicious())
                    .map(|c| c.id())
                    .collect();
                selected.iter().filter(|id| mal.contains(id)).count()
            }
            Self::Lazy(pool) => selected
                .iter()
                .filter(|&&id| id >= pool.n_benign && pool.boxed[id - pool.n_benign].is_malicious())
                .count(),
        }
    }

    /// Dense per-client-id embedding table for metric evaluation. Clients
    /// without a personal embedding (malicious) get zero rows — metrics
    /// only ever index benign ids.
    pub fn user_embeddings(&self, dim: usize) -> EmbeddingStore {
        match self {
            Self::Eager(clients) => {
                let mut out = EmbeddingStore::zeros(clients.len(), dim);
                for c in clients {
                    if let Some(emb) = c.user_embedding() {
                        out.row_mut(c.id()).copy_from_slice(emb);
                    }
                }
                out
            }
            // The arena *is* the table (boxed rows stay zero); clones
            // materialize to the heap.
            Self::Lazy(pool) => pool.arena.clone(),
        }
    }

    /// Runs `local_round` for the selected (sorted, deduplicated) client
    /// ids, fanning out over `width` threads, and returns the id-tagged
    /// uploads in selection order. Lazy pools materialize benign clients
    /// here and retire their state back to the arena before returning.
    pub fn run_selected(
        &mut self,
        selected_sorted: &[usize],
        width: usize,
        ctx: &RoundContext,
        model: &GlobalModel,
    ) -> Vec<(usize, GlobalGradients)> {
        match self {
            Self::Eager(clients) => {
                // Pull disjoint mutable references to the sampled clients.
                let mut flags = vec![false; clients.len()];
                for &i in selected_sorted {
                    flags[i] = true;
                }
                let participants: Vec<&mut Box<dyn Client>> = clients
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, _)| flags[*i])
                    .map(|(_, c)| c)
                    .collect();
                pool::map_ordered(participants, width, |c| (c.id(), c.local_round(ctx, model)))
            }
            Self::Lazy(lazy) => {
                // Benign ids sit below the boxed range, so after the sort
                // all Owned participants precede all Borrowed ones.
                let n_benign = lazy.n_benign;
                let mut participants: Vec<Participant> = Vec::with_capacity(selected_sorted.len());
                for &id in selected_sorted.iter().filter(|&&id| id < n_benign) {
                    participants.push(Participant::Owned(lazy.materialize(id)));
                }
                let mut flags = vec![false; lazy.boxed.len()];
                for &id in selected_sorted.iter().filter(|&&id| id >= n_benign) {
                    flags[id - n_benign] = true;
                }
                participants.extend(
                    lazy.boxed
                        .iter_mut()
                        .enumerate()
                        .filter(|(i, _)| flags[*i])
                        .map(|(_, c)| Participant::Borrowed(c)),
                );

                let results = pool::map_ordered(participants, width, |p| match p {
                    Participant::Owned(mut c) => {
                        let grads = c.local_round(ctx, model);
                        let id = c.id();
                        (id, grads, Some(c))
                    }
                    Participant::Borrowed(c) => (c.id(), c.local_round(ctx, model), None),
                });

                let mut uploads = Vec::with_capacity(results.len());
                for (id, grads, owned) in results {
                    if let Some(client) = owned {
                        let (embedding, reg) = client.into_parts();
                        lazy.arena.row_mut(id).copy_from_slice(&embedding);
                        if let Some(reg) = reg {
                            lazy.regs.insert(id, reg);
                        }
                    }
                    uploads.push((id, grads));
                }
                uploads
            }
        }
    }

    /// Per-client checkpoint states, dense by id. Lazy pools emit the same
    /// `BenignClientState` shape eager `BenignClient`s serialize, so the
    /// two populations' checkpoints are interchangeable.
    pub fn checkpoint_states(&self) -> Vec<serde::Value> {
        match self {
            Self::Eager(clients) => clients.iter().map(|c| c.checkpoint_state()).collect(),
            Self::Lazy(pool) => {
                let mut out = Vec::with_capacity(self.len());
                for u in 0..pool.n_benign {
                    let state = BenignClientState {
                        user_embedding: pool.arena.row(u).to_vec(),
                        regularizer: pool.reg_state(u),
                    };
                    out.push(serde::Serialize::to_value(&state));
                }
                out.extend(pool.boxed.iter().map(|c| c.checkpoint_state()));
                out
            }
        }
    }

    /// Overlays per-client checkpoint states captured by
    /// [`ClientPool::checkpoint_states`] (caller has already validated the
    /// count).
    pub fn restore_states(&mut self, states: &[serde::Value]) -> Result<(), String> {
        match self {
            Self::Eager(clients) => {
                for (client, state) in clients.iter_mut().zip(states) {
                    client.restore_state(state)?;
                }
                Ok(())
            }
            Self::Lazy(pool) => {
                let dim = pool.arena.cols();
                for (u, state) in states.iter().take(pool.n_benign).enumerate() {
                    let state: BenignClientState =
                        serde::Deserialize::from_value(state).map_err(|e| e.to_string())?;
                    if state.user_embedding.len() != dim {
                        return Err(format!(
                            "user {u} embedding dim mismatch: checkpoint {}, simulation {dim}",
                            state.user_embedding.len()
                        ));
                    }
                    pool.arena.row_mut(u).copy_from_slice(&state.user_embedding);
                    match (&pool.reg_factory, &state.regularizer) {
                        // A null regularizer state means "fresh" — drop any
                        // live one and let the next sampling rebuild it,
                        // keeping never-sampled users unmaterialized.
                        (_, v) if v.is_null() => {
                            pool.regs.remove(&u);
                        }
                        (Some(factory), v) => {
                            let mut reg = factory(u);
                            reg.restore_state(v)?;
                            pool.regs.insert(u, reg);
                        }
                        (None, v) => {
                            return Err(format!(
                                "user {u} has no regularizer but checkpoint carries {}",
                                v.kind()
                            ));
                        }
                    }
                }
                for (client, state) in pool.boxed.iter_mut().zip(&states[pool.n_benign..]) {
                    client.restore_state(state)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_data::{synth, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_train() -> Arc<Dataset> {
        let mut rng = StdRng::seed_from_u64(3);
        Arc::new(synth::generate(&DatasetSpec::tiny(), &mut rng))
    }

    #[test]
    fn lazy_arena_reproduces_eager_init() {
        let train = tiny_train();
        let n = train.n_users();
        let pool = ClientPool::Lazy(LazyClientPool::new(
            n,
            Arc::clone(&train),
            8,
            0.1,
            Box::new(|u| 40 + u as u64),
            None,
            Vec::new(),
        ));
        let table = pool.user_embeddings(8);
        for u in 0..n {
            let eager = BenignClient::new(u, Arc::clone(&train), 8, 0.1, 40 + u as u64);
            assert_eq!(
                table.row(u),
                eager.user_embedding().unwrap(),
                "user {u} init differs"
            );
        }
    }

    #[test]
    fn lazy_id_layout_and_counts() {
        struct Mal(usize);
        impl Client for Mal {
            fn id(&self) -> usize {
                self.0
            }
            fn is_malicious(&self) -> bool {
                true
            }
            fn local_round(
                &mut self,
                _ctx: &RoundContext,
                _model: &GlobalModel,
            ) -> GlobalGradients {
                GlobalGradients::new()
            }
        }
        let train = tiny_train();
        let pool = ClientPool::Lazy(LazyClientPool::new(
            5,
            train,
            4,
            0.1,
            Box::new(|u| u as u64),
            None,
            vec![Box::new(Mal(5)), Box::new(Mal(6))],
        ));
        pool.assert_dense_ids();
        assert_eq!(pool.len(), 7);
        assert_eq!(pool.benign_ids(), vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.malicious_ids(), vec![5, 6]);
        assert_eq!(pool.count_malicious(&[0, 2, 5]), 1);
        assert_eq!(pool.count_malicious(&[5, 6]), 2);
        let table = pool.user_embeddings(4);
        assert_eq!(table.rows(), 7);
        assert_eq!(table.row(6), &[0.0; 4], "boxed rows stay zero");
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn lazy_rejects_misnumbered_boxed_clients() {
        struct Off;
        impl Client for Off {
            fn id(&self) -> usize {
                99
            }
            fn local_round(
                &mut self,
                _ctx: &RoundContext,
                _model: &GlobalModel,
            ) -> GlobalGradients {
                GlobalGradients::new()
            }
        }
        let pool = ClientPool::Lazy(LazyClientPool::new(
            2,
            tiny_train(),
            4,
            0.1,
            Box::new(|u| u as u64),
            None,
            vec![Box::new(Off)],
        ));
        pool.assert_dense_ids();
    }
}
