//! The open defense registry — mirror image of `frs_attacks::registry`.
//!
//! Defenses are [`DefenseFactory`] trait objects registered by name. A
//! factory turns a scenario-level [`DefenseBuildCtx`] plus a serializable
//! [`DefenseParams`] payload into a [`DefenseInstance`]: the server-side
//! [`Aggregator`] and — for client-side schemes like the paper's
//! regularization defense — a per-client [`LocalRegularizer`] factory the
//! harness invokes once per benign client.
//!
//! Scenarios reference defenses through [`DefenseSel`], a `{name, params}`
//! pair that serializes as a plain string when the params are empty
//! (`"ours"`) and as `{"name": "ours", "params": {"beta": 0.9}}` otherwise.
//! The params map is sorted-key and canonical, so structurally equal
//! selections always produce the same JSON bytes — which is what lets suite
//! cache keys see defense hyper-parameters (see `frs_experiments::cache`).
//!
//! The paper's own defense (`"ours"`) goes through this registry like every
//! other factory: its β/γ weights, the Re1/Re2 ablation switches, and the
//! mining parameters are ordinary [`DefenseParams`] entries, with
//! model-tuned defaults supplied by the [`DefenseBuildCtx`]. There is no
//! harness special case.
//!
//! Ad-hoc defenses use [`FnDefenseFactory`]:
//!
//! ```
//! use frs_defense::{register_defense, DefenseSel, FnDefenseFactory};
//! use frs_federation::SumAggregator;
//!
//! register_defense(
//!     FnDefenseFactory::new("plain-sum", "PlainSum", |_ctx| Box::new(SumAggregator))
//!         .with_fingerprint("v1"),
//! );
//! assert!(DefenseSel::named("plain-sum").resolve().is_some());
//! ```
//!
//! The legacy [`DefenseKind`] enum remains as a thin wrapper over registry
//! lookups.
//!
//! [`DefenseKind`]: crate::DefenseKind

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use frs_federation::{Aggregator, LocalRegularizer};
use frs_model::ModelKind;

use crate::catalog::DefenseKind;

// ------------------------------------------------------------------ params

pub use frs_federation::params::{ParamSpec, ParamValue};

/// The canonical defense hyper-parameter payload a [`DefenseSel`] carries:
/// the shared [`frs_federation::params::Params`] map (sorted keys, one
/// variant per numeric value, no non-finite numbers — see that module for
/// the caching invariants), aliased for readability. The attack registry
/// aliases the same type as `frs_attacks::AttackParams`.
pub type DefenseParams = frs_federation::params::Params;

// ----------------------------------------------------------------- context

/// Everything a scenario knows that a defense may consume when
/// instantiating — the paper's defense needs most of it (mined `N`, the
/// base-model family its β/γ are tuned per, the embedding dimension, and
/// the root seed); server-side rules typically read only the first two
/// fields.
#[derive(Debug, Clone)]
pub struct DefenseBuildCtx {
    /// Malicious fraction `p̃` the defense is tuned for.
    pub assumed_malicious_ratio: f64,
    /// Clipping threshold for NormBound-style defenses.
    pub norm_bound_threshold: f32,
    /// Mined popular-set size `N` of the scenario (the defense miner
    /// matches the attacker's, Section V-B).
    pub mined_top_n: usize,
    /// Base-model family the federation trains.
    pub model: ModelKind,
    /// Item/user embedding dimension.
    pub embedding_dim: usize,
    /// Model-tuned default weight β of Re1 (the paper tunes β/γ per base
    /// model; DL item updates land with a much smaller server learning
    /// rate, so its regularizers need proportionally more weight).
    pub default_beta: f32,
    /// Model-tuned default weight γ of Re2.
    pub default_gamma: f32,
    /// Scenario root seed, for defenses that randomize.
    pub seed: u64,
}

impl DefenseBuildCtx {
    /// A context carrying only the two classic server-side knobs; the rest
    /// are neutral defaults. Used by the legacy
    /// [`DefenseKind::build_aggregator`] entry point and by tests.
    pub fn minimal(assumed_malicious_ratio: f64, norm_bound_threshold: f32) -> Self {
        Self {
            assumed_malicious_ratio,
            norm_bound_threshold,
            mined_top_n: 10,
            model: ModelKind::Mf,
            embedding_dim: 0,
            default_beta: 0.5,
            default_gamma: 0.5,
            seed: 0,
        }
    }
}

// ---------------------------------------------------------------- instance

/// Builds one fresh [`LocalRegularizer`] per benign client (argument: the
/// client/user id). Each client must get its own instance — regularizers
/// keep per-client mining state.
pub type RegularizerFactory = Box<dyn Fn(usize) -> Box<dyn LocalRegularizer> + Send + Sync>;

/// A fully instantiated defense: what [`DefenseFactory::build`] returns and
/// the harness wires into a simulation.
pub struct DefenseInstance {
    /// The server-side aggregation rule (client-side defenses pair with a
    /// plain sum here).
    pub aggregator: Box<dyn Aggregator>,
    /// Per-client regularizer factory; `None` for pure server-side rules.
    pub regularizer_factory: Option<RegularizerFactory>,
}

impl std::fmt::Debug for DefenseInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefenseInstance")
            .field("aggregator", &self.aggregator.name())
            .field("client_side", &self.regularizer_factory.is_some())
            .finish()
    }
}

impl DefenseInstance {
    /// A pure server-side defense.
    pub fn server(aggregator: Box<dyn Aggregator>) -> Self {
        Self {
            aggregator,
            regularizer_factory: None,
        }
    }

    /// A client-side defense: `factory` is invoked once per benign client.
    pub fn client(aggregator: Box<dyn Aggregator>, factory: RegularizerFactory) -> Self {
        Self {
            aggregator,
            regularizer_factory: Some(factory),
        }
    }

    /// A fresh regularizer for `client_id`, when the defense is client-side.
    pub fn regularizer_for(&self, client_id: usize) -> Option<Box<dyn LocalRegularizer>> {
        self.regularizer_factory.as_ref().map(|f| f(client_id))
    }
}

// ----------------------------------------------------------------- factory

/// A named defense that can arm a scenario.
pub trait DefenseFactory: Send + Sync {
    /// Stable registry key (kebab-case).
    fn name(&self) -> &str;

    /// Row label for experiment tables; defaults to the registry name.
    fn label(&self) -> &str {
        self.name()
    }

    /// True for defenses that run inside benign clients rather than in the
    /// server's aggregation rule.
    fn is_client_side(&self) -> bool {
        false
    }

    /// The parameters this defense accepts, for validation and for
    /// `paper defenses list`. Empty (the default) means "takes none".
    fn param_schema(&self) -> Vec<ParamSpec> {
        Vec::new()
    }

    /// Instantiates the defense for one scenario. Implementations validate
    /// `params` (unknown keys are an error) and fall back to
    /// context-derived defaults for missing ones.
    fn build(
        &self,
        ctx: &DefenseBuildCtx,
        params: &DefenseParams,
    ) -> Result<DefenseInstance, String>;

    /// Optional behaviour fingerprint, mixed into suite cache keys — same
    /// contract as `AttackFactory::fingerprint` in `frs_attacks`: a stable
    /// string describing closed-over parameters, so re-registering this
    /// name with different behaviour re-keys cached cells. (`DefenseSel`
    /// *params* need no fingerprint — they live in the config JSON and key
    /// the cache directly; the fingerprint covers what the factory closed
    /// over.) `None` (the default, used by the built-ins) keeps name-only
    /// addressing.
    fn fingerprint(&self) -> Option<String> {
        None
    }
}

type AggregatorBuildFn =
    Box<dyn Fn(&DefenseBuildCtx, &DefenseParams) -> Box<dyn Aggregator> + Send + Sync>;
type RegularizerBuildFn =
    Arc<dyn Fn(&DefenseBuildCtx, &DefenseParams, usize) -> Box<dyn LocalRegularizer> + Send + Sync>;

/// Closure-backed [`DefenseFactory`] for ad-hoc defenses — server-side
/// aggregation rules, client-side regularizer schemes, or both, without a
/// hand-rolled trait impl:
///
/// ```ignore
/// register_defense(
///     FnDefenseFactory::new("my-defense", "MyDefense", |_ctx| Box::new(SumAggregator))
///         .with_regularizer(|ctx| Box::new(MyRegularizer::new(ctx.mined_top_n)))
///         .with_param_schema([ParamSpec::new("tau", "attenuation", "1.0")])
///         .with_fingerprint("tau-default=1.0"),
/// );
/// ```
pub struct FnDefenseFactory {
    name: String,
    label: String,
    fingerprint: Option<String>,
    schema: Vec<ParamSpec>,
    aggregator: AggregatorBuildFn,
    regularizer: Option<RegularizerBuildFn>,
}

impl FnDefenseFactory {
    /// A server-side defense from an aggregator closure. Chain `with_*`
    /// builder methods for regularizers, params, and fingerprints, then
    /// hand the result to [`register_defense`].
    pub fn new(
        name: impl Into<String>,
        label: impl Into<String>,
        aggregator: impl Fn(&DefenseBuildCtx) -> Box<dyn Aggregator> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            label: label.into(),
            fingerprint: None,
            schema: Vec::new(),
            aggregator: Box::new(move |ctx, _params| aggregator(ctx)),
            regularizer: None,
        }
    }

    /// Like [`FnDefenseFactory::new`], additionally carrying a behaviour
    /// fingerprint (see [`DefenseFactory::fingerprint`]).
    pub fn fingerprinted(
        name: impl Into<String>,
        label: impl Into<String>,
        fingerprint: impl Into<String>,
        aggregator: impl Fn(&DefenseBuildCtx) -> Box<dyn Aggregator> + Send + Sync + 'static,
    ) -> Self {
        Self::new(name, label, aggregator).with_fingerprint(fingerprint)
    }

    /// A params-aware server-side defense: the aggregator closure also sees
    /// the selection's [`DefenseParams`]. Declare the accepted keys with
    /// [`FnDefenseFactory::with_param_schema`], or every non-empty params
    /// map is rejected.
    pub fn parameterized(
        name: impl Into<String>,
        label: impl Into<String>,
        aggregator: impl Fn(&DefenseBuildCtx, &DefenseParams) -> Box<dyn Aggregator>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            label: label.into(),
            fingerprint: None,
            schema: Vec::new(),
            aggregator: Box::new(aggregator),
            regularizer: None,
        }
    }

    /// Declares a behaviour fingerprint (see [`DefenseFactory::fingerprint`]
    /// — the PR-3 cache contract for runtime registrations).
    pub fn with_fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = Some(fingerprint.into());
        self
    }

    /// Declares the accepted parameters. Without a schema, any non-empty
    /// [`DefenseParams`] fails the build.
    pub fn with_param_schema(mut self, schema: impl IntoIterator<Item = ParamSpec>) -> Self {
        self.schema = schema.into_iter().collect();
        self
    }

    /// Marks the defense client-side: `build` is invoked once per benign
    /// client to produce that client's own [`LocalRegularizer`] (state is
    /// per-client, so instances are never shared).
    pub fn with_regularizer(
        mut self,
        build: impl Fn(&DefenseBuildCtx) -> Box<dyn LocalRegularizer> + Send + Sync + 'static,
    ) -> Self {
        self.regularizer = Some(Arc::new(move |ctx, _params, _client_id| build(ctx)));
        self
    }

    /// Params-aware variant of [`FnDefenseFactory::with_regularizer`]: the
    /// closure additionally sees the selection's [`DefenseParams`] and the
    /// id of the client being armed.
    pub fn with_params_regularizer(
        mut self,
        build: impl Fn(&DefenseBuildCtx, &DefenseParams, usize) -> Box<dyn LocalRegularizer>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        self.regularizer = Some(Arc::new(build));
        self
    }
}

impl DefenseFactory for FnDefenseFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn is_client_side(&self) -> bool {
        self.regularizer.is_some()
    }

    fn param_schema(&self) -> Vec<ParamSpec> {
        self.schema.clone()
    }

    fn build(
        &self,
        ctx: &DefenseBuildCtx,
        params: &DefenseParams,
    ) -> Result<DefenseInstance, String> {
        if !params.is_empty() {
            if self.schema.is_empty() {
                return Err(format!(
                    "defense `{}` takes no parameters (got `{params}`); declare a schema \
                     with FnDefenseFactory::with_param_schema",
                    self.name
                ));
            }
            let known: Vec<&str> = self.schema.iter().map(|s| s.key.as_str()).collect();
            params.check_known(&known, &self.name)?;
        }
        let aggregator = (self.aggregator)(ctx, params);
        Ok(match &self.regularizer {
            None => DefenseInstance::server(aggregator),
            Some(build) => {
                let build = Arc::clone(build);
                let ctx = ctx.clone();
                let params = params.clone();
                DefenseInstance::client(
                    aggregator,
                    Box::new(move |client_id| build(&ctx, &params, client_id)),
                )
            }
        })
    }

    fn fingerprint(&self) -> Option<String> {
        self.fingerprint.clone()
    }
}

// ---------------------------------------------------------------- registry

type Registry = RwLock<BTreeMap<String, Arc<dyn DefenseFactory>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let mut map: BTreeMap<String, Arc<dyn DefenseFactory>> = BTreeMap::new();
        for kind in DefenseKind::all() {
            map.insert(DefenseKind::name(&kind).to_string(), Arc::new(kind));
        }
        RwLock::new(map)
    })
}

/// Anything [`register_defense`] accepts: a factory by value (boxed into an
/// `Arc` for you) or an already-shared `Arc<dyn DefenseFactory>`.
pub trait IntoDefenseFactory {
    fn into_defense_factory(self) -> Arc<dyn DefenseFactory>;
}

impl<F: DefenseFactory + 'static> IntoDefenseFactory for F {
    fn into_defense_factory(self) -> Arc<dyn DefenseFactory> {
        Arc::new(self)
    }
}

impl IntoDefenseFactory for Arc<dyn DefenseFactory> {
    fn into_defense_factory(self) -> Arc<dyn DefenseFactory> {
        self
    }
}

/// Registers (or replaces) a defense under `factory.name()`. Returns the
/// previously registered factory of that name, if any.
pub fn register_defense(factory: impl IntoDefenseFactory) -> Option<Arc<dyn DefenseFactory>> {
    let factory = factory.into_defense_factory();
    registry()
        .write()
        .expect("defense registry poisoned")
        .insert(factory.name().to_string(), factory)
}

/// Looks a defense up by registry name.
pub fn defense_factory(name: &str) -> Option<Arc<dyn DefenseFactory>> {
    registry()
        .read()
        .expect("defense registry poisoned")
        .get(name)
        .cloned()
}

/// All registered defense names, sorted.
pub fn registered_defenses() -> Vec<String> {
    registry()
        .read()
        .expect("defense registry poisoned")
        .keys()
        .cloned()
        .collect()
}

// --------------------------------------------------------------- selection

/// A serializable, registry-backed reference to a defense: its registry
/// name plus a canonical [`DefenseParams`] payload. Serializes as the plain
/// name string when the params are empty, as `{"name", "params"}` otherwise
/// — both forms deserialize.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DefenseSel {
    name: String,
    params: DefenseParams,
}

impl DefenseSel {
    /// References a registered (or to-be-registered) defense by name, with
    /// no parameter overrides.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: DefenseParams::new(),
        }
    }

    /// The undefended baseline.
    pub fn none() -> Self {
        DefenseKind::NoDefense.into()
    }

    /// Parses the CLI form `name[:k=v,…]` (e.g. `ours:beta=0.9,re2=false`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (name, params) = match spec.split_once(':') {
            None => (spec.trim(), DefenseParams::new()),
            Some((name, list)) => (name.trim(), DefenseParams::parse_list(list)?),
        };
        if name.is_empty() {
            return Err("empty defense name".into());
        }
        Ok(Self {
            name: name.to_string(),
            params,
        })
    }

    /// Registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter payload.
    pub fn params(&self) -> &DefenseParams {
        &self.params
    }

    /// Sets a parameter (builder form).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.set(key, value);
        self
    }

    /// Sets a parameter in place ([`crate::registry::DefenseParams::set`]).
    pub fn set_param(&mut self, key: impl Into<String>, value: impl Into<ParamValue>) {
        self.params.set(key, value);
    }

    /// True for the undefended baseline.
    pub fn is_no_defense(&self) -> bool {
        self.name == DefenseKind::NoDefense.name()
    }

    /// Table row label (the factory's; params do not change the label —
    /// they surface through the variant axis and progress events instead).
    pub fn label(&self) -> String {
        match defense_factory(&self.name) {
            Some(f) => f.label().to_string(),
            None => self.name.clone(),
        }
    }

    /// True when the resolved defense runs client-side.
    pub fn is_client_side(&self) -> bool {
        self.resolve().map(|f| f.is_client_side()).unwrap_or(false)
    }

    /// Resolves through the registry.
    pub fn resolve(&self) -> Option<Arc<dyn DefenseFactory>> {
        defense_factory(&self.name)
    }

    /// The resolved factory's behaviour fingerprint, if it declares one.
    pub fn fingerprint(&self) -> Option<String> {
        self.resolve().and_then(|f| f.fingerprint())
    }

    /// Instantiates the defense; `Err` for unregistered names or parameter
    /// errors (unknown keys, type mismatches).
    pub fn try_build(&self, ctx: &DefenseBuildCtx) -> Result<DefenseInstance, String> {
        match self.resolve() {
            Some(f) => f.build(ctx, &self.params),
            None => Err(format!(
                "defense `{}` is not registered (known: {:?})",
                self.name,
                registered_defenses()
            )),
        }
    }

    /// Instantiates the defense; panics on configuration errors (the
    /// harness path — a scenario referencing a bad defense is a programming
    /// error, mirroring `AttackSel::build_clients`).
    pub fn build(&self, ctx: &DefenseBuildCtx) -> DefenseInstance {
        self.try_build(ctx)
            .unwrap_or_else(|e| panic!("cannot build defense `{self}`: {e}"))
    }
}

impl From<DefenseKind> for DefenseSel {
    fn from(kind: DefenseKind) -> Self {
        DefenseSel::named(kind.name())
    }
}

impl From<&DefenseKind> for DefenseSel {
    fn from(kind: &DefenseKind) -> Self {
        (*kind).into()
    }
}

/// Name-only comparison: a parameterized `ours:beta=0.9` still *is* the
/// `Ours` defense for labelling/reporting purposes.
impl PartialEq<DefenseKind> for DefenseSel {
    fn eq(&self, kind: &DefenseKind) -> bool {
        self.name == kind.name()
    }
}

impl PartialEq<DefenseSel> for DefenseKind {
    fn eq(&self, sel: &DefenseSel) -> bool {
        sel == self
    }
}

/// The CLI form: `name` or `name:k=v,…`.
impl std::fmt::Display for DefenseSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.params.is_empty() {
            write!(f, ":{}", self.params)?;
        }
        Ok(())
    }
}

impl serde::Serialize for DefenseSel {
    fn to_value(&self) -> serde::Value {
        if self.params.is_empty() {
            serde::Value::String(self.name.clone())
        } else {
            let mut map = serde::Map::new();
            map.insert("name".into(), serde::Value::String(self.name.clone()));
            map.insert("params".into(), serde::Serialize::to_value(&self.params));
            serde::Value::Object(map)
        }
    }
}

impl serde::Deserialize for DefenseSel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(name) => Ok(DefenseSel::named(name)),
            serde::Value::Object(map) => {
                let name = map
                    .get("name")
                    .and_then(|n| n.as_str())
                    .ok_or_else(|| serde::Error::new("defense object needs a `name` string"))?;
                let params = match map.get("params") {
                    None => DefenseParams::new(),
                    Some(p) => serde::Deserialize::from_value(p)?,
                };
                Ok(DefenseSel {
                    name: name.to_string(),
                    params,
                })
            }
            other => Err(serde::Error::new(format!(
                "expected defense name or {{name, params}}, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_federation::{RoundContext, SumAggregator};
    use frs_model::{GlobalGradients, GlobalModel};

    #[test]
    fn builtins_are_registered() {
        for kind in DefenseKind::all() {
            let f = defense_factory(kind.name()).unwrap_or_else(|| panic!("{kind:?}"));
            assert_eq!(f.label(), kind.label());
            assert_eq!(f.is_client_side(), kind.is_client_side());
        }
    }

    #[test]
    fn registry_path_matches_enum_path() {
        let ctx = DefenseBuildCtx::minimal(0.05, 0.5);
        let mut u1 = GlobalGradients::new();
        u1.add_item_grad(0, &[0.5, 0.5]);
        let mut u2 = GlobalGradients::new();
        u2.add_item_grad(0, &[0.1, -0.4]);
        let uploads = [u1, u2];
        for kind in DefenseKind::all() {
            let via_enum = kind.build_aggregator(0.05, 0.5).aggregate(&uploads);
            let via_registry = DefenseSel::from(kind)
                .build(&ctx)
                .aggregator
                .aggregate(&uploads);
            assert_eq!(via_enum, via_registry, "{kind:?}");
        }
    }

    #[test]
    fn custom_defense_round_trips() {
        register_defense(FnDefenseFactory::new("sum-again", "SumAgain", |_| {
            Box::new(SumAggregator)
        }));
        let sel = DefenseSel::named("sum-again");
        assert_eq!(sel.label(), "SumAgain");
        assert!(!sel.is_client_side());
        let ctx = DefenseBuildCtx::minimal(0.0, 1.0);
        assert_eq!(sel.build(&ctx).aggregator.name(), "NoDefense");
    }

    /// A do-nothing regularizer for client-side factory tests.
    struct InertReg;
    impl LocalRegularizer for InertReg {
        fn observe(&mut self, _ctx: &RoundContext, _model: &GlobalModel) {}
        fn apply(
            &mut self,
            _ctx: &RoundContext,
            _model: &GlobalModel,
            _user_embedding: &[f32],
            _local_items: &[u32],
            _grads: &mut GlobalGradients,
            _d_user: &mut [f32],
        ) {
        }
        fn name(&self) -> &'static str {
            "inert"
        }
    }

    #[test]
    fn fn_factory_with_regularizer_is_client_side() {
        register_defense(
            FnDefenseFactory::new("inert-client", "InertClient", |_| Box::new(SumAggregator))
                .with_regularizer(|_ctx| Box::new(InertReg))
                .with_fingerprint("inert-v1"),
        );
        let sel = DefenseSel::named("inert-client");
        assert!(sel.is_client_side());
        assert_eq!(sel.fingerprint().as_deref(), Some("inert-v1"));
        let instance = sel.build(&DefenseBuildCtx::minimal(0.05, 1.0));
        assert!(instance.regularizer_for(3).is_some());
        // Fresh instance per client.
        assert!(instance.regularizer_for(4).is_some());
    }

    #[test]
    fn fn_factory_rejects_params_without_schema() {
        register_defense(FnDefenseFactory::new("no-params", "NoParams", |_| {
            Box::new(SumAggregator)
        }));
        let sel = DefenseSel::named("no-params").with_param("tau", 0.5f32);
        let err = sel
            .try_build(&DefenseBuildCtx::minimal(0.05, 1.0))
            .unwrap_err();
        assert!(err.contains("takes no parameters"), "{err}");
    }

    #[test]
    fn params_aware_regularizer_sees_params_and_ids() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        let seen = StdArc::new(AtomicUsize::new(0));
        let seen2 = StdArc::clone(&seen);
        register_defense(
            FnDefenseFactory::new("param-client", "ParamClient", |_| Box::new(SumAggregator))
                .with_param_schema([ParamSpec::new("tau", "attenuation factor", "1.0")])
                .with_params_regularizer(move |_ctx, params, client_id| {
                    assert_eq!(params.get_f32("tau").unwrap(), Some(0.25));
                    seen2.fetch_add(client_id, Ordering::SeqCst);
                    Box::new(InertReg)
                }),
        );
        let sel = DefenseSel::named("param-client").with_param("tau", 0.25f32);
        let instance = sel.build(&DefenseBuildCtx::minimal(0.05, 1.0));
        instance.regularizer_for(5);
        instance.regularizer_for(7);
        assert_eq!(seen.load(Ordering::SeqCst), 12);

        // Unknown keys still fail against the declared schema.
        let bad = DefenseSel::named("param-client").with_param("tua", 0.25f32);
        let err = bad
            .try_build(&DefenseBuildCtx::minimal(0.05, 1.0))
            .unwrap_err();
        assert!(err.contains("unknown parameter"), "{err}");
    }

    #[test]
    fn fingerprints_surface_through_selections() {
        register_defense(FnDefenseFactory::fingerprinted(
            "fp-defense",
            "FpDefense",
            "threshold=0.25",
            |_| Box::new(SumAggregator),
        ));
        assert_eq!(
            DefenseSel::named("fp-defense").fingerprint().as_deref(),
            Some("threshold=0.25")
        );
        assert!(DefenseSel::named("sum-again-absent")
            .fingerprint()
            .is_none());
        assert!(DefenseSel::from(DefenseKind::Ours).fingerprint().is_none());
    }

    #[test]
    fn sel_compares_and_serializes() {
        let sel: DefenseSel = DefenseKind::Ours.into();
        assert_eq!(sel, DefenseKind::Ours);
        assert!(sel.is_client_side());
        assert!(DefenseSel::none().is_no_defense());
        let v = serde::Serialize::to_value(&sel);
        assert_eq!(v.as_str(), Some("ours"));
        let back: DefenseSel = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, sel);
    }

    #[test]
    fn parameterized_sel_serializes_as_object_and_round_trips() {
        let sel = DefenseSel::named("ours")
            .with_param("beta", 0.9f32)
            .with_param("re2", false);
        let v = serde::Serialize::to_value(&sel);
        let obj = v.as_object().expect("object form");
        assert_eq!(obj.get("name").and_then(|n| n.as_str()), Some("ours"));
        let back: DefenseSel = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, sel);
        // Canonical text is stable regardless of insertion order.
        let sel2 = DefenseSel::named("ours")
            .with_param("re2", false)
            .with_param("beta", 0.9f32);
        assert_eq!(
            serde_json_canonical(&sel),
            serde_json_canonical(&sel2),
            "sorted-key params canonicalize identically"
        );
        // A params difference is a selection difference.
        assert_ne!(sel, DefenseSel::named("ours").with_param("beta", 1.0f32));
        // …but name-vs-kind comparison ignores params.
        assert_eq!(sel, DefenseKind::Ours);
    }

    fn serde_json_canonical(sel: &DefenseSel) -> String {
        // Local mini-canonicalizer: Display is already canonical for params
        // (sorted BTreeMap), so the CLI form doubles as a canonical text.
        sel.to_string()
    }

    #[test]
    fn parses_cli_specs() {
        assert_eq!(
            DefenseSel::parse("ours").unwrap(),
            DefenseSel::named("ours")
        );
        let sel = DefenseSel::parse("ours:beta=0.9,re2=false,top_n=5").unwrap();
        assert_eq!(sel.name(), "ours");
        assert_eq!(sel.params().get_f32("beta").unwrap(), Some(0.9));
        assert_eq!(sel.params().get_bool("re2").unwrap(), Some(false));
        assert_eq!(sel.params().get_usize("top_n").unwrap(), Some(5));
        assert_eq!(sel.to_string(), "ours:beta=0.9,re2=false,top_n=5");
        assert_eq!(DefenseSel::parse(&sel.to_string()).unwrap(), sel);

        assert!(DefenseSel::parse("").is_err());
        assert!(DefenseSel::parse("ours:beta").is_err());
        assert!(DefenseSel::parse(":beta=1").is_err());
    }

    #[test]
    fn f32_params_key_like_their_cli_spelling() {
        // `0.9f32 as f64` would be 0.90000003…, addressing a different
        // cache cell than the CLI's `beta=0.9`; the From impl converts via
        // the shortest decimal instead, and get_f32 rounds back losslessly.
        let programmatic = DefenseSel::named("ours").with_param("beta", 0.9f32);
        let cli = DefenseSel::parse("ours:beta=0.9").unwrap();
        assert_eq!(programmatic, cli);
        assert_eq!(programmatic.to_string(), "ours:beta=0.9");
        assert_eq!(programmatic.params().get_f32("beta").unwrap(), Some(0.9));
    }

    #[test]
    fn whole_floats_normalize_to_ints_across_all_paths() {
        // NCF's tuned weights are integral (β=5, γ=10): the CLI text, the
        // programmatic f32/f64, and the JSON wire form must all land on the
        // same variant — and therefore the same canonical bytes/cache key.
        let cli = DefenseSel::parse("ours:beta=5").unwrap();
        let from_f32 = DefenseSel::named("ours").with_param("beta", 5.0f32);
        let from_f64 = DefenseSel::named("ours").with_param("beta", 5.0f64);
        assert_eq!(cli, from_f32);
        assert_eq!(cli, from_f64);
        assert_eq!(from_f32.params().get_f32("beta").unwrap(), Some(5.0));
        // Display/parse round-trips.
        assert_eq!(DefenseSel::parse(&from_f32.to_string()).unwrap(), from_f32);
        // Wire form: a JSON 5.0 deserializes to the same selection.
        let wire: ParamValue =
            serde::Deserialize::from_value(&serde::Value::Number(serde::Number::F64(5.0))).unwrap();
        assert_eq!(wire, ParamValue::Int(5));
        // Fractional values stay floats and round-trip too.
        let frac = DefenseSel::named("ours").with_param("beta", 0.9f32);
        assert_eq!(DefenseSel::parse(&frac.to_string()).unwrap(), frac);
        // The CLI text `beta=5.0` normalizes like everything else, and a
        // serialize/deserialize round trip is idempotent.
        let cli_float = DefenseSel::parse("ours:beta=5.0").unwrap();
        assert_eq!(cli_float, cli);
        let wire_rt: DefenseSel =
            serde::Deserialize::from_value(&serde::Serialize::to_value(&cli_float)).unwrap();
        assert_eq!(wire_rt, cli_float);
    }

    #[test]
    fn f32_overflow_is_a_clean_error_not_infinity() {
        // 1e39 is a finite f64 but narrows to f32::INFINITY — it must not
        // slip past the finiteness guards as an "infinite β".
        let params = DefenseParams::new().with("beta", 1e39f64);
        assert!(params.get_f32("beta").unwrap_err().contains("f32"));
        assert_eq!(params.get_f64("beta").unwrap(), Some(1e39));
        let sel = DefenseSel::parse("ours:beta=1e39").unwrap();
        let err = sel
            .try_build(&DefenseBuildCtx::minimal(0.05, 0.05))
            .unwrap_err();
        assert!(err.contains("f32"), "{err}");
    }

    #[test]
    fn non_finite_params_are_rejected() {
        // CLI: `nan`/`inf` parse as strings (they would canonicalize to
        // JSON null and collide cache keys), so typed accessors error.
        assert_eq!(ParamValue::parse("nan"), ParamValue::Str("nan".into()));
        assert_eq!(ParamValue::parse("-inf"), ParamValue::Str("-inf".into()));
        let params = DefenseParams::new().with("beta", ParamValue::parse("nan"));
        assert!(params.get_f32("beta").is_err());
        // Wire form: a non-finite number fails deserialization.
        let bad: Result<ParamValue, _> =
            serde::Deserialize::from_value(&serde::Value::Number(serde::Number::F64(f64::NAN)));
        assert!(bad.is_err());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_programmatic_params_panic() {
        let _ = DefenseParams::new().with("beta", f64::INFINITY);
    }

    #[test]
    fn param_value_types_round_trip_and_check() {
        let params = DefenseParams::new()
            .with("b", true)
            .with("f", 0.5f32)
            .with("i", 7usize)
            .with("s", "hello");
        assert_eq!(params.get_bool("b").unwrap(), Some(true));
        assert_eq!(params.get_f32("f").unwrap(), Some(0.5));
        assert_eq!(params.get_f64("i").unwrap(), Some(7.0));
        assert_eq!(params.get_usize("i").unwrap(), Some(7));
        assert!(params.get_bool("f").is_err());
        assert!(params.get_f32("s").is_err());
        assert!(params.get_usize("f").is_err());
        assert_eq!(params.get_f32("missing").unwrap(), None);
        assert!(params.check_known(&["b", "f", "i", "s"], "t").is_ok());
        let err = params.check_known(&["b"], "t").unwrap_err();
        assert!(err.contains("unknown parameter"), "{err}");

        let v = serde::Serialize::to_value(&params);
        let back: DefenseParams = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, params);
    }
}
