//! Extension experiment (beyond the paper): how the attack and the defense
//! reshape *popularity bias* in the served recommendations.
//!
//! The paper's mechanisms all revolve around popularity bias (finding F2);
//! this experiment quantifies it: catalogue coverage@K, the Gini coefficient
//! of recommendation frequency, and the mean popularity of recommended
//! items — under no attack, under PIECK-UEA, and under the defense.
//!
//! Usage: `ext_popularity_bias [--scale f] [--rounds n] [--seed s]`

use frs_attacks::AttackKind;
use frs_defense::DefenseKind;
use frs_experiments::scenario::{build_simulation, build_world};
use frs_experiments::{paper_scenario, CommonArgs, PaperDataset, Table};
use frs_metrics::{
    average_recommended_popularity, catalogue_coverage, gini_coefficient,
    recommendation_frequency,
};
use frs_model::ModelKind;
use std::sync::Arc;

fn main() {
    let args = CommonArgs::parse();
    println!("\n### Extension — popularity bias of served top-10 lists (MF-FRS, ml100k-like)");
    let mut table = Table::new(&[
        "Scenario", "coverage@10", "Gini", "mean rec. popularity",
    ]);
    for (label, attack, defense) in [
        ("clean", AttackKind::NoAttack, DefenseKind::NoDefense),
        ("PIECK-UEA", AttackKind::PieckUea, DefenseKind::NoDefense),
        ("UEA + ours", AttackKind::PieckUea, DefenseKind::Ours),
        ("defense only", AttackKind::NoAttack, DefenseKind::Ours),
    ] {
        let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
        cfg.attack = attack;
        cfg.defense = defense;
        cfg.mined_top_n = 30;
        let (_, split, targets) = build_world(&cfg);
        let train = Arc::new(split.train.clone());
        let mut sim = build_simulation(&cfg, Arc::clone(&train), &targets);
        sim.run(args.rounds_or(150));
        let benign = sim.benign_ids();
        let freq =
            recommendation_frequency(sim.model(), &sim.user_embeddings(), &benign, &train, 10);
        table.row(&[
            label.to_string(),
            format!("{:.3}", catalogue_coverage(&freq)),
            format!("{:.3}", gini_coefficient(&freq)),
            format!("{:.1}", average_recommended_popularity(&freq, &train)),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "Reading: PIECK-UEA drags a cold item into the lists (lower mean\n\
         recommended popularity, Gini slightly up); the defense restores the\n\
         clean profile without flattening the system's natural popularity skew."
    );
}
