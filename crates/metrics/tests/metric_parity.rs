//! Metric regression on a seeded scenario: ER@10 / HR@10 are unchanged by
//! the partial-select + batched-scoring evaluation path.
//!
//! The reference below ranks every user's full catalogue with a complete
//! `argsort_desc` and recomputes ER/HR/NDCG from first principles — the
//! shape the metrics used before `top_k_desc_filtered_into` and
//! `scores_for_user_into`. Values must match **exactly** (f64 `==`), not
//! within a tolerance: the fast path is a reordering-free refactor. Part of
//! the CI `kernel-parity` job; run locally with
//!
//! ```text
//! cargo test --release -p frs-metrics --test metric_parity
//! ```

use frs_data::{Dataset, TrainTestSplit};
use frs_linalg::argsort_desc;
use frs_metrics::{ExposureReport, QualityReport};
use frs_model::{GlobalModel, ModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: usize = 50;
const N_USERS: usize = 30;
const K: usize = 10;

/// Seeded random scenario: model + user embeddings + interactions + split.
fn scenario(config: &ModelConfig, seed: u64) -> (GlobalModel, Vec<Vec<f32>>, TrainTestSplit) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = GlobalModel::new(config, N_ITEMS, &mut rng);
    let dim = model.dim();
    let user_embeddings: Vec<Vec<f32>> = (0..N_USERS)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut user_items: Vec<Vec<u32>> = (0..N_USERS)
        .map(|_| {
            let n = rng.gen_range(1..8);
            (0..n).map(|_| rng.gen_range(0..N_ITEMS as u32)).collect()
        })
        .collect();
    // Leave-one-out invariant: the held-out test item is never in train.
    let test_item: Vec<u32> = (0..N_USERS)
        .map(|u| {
            let t = rng.gen_range(0..N_ITEMS as u32);
            user_items[u].retain(|&j| j != t);
            t
        })
        .collect();
    let train = Dataset::from_user_items(N_ITEMS, user_items);
    (model, user_embeddings, TrainTestSplit { train, test_item })
}

/// Full-sort top-K: complete descending argsort, then filter and truncate.
fn naive_top_k(scores: &[f32], k: usize, eligible: impl Fn(usize) -> bool) -> Vec<usize> {
    argsort_desc(scores)
        .into_iter()
        .filter(|&j| eligible(j))
        .take(k)
        .collect()
}

fn naive_exposure(
    model: &GlobalModel,
    embs: &[Vec<f32>],
    users: &[usize],
    train: &Dataset,
    targets: &[u32],
    k: usize,
) -> (Vec<f64>, f64) {
    let mut exposed = vec![0usize; targets.len()];
    let mut eligible_users = vec![0usize; targets.len()];
    for &u in users {
        let scores = model.scores_for_user(&embs[u]);
        let top = naive_top_k(&scores, k, |j| !train.interacted(u, j as u32));
        for (t, &target) in targets.iter().enumerate() {
            if train.interacted(u, target) {
                continue;
            }
            eligible_users[t] += 1;
            if top.contains(&(target as usize)) {
                exposed[t] += 1;
            }
        }
    }
    let per_target: Vec<f64> = exposed
        .iter()
        .zip(&eligible_users)
        .map(|(&e, &n)| if n == 0 { 0.0 } else { e as f64 / n as f64 })
        .collect();
    let mean = per_target.iter().sum::<f64>() / per_target.len() as f64;
    (per_target, mean)
}

fn naive_quality(
    model: &GlobalModel,
    embs: &[Vec<f32>],
    users: &[usize],
    split: &TrainTestSplit,
    k: usize,
) -> (f64, f64) {
    let mut hits = 0usize;
    let mut ndcg_sum = 0.0f64;
    for &u in users {
        let scores = model.scores_for_user(&embs[u]);
        let test = split.test_item[u];
        // Rank = position of the test item in the full sorted eligible list
        // (ties toward lower id, the argsort_desc order).
        let order = naive_top_k(&scores, usize::MAX, |j| {
            split.eligible_for_ranking(u, j as u32)
        });
        let rank = order.iter().position(|&j| j == test as usize).unwrap();
        if rank < k {
            hits += 1;
            ndcg_sum += 1.0 / ((rank as f64) + 2.0).log2();
        }
    }
    let n = users.len().max(1);
    (hits as f64 / n as f64, ndcg_sum / n as f64)
}

#[test]
fn er_at_10_is_unchanged_on_seeded_scenarios() {
    for (config, seed) in [
        (ModelConfig::mf(8), 41u64),
        (ModelConfig::ncf(8), 42),
        (ModelConfig::mf(8), 43),
    ] {
        let (model, embs, split) = scenario(&config, seed);
        let users: Vec<usize> = (0..N_USERS).collect();
        let targets = [3u32, 17, 44];
        let report = ExposureReport::compute(&model, &embs, &users, &split.train, &targets, K);
        let (naive_per_target, naive_mean) =
            naive_exposure(&model, &embs, &users, &split.train, &targets, K);
        assert_eq!(report.per_target, naive_per_target, "seed {seed}");
        assert_eq!(report.mean, naive_mean, "seed {seed}");
        assert!(report.mean >= 0.0 && report.mean <= 1.0);
    }
}

#[test]
fn hr_at_10_is_unchanged_on_seeded_scenarios() {
    for (config, seed) in [
        (ModelConfig::mf(8), 51u64),
        (ModelConfig::ncf(8), 52),
        (ModelConfig::mf(8), 53),
    ] {
        let (model, embs, split) = scenario(&config, seed);
        let users: Vec<usize> = (0..N_USERS).collect();
        let report = QualityReport::compute(&model, &embs, &users, &split, K);
        let (naive_hr, naive_ndcg) = naive_quality(&model, &embs, &users, &split, K);
        assert_eq!(report.hr, naive_hr, "seed {seed}");
        assert_eq!(report.ndcg, naive_ndcg, "seed {seed}");
        assert_eq!(report.n_users, N_USERS);
    }
}

#[test]
fn er_handles_every_target_interacted() {
    // All users interacted with the target → empty denominator, ER 0 — the
    // partial-select path must preserve the degenerate-case convention.
    let mut rng = StdRng::seed_from_u64(7);
    let model = GlobalModel::new(&ModelConfig::mf(4), 6, &mut rng);
    let embs: Vec<Vec<f32>> = (0..3).map(|_| vec![1.0, 0.0, 0.0, 0.0]).collect();
    let train = Dataset::from_user_items(6, vec![vec![2], vec![2], vec![2]]);
    let report = ExposureReport::compute(&model, &embs, &[0, 1, 2], &train, &[2], K);
    assert_eq!(report.mean, 0.0);
}
