//! Softmax-based KL divergence between embedding vectors.
//!
//! The paper treats embeddings as distributions in two places: the PKL
//! similarity measure (Eq. 9) that motivates PIECK-UEA, and the `Re2` defense
//! regularizer (Eq. 15). An embedding is mapped onto the probability simplex
//! with a softmax, and KL is computed between the two resulting distributions:
//!
//! `KL(a ‖ b) := KL(softmax(a) ‖ softmax(b))`
//!
//! The analytic gradient with respect to the second argument's *logits* is
//! remarkably clean: `∂KL/∂b = softmax(b) − softmax(a)` (derived via the
//! log-softmax Jacobian), which is what the defense uses to push user
//! embeddings away from popular-item embeddings.

/// Softmax with the max-subtraction trick; output sums to 1.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax of empty vector");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    for v in out.iter_mut() {
        *v /= sum;
    }
    out
}

/// Log-softmax, stable for large logits.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "log_softmax of empty vector");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&x| x - max - log_sum).collect()
}

/// `KL(softmax(p_logits) ‖ softmax(q_logits))`, in nats. Always ≥ 0 and 0 iff
/// the two softmax distributions coincide.
pub fn kl_divergence(p_logits: &[f32], q_logits: &[f32]) -> f32 {
    debug_assert_eq!(p_logits.len(), q_logits.len());
    let p = softmax(p_logits);
    let log_p = log_softmax(p_logits);
    let log_q = log_softmax(q_logits);
    p.iter()
        .zip(log_p.iter().zip(log_q.iter()))
        .map(|(&pi, (&lpi, &lqi))| pi * (lpi - lqi))
        .sum::<f32>()
        .max(0.0) // guard tiny negative rounding
}

/// Gradient of [`kl_divergence`] with respect to `q_logits`:
/// `∂KL/∂q = softmax(q) − softmax(p)`.
pub fn kl_grad_wrt_q(p_logits: &[f32], q_logits: &[f32]) -> Vec<f32> {
    debug_assert_eq!(p_logits.len(), q_logits.len());
    let p = softmax(p_logits);
    let q = softmax(q_logits);
    q.iter().zip(p).map(|(&qi, pi)| qi - pi).collect()
}

/// Gradient of [`kl_divergence`] with respect to `p_logits`:
/// `∂KL/∂p_j = p_j · (log p_j − log q_j − KL)` where `p = softmax(p_logits)`.
///
/// Needed when the defense also regularizes popular-item embeddings (the
/// first KL argument) rather than treating them as constants.
pub fn kl_grad_wrt_p(p_logits: &[f32], q_logits: &[f32]) -> Vec<f32> {
    debug_assert_eq!(p_logits.len(), q_logits.len());
    let p = softmax(p_logits);
    let log_p = log_softmax(p_logits);
    let log_q = log_softmax(q_logits);
    let kl: f32 = p
        .iter()
        .zip(log_p.iter().zip(log_q.iter()))
        .map(|(&pi, (&lpi, &lqi))| pi * (lpi - lqi))
        .sum();
    p.iter()
        .zip(log_p.iter().zip(log_q.iter()))
        .map(|(&pi, (&lpi, &lqi))| pi * (lpi - lqi - kl))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(&[f32]) -> f32, x: &[f32], eps: f32) -> Vec<f32> {
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                xp[i] += eps;
                let mut xm = x.to_vec();
                xm[i] -= eps;
                (f(&xp) - f(&xm)) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(s.iter().all(|&p| p > 0.0));
        // Monotone in logits.
        assert!(s[0] < s[1] && s[1] < s[2]);
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let s = softmax(&[1e4, 0.0, -1e4]);
        assert!(s.iter().all(|v| v.is_finite()));
        assert!((s[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let logits = [0.5f32, -1.5, 2.0, 0.0];
        let s = softmax(&logits);
        let ls = log_softmax(&logits);
        for (p, lp) in s.iter().zip(&ls) {
            assert!((p.ln() - lp).abs() < 1e-5);
        }
    }

    #[test]
    fn kl_self_is_zero() {
        let a = [0.4f32, -1.0, 2.2];
        assert!(kl_divergence(&a, &a) < 1e-7);
        // Shift invariance of softmax ⇒ shifted logits also give 0.
        let b = [1.4f32, 0.0, 3.2];
        assert!(kl_divergence(&a, &b) < 1e-6);
    }

    #[test]
    fn kl_is_nonnegative_and_asymmetric() {
        let a = [2.0f32, 0.0, -1.0];
        let b = [-1.0f32, 1.0, 0.5];
        let kab = kl_divergence(&a, &b);
        let kba = kl_divergence(&b, &a);
        assert!(kab > 0.0);
        assert!(kba > 0.0);
        assert!((kab - kba).abs() > 1e-4, "KL should be asymmetric here");
    }

    #[test]
    fn kl_grad_q_matches_finite_difference() {
        let p = [0.3f32, -0.8, 1.2, 0.0];
        let q = [1.0f32, 0.5, -0.5, 0.2];
        let grad = kl_grad_wrt_q(&p, &q);
        let fd = finite_diff(|qq| kl_divergence(&p, qq), &q, 1e-3);
        for (g, f) in grad.iter().zip(&fd) {
            assert!((g - f).abs() < 1e-3, "analytic {g} vs fd {f}");
        }
    }

    #[test]
    fn kl_grad_p_matches_finite_difference() {
        let p = [0.3f32, -0.8, 1.2, 0.0];
        let q = [1.0f32, 0.5, -0.5, 0.2];
        let grad = kl_grad_wrt_p(&p, &q);
        let fd = finite_diff(|pp| kl_divergence(pp, &q), &p, 1e-3);
        for (g, f) in grad.iter().zip(&fd) {
            assert!((g - f).abs() < 1e-3, "analytic {g} vs fd {f}");
        }
    }
}
