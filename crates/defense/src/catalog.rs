//! Defense catalogue: the rows of Table IV.
//!
//! Like `frs_attacks::catalog`, [`DefenseKind`] is a thin wrapper over the
//! open registry in [`crate::registry`]: the enum carries the builtin
//! construction logic as its [`DefenseFactory`] implementation, and the
//! legacy [`DefenseKind::build_aggregator`] method resolves by name so
//! overrides and out-of-crate defenses compose with existing callers.

use frs_federation::{Aggregator, SumAggregator};
use serde::{Deserialize, Serialize};

use crate::krum::{Bulyan, Krum, MultiKrum};
use crate::median::{Median, TrimmedMean};
use crate::norm_bound::NormBound;
use crate::registry::{DefenseBuildCtx, DefenseFactory, DefenseSel};

/// Every defense evaluated in the paper, in Table IV row order. `Ours` is
/// client-side (see `pieck_core::defense`) and pairs with plain-sum server
/// aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseKind {
    NoDefense,
    NormBound,
    Median,
    TrimmedMean,
    Krum,
    MultiKrum,
    Bulyan,
    /// The paper's client-side regularization defense (Section V-B).
    Ours,
}

impl DefenseKind {
    /// All defenses in table order.
    pub fn all() -> [DefenseKind; 8] {
        [
            DefenseKind::NoDefense,
            DefenseKind::NormBound,
            DefenseKind::Median,
            DefenseKind::TrimmedMean,
            DefenseKind::Krum,
            DefenseKind::MultiKrum,
            DefenseKind::Bulyan,
            DefenseKind::Ours,
        ]
    }

    /// Stable registry name (kebab-case).
    pub fn name(&self) -> &'static str {
        match self {
            DefenseKind::NoDefense => "none",
            DefenseKind::NormBound => "norm-bound",
            DefenseKind::Median => "median",
            DefenseKind::TrimmedMean => "trimmed-mean",
            DefenseKind::Krum => "krum",
            DefenseKind::MultiKrum => "multi-krum",
            DefenseKind::Bulyan => "bulyan",
            DefenseKind::Ours => "ours",
        }
    }

    /// Parses a registry name back into the enum.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|k| k.name() == name)
    }

    /// Row label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::NoDefense => "NoDefense",
            DefenseKind::NormBound => "NormBound",
            DefenseKind::Median => "Median",
            DefenseKind::TrimmedMean => "TrimmedMean",
            DefenseKind::Krum => "Krum",
            DefenseKind::MultiKrum => "MultiKrum",
            DefenseKind::Bulyan => "Bulyan",
            DefenseKind::Ours => "ours",
        }
    }

    /// True for defenses that run inside benign clients rather than in the
    /// server's aggregation rule.
    pub fn is_client_side(&self) -> bool {
        matches!(self, DefenseKind::Ours)
    }

    /// Legacy entry point, kept for backwards compatibility: builds the
    /// server-side aggregator for this defense. `assumed_ratio` is the
    /// malicious fraction `p̃` the defense is tuned for;
    /// `norm_bound_threshold` parameterizes [`NormBound`]. Resolves through
    /// the registry, so re-registered names take effect here too.
    pub fn build_aggregator(
        &self,
        assumed_ratio: f64,
        norm_bound_threshold: f32,
    ) -> Box<dyn Aggregator> {
        DefenseSel::from(*self).build_aggregator(&DefenseBuildCtx {
            assumed_malicious_ratio: assumed_ratio,
            norm_bound_threshold,
        })
    }
}

/// The builtin construction logic (the old closed-enum dispatch, now one
/// factory implementation among equals).
impl DefenseFactory for DefenseKind {
    fn name(&self) -> &str {
        DefenseKind::name(self)
    }

    fn label(&self) -> &str {
        DefenseKind::label(self)
    }

    fn is_client_side(&self) -> bool {
        DefenseKind::is_client_side(self)
    }

    fn build_aggregator(&self, ctx: &DefenseBuildCtx) -> Box<dyn Aggregator> {
        // Defenses assume a minority of malicious uploads; clamp for safety.
        let ratio = ctx.assumed_malicious_ratio.clamp(0.0, 0.49);
        match self {
            DefenseKind::NoDefense | DefenseKind::Ours => Box::new(SumAggregator),
            DefenseKind::NormBound => Box::new(NormBound::new(ctx.norm_bound_threshold)),
            DefenseKind::Median => Box::new(Median),
            DefenseKind::TrimmedMean => Box::new(TrimmedMean::new(ratio)),
            DefenseKind::Krum => Box::new(Krum::new(ratio)),
            DefenseKind::MultiKrum => Box::new(MultiKrum::new(ratio)),
            DefenseKind::Bulyan => Box::new(Bulyan::new(ratio)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            DefenseKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn only_ours_is_client_side() {
        for k in DefenseKind::all() {
            assert_eq!(k.is_client_side(), k == DefenseKind::Ours, "{k:?}");
        }
    }

    #[test]
    fn aggregators_build_and_name_sensibly() {
        use frs_model::GlobalGradients;
        for k in DefenseKind::all() {
            let agg = k.build_aggregator(0.05, 1.0);
            let mut u1 = GlobalGradients::new();
            u1.add_item_grad(0, &[0.5, 0.5]);
            let mut u2 = GlobalGradients::new();
            u2.add_item_grad(0, &[0.4, 0.6]);
            let out = agg.aggregate(&[u1, u2]);
            let g = &out.items[&0];
            assert_eq!(g.len(), 2, "{k:?}");
            assert!(g.iter().all(|v| v.is_finite()), "{k:?}");
            assert!(!agg.name().is_empty());
        }
    }

    #[test]
    fn extreme_assumed_ratio_is_clamped() {
        use frs_model::GlobalGradients;
        // Must not panic even with a ratio >= 0.5.
        let agg = DefenseKind::Krum.build_aggregator(0.9, 1.0);
        let mut u = GlobalGradients::new();
        u.add_item_grad(0, &[1.0]);
        assert!(agg.aggregate(&[u]).items[&0][0].is_finite());
    }
}
