//! Streaming progress for long suite runs.
//!
//! [`ExperimentSuite::run_with`](crate::suite::ExperimentSuite::run_with)
//! reports every finished grid cell to a [`ProgressSink`] the moment it
//! completes — cell coordinates, content-addressed cache key, headline
//! metrics, wall time, and whether the result came from the cache — so a
//! multi-hour `paper all --full` is observable mid-flight instead of silent
//! until the final report. The JSONL sink ([`JsonlSink`]) appends one JSON
//! object per line and flushes per event, which makes `tail -f run.jsonl`
//! (or a CI grep for `"cache_hit":false`) the whole monitoring story.
//!
//! A sink can also *stop* the run: returning `false` from
//! [`ProgressSink::cell_finished`] asks the suite to schedule no further
//! cells (in-flight cells drain first). Together with the cache this gives
//! resumability — an aborted or killed run leaves its finished cells
//! persisted, and the next invocation replays them as hits and executes
//! only the remainder.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::{fmt, io};

use serde::{Deserialize, Serialize};

/// One finished grid cell, as reported to a [`ProgressSink`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellEvent {
    /// Suite slug (`table4`, `fig5`, …).
    pub suite: String,
    /// Sweep name within the suite.
    pub sweep: String,
    /// Grid index of the cell, in declaration order.
    pub index: usize,
    /// Total cells in the suite's grid.
    pub total: usize,
    /// Content-addressed key of the cell's scenario (see `crate::cache`).
    pub key: String,
    pub dataset: String,
    pub model: String,
    pub attack: String,
    /// Canonical attack parameter overrides in CLI form (`scale=2,top_n=20`;
    /// empty when the selection carries none).
    pub attack_params: String,
    pub defense: String,
    /// Canonical defense parameter overrides in CLI form (`beta=0.9,re2=false`;
    /// empty when the selection carries none).
    pub defense_params: String,
    /// Variant label (empty for the identity patch).
    pub variant: String,
    pub rounds: usize,
    /// True when the outcome was replayed from the suite cache.
    pub cache_hit: bool,
    /// Largest per-round client fan-out width used to compute the outcome
    /// (for cache hits, replayed from the run that computed it). Records the
    /// effective parallelism a `--round-threads=auto` budget granted.
    pub round_threads: usize,
    /// Wall time spent on this cell (lookup or simulation), milliseconds.
    pub wall_ms: f64,
    pub er_percent: f64,
    pub hr_percent: f64,
}

/// Receives cell-completion events from a running suite.
///
/// Implementations must be `Sync`: the suite's worker threads all report
/// through one shared reference. ("No sink" is modelled as
/// `ExecOptions::sink = None`, not a no-op implementation.)
pub trait ProgressSink: Sync {
    /// Called once per finished cell, in completion (not grid) order.
    /// Returning `false` stops the suite from scheduling further cells.
    fn cell_finished(&self, event: &CellEvent) -> bool;
}

/// Appends one JSON object per finished cell to a file, flushing per line
/// so the stream is readable while the run is still going.
///
/// In non-append mode the file is truncated **at the first event**, not at
/// open: an invocation that errors out before any cell finishes (bad
/// operand, unknown dataset, …) leaves a previous run's history intact.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    /// Pending start-of-stream truncation (non-append mode only).
    truncate_on_first_event: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Opens the progress file for a fresh run (truncated at first event).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open(path, false)
    }

    /// Opens the progress file, appending when `append` (the `--resume`
    /// behaviour: one file accumulates the whole interrupted-run history).
    pub fn open(path: impl AsRef<Path>, append: bool) -> io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // Always open in append mode: writability is validated eagerly, but
        // existing content survives until the first event actually lands.
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
            truncate_on_first_event: std::sync::atomic::AtomicBool::new(!append),
        })
    }
}

impl ProgressSink for JsonlSink {
    fn cell_finished(&self, event: &CellEvent) -> bool {
        use std::sync::atomic::Ordering;

        let line = serde_json::to_string(event).expect("cell event serializes");
        let mut writer = self.writer.lock().expect("progress writer poisoned");
        // A full disk shouldn't kill a multi-hour sweep; the report still
        // lands at the end. Surface problems and keep going.
        if self.truncate_on_first_event.swap(false, Ordering::SeqCst) {
            // Append-mode writes land at EOF, so after set_len(0) the next
            // write starts the fresh stream.
            if let Err(e) = writer.get_mut().set_len(0) {
                eprintln!("progress sink truncate failed: {e}");
            }
        }
        if let Err(e) = writeln!(writer, "{line}").and_then(|_| writer.flush()) {
            eprintln!("progress sink write failed: {e}");
        }
        true
    }
}

/// Collects events in memory; test harnesses use it to observe a run and,
/// optionally, to abort after a fixed number of cells (simulating a killed
/// run without killing the process).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<CellEvent>>,
    stop_after: Option<usize>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stops the run once `n` events have been recorded.
    pub fn stop_after(n: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            stop_after: Some(n),
        }
    }

    /// Snapshot of the events seen so far, in completion order.
    pub fn events(&self) -> Vec<CellEvent> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// How many recorded events were cache hits.
    pub fn hits(&self) -> usize {
        self.events().iter().filter(|e| e.cache_hit).count()
    }
}

impl ProgressSink for MemorySink {
    fn cell_finished(&self, event: &CellEvent) -> bool {
        let mut events = self.events.lock().expect("memory sink poisoned");
        events.push(event.clone());
        match self.stop_after {
            Some(n) => events.len() < n,
            None => true,
        }
    }
}

/// Why a suite run stopped before completing its grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteAborted {
    /// Cells that finished (and, with a cache, were persisted).
    pub completed: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Whether a cache was attached — i.e. whether the finished cells
    /// survived the abort.
    pub cached: bool,
}

impl fmt::Display for SuiteAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "suite aborted by its progress sink after {}/{} cells ({})",
            self.completed,
            self.total,
            if self.cached {
                "finished cells are cached; re-run with --resume"
            } else {
                "no cache attached, finished cells were discarded"
            }
        )
    }
}

impl std::error::Error for SuiteAborted {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event(index: usize, cache_hit: bool) -> CellEvent {
        CellEvent {
            suite: "table4".into(),
            sweep: "defenses-MF".into(),
            index,
            total: 48,
            key: "ab".repeat(32),
            dataset: "ml100k".into(),
            model: "MF".into(),
            attack: "PIECK-UEA".into(),
            attack_params: "scale=2".into(),
            defense: "ours".into(),
            defense_params: "beta=0.5".into(),
            variant: String::new(),
            rounds: 150,
            cache_hit,
            round_threads: 2,
            wall_ms: 12.5,
            er_percent: 93.39,
            hr_percent: 41.5,
        }
    }

    #[test]
    fn events_round_trip_as_single_json_lines() {
        let event = sample_event(3, true);
        let line = serde_json::to_string(&event).unwrap();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"cache_hit\":true"), "{line}");
        let back: CellEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back.index, 3);
        assert_eq!(back.key, event.key);
        assert_eq!(back.er_percent, event.er_percent);
    }

    #[test]
    fn jsonl_sink_appends_and_truncates() {
        let path = std::env::temp_dir().join(format!("frs-progress-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let sink = JsonlSink::create(&path).unwrap();
        assert!(sink.cell_finished(&sample_event(0, false)));
        assert!(sink.cell_finished(&sample_event(1, false)));
        drop(sink);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2);

        // `--resume` append mode keeps the history…
        let sink = JsonlSink::open(&path, true).unwrap();
        sink.cell_finished(&sample_event(2, true));
        drop(sink);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);

        // …a fresh sink that never receives an event leaves it untouched
        // (a failed invocation must not destroy a previous run's history)…
        drop(JsonlSink::create(&path).unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);

        // …and a fresh run truncates at its first event.
        let sink = JsonlSink::create(&path).unwrap();
        sink.cell_finished(&sample_event(0, false));
        drop(sink);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_sink_stops_after_n() {
        let sink = MemorySink::stop_after(2);
        assert!(sink.cell_finished(&sample_event(0, false)));
        assert!(!sink.cell_finished(&sample_event(1, true)));
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.hits(), 1);
    }
}
