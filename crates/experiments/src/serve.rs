//! `paper serve`: train (or resume) one scenario while answering top-K
//! recommendation queries on a Unix socket.
//!
//! This is the orchestration between the experiment layer and the
//! [`frs_serve`] subsystem: build the scenario's world, restore any cache
//! checkpoint for its key, publish a model [`Snapshot`] at every round
//! boundary, and keep the daemon answering until a SIGINT/SIGTERM. The
//! trainer and the daemon each hold a [`CoreBudget`] lease, so query
//! handling and intra-round client fan-out split the `--threads` grant
//! fairly rather than oversubscribing the machine.
//!
//! Lifecycle:
//!
//! 1. Socket opens immediately — queries are answerable from the restored
//!    round (or round zero) onward, concurrently with training.
//! 2. Every round publishes a fresh snapshot; with `--checkpoint-every N`
//!    the run also persists a [`ScenarioCheckpoint`] every N rounds.
//! 3. A shutdown request mid-training writes a final checkpoint, drains
//!    in-flight queries, and returns; re-running the same command resumes
//!    where it stopped.
//! 4. A run that trains to completion keeps serving (and keeps its final
//!    checkpoint on disk as the serving artifact — `cache gc` leaves
//!    fresh checkpoints alone) until a shutdown request arrives.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use frs_federation::CoreBudget;
use frs_serve::{Snapshot, SnapshotCell};

use crate::cache::{scenario_key, SuiteCache};
use crate::scenario::{build_simulation, build_world, ScenarioCheckpoint, ScenarioConfig};
use crate::shutdown;

/// How the serve loop idles between shutdown-flag polls once training is
/// done (or while draining).
const IDLE_POLL: Duration = Duration::from_millis(50);

/// What a serve session did, for the CLI's exit report.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Rounds completed when the session ended.
    pub rounds_done: usize,
    /// The scenario's configured round target.
    pub target_rounds: usize,
    /// Round the session resumed from (`None` = fresh start).
    pub resumed_from: Option<usize>,
    /// Top-K queries answered over the session.
    pub queries_served: u64,
    /// Whether a shutdown request stopped training before the target.
    pub interrupted: bool,
}

/// Runs the serve session: trains `cfg` toward its round target (resuming
/// from a cache checkpoint when one exists), serving top-K queries on
/// `socket` the whole time, until a [`shutdown`] request. See the module
/// docs for the lifecycle. Blocks until shutdown; returns the session
/// summary after the daemon has drained.
pub fn serve_scenario(
    cfg: &ScenarioConfig,
    socket: &Path,
    cache: Option<&SuiteCache>,
    checkpoint_every: usize,
    budget: &CoreBudget,
) -> Result<ServeSummary, String> {
    // Serve sessions never sample trend points, and their checkpoints carry
    // an empty trend — sharing a cache key with a trend-sampling run would
    // let a resumed report silently miss its early points.
    if cfg.trend_every != 0 {
        return Err("serve requires trend_every = 0 (trend sampling is a report feature)".into());
    }
    let key = scenario_key(cfg);
    let (_full, split, targets) = build_world(cfg);
    let train = Arc::new(split.train.clone());
    let mut sim = build_simulation(cfg, Arc::clone(&train), &targets);

    let mut start = 0;
    if let Some(cache) = cache {
        if let Some(ckpt) = cache.load_checkpoint(&key) {
            if ckpt.sim.round <= cfg.rounds {
                match sim.restore_checkpoint(&ckpt.sim) {
                    Ok(()) => start = ckpt.sim.round,
                    Err(e) => eprintln!("ignoring checkpoint for {key}: {e}"),
                }
            }
        }
    }
    let resumed_from = (start > 0).then_some(start);

    let snapshot_now = |sim: &frs_federation::Simulation, round: usize| {
        Snapshot::new(
            round,
            round >= cfg.rounds,
            sim.model().clone(),
            sim.user_embeddings(),
            Arc::clone(&train),
        )
    };
    let cell = Arc::new(SnapshotCell::new(snapshot_now(&sim, start)));
    let server = frs_serve::spawn(socket, Arc::clone(&cell), budget.lease())
        .map_err(|e| format!("cannot serve on {}: {e}", socket.display()))?;

    sim.set_core_lease(Some(budget.lease()));
    let store_checkpoint = |sim: &frs_federation::Simulation| {
        if let Some(cache) = cache {
            let ckpt = ScenarioCheckpoint {
                trend: Vec::new(),
                sim: sim.capture_checkpoint(),
            };
            if let Err(e) = cache.store_checkpoint(&key, &ckpt) {
                eprintln!("checkpoint write failed for {key}: {e}");
            }
        }
    };

    let mut done = start;
    let mut interrupted = false;
    for r in start..cfg.rounds {
        if shutdown::requested() {
            interrupted = true;
            break;
        }
        sim.run_round();
        done = r + 1;
        cell.publish(snapshot_now(&sim, done));
        if checkpoint_every > 0 && done % checkpoint_every == 0 && done < cfg.rounds {
            store_checkpoint(&sim);
        }
    }
    // The final state is always worth a checkpoint: interrupted runs resume
    // from it, completed runs reload it instantly on the next serve.
    if done > start || resumed_from.is_none() {
        store_checkpoint(&sim);
    }
    sim.set_core_lease(None); // return the trainer's share to the daemon

    // Serve until asked to stop (immediately, if the interrupt already
    // arrived mid-training).
    while !shutdown::requested() {
        std::thread::sleep(IDLE_POLL);
    }
    let queries_served = server.shutdown();

    Ok(ServeSummary {
        rounds_done: done,
        target_rounds: cfg.rounds,
        resumed_from,
        queries_served,
        interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    use frs_data::DatasetSpec;
    use frs_model::ModelKind;
    use frs_serve::{StatusResponse, TopKResponse};

    fn tiny_cfg(rounds: usize) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::baseline(DatasetSpec::tiny(), ModelKind::Mf, 21);
        cfg.federation.clients_per_round = frs_federation::ClientsPerRound::Count(24);
        cfg.rounds = rounds;
        cfg
    }

    fn temp_cache(tag: &str) -> SuiteCache {
        let dir = std::env::temp_dir().join(format!("frs-serve-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SuiteCache::open(dir).unwrap()
    }

    fn socket_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("frs-serve-cmd-{tag}-{}.sock", std::process::id()))
    }

    fn query(stream: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> String {
        writeln!(stream, "{line}").unwrap();
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        out.trim().to_string()
    }

    #[test]
    fn serves_queries_during_training_then_drains_on_shutdown() {
        let _guard = shutdown::test_lock();
        shutdown::reset();
        let cfg = tiny_cfg(40);
        let cache = temp_cache("during");
        let socket = socket_path("during");
        let budget = CoreBudget::new(2);

        let session = std::thread::scope(|scope| {
            let worker =
                scope.spawn(|| serve_scenario(&cfg, &socket, Some(&cache), 5, &budget).unwrap());

            // The socket comes up while training runs; queries answer
            // against whatever epoch is current.
            while !socket.exists() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let mut stream = UnixStream::connect(&socket).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let status: StatusResponse =
                serde_json::from_str(&query(&mut stream, &mut reader, "{}")).unwrap();
            assert!(status.n_users > 0);
            let top: TopKResponse =
                serde_json::from_str(&query(&mut stream, &mut reader, "{\"user\":0,\"k\":3}"))
                    .unwrap();
            assert_eq!(top.items.len(), 3);

            shutdown::trigger();
            let session = worker.join().unwrap();
            shutdown::reset();
            session
        });

        assert!(session.queries_served >= 1);
        assert!(!socket.exists(), "socket removed on shutdown");
        // The final state left a resumable checkpoint.
        let key = scenario_key(&cfg);
        assert!(cache.load_checkpoint(&key).is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn interrupted_session_resumes_from_its_checkpoint() {
        let _guard = shutdown::test_lock();
        let cfg = tiny_cfg(8);
        let cache = temp_cache("resume");
        let socket = socket_path("resume");
        let budget = CoreBudget::new(2);

        // A shutdown requested before the loop starts: train zero rounds,
        // checkpoint round 0, exit.
        shutdown::trigger();
        let first = serve_scenario(&cfg, &socket, Some(&cache), 2, &budget).unwrap();
        assert!(first.interrupted);
        assert_eq!(first.rounds_done, 0);

        // Second session trains to completion and reports the resume point.
        shutdown::reset();
        let done = std::thread::scope(|scope| {
            let worker =
                scope.spawn(|| serve_scenario(&cfg, &socket, Some(&cache), 2, &budget).unwrap());
            // Watch training finish through the status endpoint, then stop
            // the daemon.
            while !socket.exists() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let mut stream = UnixStream::connect(&socket).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            loop {
                let status: StatusResponse =
                    serde_json::from_str(&query(&mut stream, &mut reader, "{}")).unwrap();
                if status.training_done {
                    assert_eq!(status.round, 8);
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            drop(stream);
            shutdown::trigger();
            let done = worker.join().unwrap();
            shutdown::reset();
            done
        });
        assert!(!done.interrupted);
        assert_eq!(done.rounds_done, 8);

        // A third session resumes *at* the target: no training, serves the
        // final model.
        shutdown::trigger();
        let third = serve_scenario(&cfg, &socket, Some(&cache), 2, &budget).unwrap();
        assert_eq!(third.resumed_from, Some(8));
        assert_eq!(third.rounds_done, 8);
        assert!(!third.interrupted, "nothing left to interrupt");
        shutdown::reset();
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
