//! Matrix-factorization global model (MF-FRS).
//!
//! The global model is exactly the item-embedding table; the interaction
//! function is the fixed dot product `Ψ_MF(u, v) = u ⊙ v` — nothing else is
//! shared, which is why interaction-function attacks (A-RA/A-HUM) are inert
//! against it (paper Table I).

use frs_linalg::{vector, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// MF-FRS global parameters: one embedding row per item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfModel {
    items: Matrix,
}

impl MfModel {
    /// Uniformly initialized item table (`U(−scale, scale)`).
    pub fn new<R: Rng + ?Sized>(n_items: usize, dim: usize, scale: f32, rng: &mut R) -> Self {
        Self {
            items: Matrix::uniform(n_items, dim, scale, rng),
        }
    }

    #[inline]
    pub fn n_items(&self) -> usize {
        self.items.rows()
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.items.cols()
    }

    #[inline]
    pub fn item_embedding(&self, item: u32) -> &[f32] {
        self.items.row(item as usize)
    }

    #[inline]
    pub fn item_embedding_mut(&mut self, item: u32) -> &mut [f32] {
        self.items.row_mut(item as usize)
    }

    /// The whole table (the popular-item miner diffs it round to round).
    #[inline]
    pub fn items(&self) -> &Matrix {
        &self.items
    }

    /// Raw score `u · v_j`.
    #[inline]
    pub fn logit(&self, user_emb: &[f32], item: u32) -> f32 {
        vector::dot(user_emb, self.item_embedding(item))
    }

    /// Per-example backward: given `delta = ∂L/∂logit`, accumulates
    /// `∂L/∂u += delta·v` into `d_user` and returns `∂L/∂v = delta·u`.
    pub fn backward(
        &self,
        user_emb: &[f32],
        item: u32,
        delta: f32,
        d_user: &mut [f32],
    ) -> Vec<f32> {
        let v = self.item_embedding(item);
        vector::axpy(delta, v, d_user);
        user_emb.iter().map(|&ui| delta * ui).collect()
    }

    /// Gradient of the logit w.r.t. the item embedding with the "user" side
    /// held constant — the poisonous-gradient primitive of Eq. (5).
    pub fn item_grad_of_logit(&self, user_emb: &[f32], _item: u32) -> Vec<f32> {
        user_emb.to_vec()
    }

    /// Applies `v_j ← v_j − lr·g` for one item.
    pub fn apply_item_gradient(&mut self, item: u32, grad: &[f32], lr: f32) {
        vector::axpy(-lr, grad, self.items.row_mut(item as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> MfModel {
        MfModel::new(5, 3, 0.5, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn logit_is_dot_product() {
        let m = model();
        let u = [1.0, 2.0, 3.0];
        let expect = vector::dot(&u, m.item_embedding(2));
        assert_eq!(m.logit(&u, 2), expect);
    }

    #[test]
    fn backward_returns_scaled_user() {
        let m = model();
        let u = [1.0, -1.0, 0.5];
        let mut d_user = vec![0.0; 3];
        let d_item = m.backward(&u, 1, 2.0, &mut d_user);
        assert_eq!(d_item, vec![2.0, -2.0, 1.0]);
        // d_user = delta * v.
        let v = m.item_embedding(1);
        for i in 0..3 {
            assert!((d_user[i] - 2.0 * v[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn backward_matches_finite_difference() {
        let mut m = model();
        let u = [0.3, -0.8, 0.2];
        let mut d_user = vec![0.0; 3];
        let d_item = m.backward(&u, 0, 1.0, &mut d_user);
        let eps = 1e-3;
        for i in 0..3 {
            let orig = m.item_embedding(0)[i];
            m.item_embedding_mut(0)[i] = orig + eps;
            let up = m.logit(&u, 0);
            m.item_embedding_mut(0)[i] = orig - eps;
            let dn = m.logit(&u, 0);
            m.item_embedding_mut(0)[i] = orig;
            assert!((d_item[i] - (up - dn) / (2.0 * eps)).abs() < 1e-3);
        }
    }

    #[test]
    fn apply_item_gradient_descends() {
        let mut m = model();
        let u = [1.0, 1.0, 1.0];
        let before = m.logit(&u, 3);
        // Gradient of −logit w.r.t. v is −u; applying it should raise the score.
        let grad: Vec<f32> = u.iter().map(|&x| -x).collect();
        m.apply_item_gradient(3, &grad, 0.1);
        assert!(m.logit(&u, 3) > before);
    }
}
