//! # pieck-frs — umbrella crate
//!
//! Reproduction of *"Preventing the Popular Item Embedding Based Attack in
//! Federated Recommendations"* (ICDE 2024). This crate re-exports the whole
//! workspace behind one dependency so examples, integration tests, and
//! downstream users can `use pieck_frs::...` everything:
//!
//! - [`linalg`] — numeric primitives (vectors, softmax-KL, robust stats)
//! - [`data`] — synthetic long-tail datasets, splits, negative sampling
//! - [`model`] — MF-FRS and DL-FRS (NeuMF-style NCF) with manual gradients
//! - [`metrics`] — ER@K, HR@K, Δ-Norm, PKL/UCR
//! - [`federation`] — the FL protocol: clients, server, aggregation hook
//! - [`pieck`] — the paper's contribution: mining, IPE, UEA, and the defense
//! - [`attacks`] — baselines: FedRecAttack, PipAttack, A-RA, A-HUM
//! - [`defense`] — robust aggregators: NormBound, Median, TrimmedMean, Krum…
//! - [`serve`] — the top-K recommendation daemon behind `paper serve`
//! - [`experiments`] — the table/figure reproduction harness
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction methodology and measured results.

pub use frs_attacks as attacks;
pub use frs_data as data;
pub use frs_defense as defense;
pub use frs_experiments as experiments;
pub use frs_federation as federation;
pub use frs_linalg as linalg;
pub use frs_metrics as metrics;
pub use frs_model as model;
pub use frs_serve as serve;
pub use pieck_core as pieck;
