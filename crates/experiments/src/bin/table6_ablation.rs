//! Table VI: ablations of the IPE attack loss L_IPE (similarity metric,
//! κ rank-weighting, P± sign partition) and of the defense loss L_def
//! (Re1 / Re2), on MF-FRS + ML-100K.
//!
//! Usage: `table6_ablation [--scale f] [--rounds n] [--seed s]`

use frs_attacks::{AttackKind, ScaledClient};
use frs_defense::DefenseKind;
use frs_experiments::report::pct;
use frs_experiments::scenario::run_with;
use frs_experiments::{paper_scenario, run, CommonArgs, PaperDataset, Table};
use frs_federation::Client;
use frs_model::ModelKind;
use pieck_core::{IpeConfig, PieckClient, PieckConfig, SimilarityMetric};

fn run_ipe_variant(args: &CommonArgs, ipe: IpeConfig) -> (f64, f64) {
    let mut cfg = paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
    cfg.attack = AttackKind::PieckIpe;
    cfg.rounds = args.rounds_or(150);
    let poison_scale = cfg.poison_scale;
    let seed = cfg.federation.seed;
    let out = run_with(&cfg, |first_id, count, targets| {
        (0..count)
            .map(|i| {
                let mut pieck = PieckConfig::ipe(targets.to_vec());
                pieck.variant = pieck_core::PieckVariant::Ipe(ipe.clone());
                pieck.top_n = 10;
                let client: Box<dyn Client> = Box::new(PieckClient::new(first_id + i, pieck));
                let _ = seed;
                Box::new(ScaledClient::new(client, poison_scale).with_cap(2.0)) as Box<dyn Client>
            })
            .collect()
    });
    (out.er_percent, out.hr_percent)
}

fn main() {
    let args = CommonArgs::parse();

    println!("\n### Table VI (left) — L_IPE ablation (MF-FRS, ml100k-like)");
    let mut table = Table::new(&["Metric", "κ(·)", "P+/-", "ER@10", "HR@10"]);
    let variants: [(&str, IpeConfig); 4] = [
        (
            "PKL",
            IpeConfig {
                metric: SimilarityMetric::Kl,
                use_rank_weights: false,
                use_sign_partition: false,
                lambda: 1.0,
            },
        ),
        (
            "PCOS",
            IpeConfig {
                metric: SimilarityMetric::Cosine,
                use_rank_weights: false,
                use_sign_partition: false,
                lambda: 1.0,
            },
        ),
        (
            "PCOS",
            IpeConfig {
                metric: SimilarityMetric::Cosine,
                use_rank_weights: true,
                use_sign_partition: false,
                lambda: 1.0,
            },
        ),
        ("PCOS", IpeConfig::default()),
    ];
    for (name, ipe) in variants {
        let kappa = if ipe.use_rank_weights { "+" } else { "" };
        let part = if ipe.use_sign_partition { "+" } else { "" };
        let (er, hr) = run_ipe_variant(&args, ipe);
        table.row(&[name.to_string(), kappa.into(), part.into(), pct(er), pct(hr)]);
    }
    print!("{}", table.to_markdown());

    println!("\n### Table VI (right) — L_def ablation (MF-FRS, ml100k-like)");
    let mut table = Table::new(&["Re1", "Re2", "IPE ER", "IPE HR", "UEA ER", "UEA HR"]);
    for (use_re1, use_re2) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut cells = vec![
            if use_re1 { "+" } else { "" }.to_string(),
            if use_re2 { "+" } else { "" }.to_string(),
        ];
        for attack in [AttackKind::PieckIpe, AttackKind::PieckUea] {
            let mut cfg =
                paper_scenario(PaperDataset::Ml100k, ModelKind::Mf, args.scale, args.seed);
            cfg.attack = attack;
            cfg.defense = if use_re1 || use_re2 {
                DefenseKind::Ours
            } else {
                DefenseKind::NoDefense
            };
            cfg.our_defense.use_re1 = use_re1;
            cfg.our_defense.use_re2 = use_re2;
            cfg.rounds = args.rounds_or(150);
            cfg.mined_top_n = if attack == AttackKind::PieckUea { 30 } else { 10 };
            let out = run(&cfg);
            cells.push(pct(out.er_percent));
            cells.push(pct(out.hr_percent));
        }
        table.row(&cells);
    }
    print!("{}", table.to_markdown());
}
