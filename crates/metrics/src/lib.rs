//! Evaluation metrics for attacks, defenses, and recommendation quality.
//!
//! - [`exposure`]: **ER@K** (Eq. 3) — the attack-success measure: the fraction
//!   of benign users whose top-K lists contain a target item.
//! - [`hit_ratio`]: **HR@K** — recommendation quality under the leave-one-out
//!   protocol, plus NDCG@K as a secondary quality measure.
//! - [`delta_norm`]: the **Δ-Norm** tracker (Eq. 7) used for Fig. 4 and by
//!   Algorithm 1's validation.
//! - [`distribution`]: **PKL** (Eq. 9) and **UCR** — the Table II measures
//!   behind the user-embedding-approximation insight.

pub mod delta_norm;
pub mod distribution;
pub mod exposure;
pub mod hit_ratio;
pub mod popularity_bias;

pub use delta_norm::DeltaNormTracker;
pub use distribution::{covered_users, pairwise_kl, user_coverage_ratio};
pub use exposure::{exposure_ratio_at_k, ExposureReport};
pub use hit_ratio::{hit_ratio_at_k, ndcg_at_k, QualityReport};
pub use popularity_bias::{
    average_recommended_popularity, catalogue_coverage, gini_coefficient, recommendation_frequency,
};
