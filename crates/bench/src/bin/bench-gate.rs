//! `bench-gate` — the CI perf-regression gate over `BENCH_*.json` files.
//!
//! ```text
//! bench-gate compare --baseline BENCH_baseline.json --current BENCH_quick.json
//!            [--threshold 1.5] [--min-ns 100] [--summary gate.md] [--ratchet]
//! bench-gate collect bench-lines.jsonl   # JSONL → baseline JSON on stdout
//! ```
//!
//! `compare` prints the Markdown delta table (and writes it to `--summary`
//! when given, for `$GITHUB_STEP_SUMMARY`), then exits 1 if any named
//! benchmark regressed past the threshold or vanished from the current run.
//! Repeatable `--only PREFIX` / `--exclude PREFIX` filters narrow both
//! record sets by bench-id prefix before comparing — how CI splits the
//! committed baseline between the bench-smoke job (`--exclude
//! serve/loadtest_`) and the serve-load job (`--only serve/loadtest_`)
//! without either flagging the other's entries as missing.
//! With `--ratchet` (the CI default), an *unclaimed improvement* — a bench
//! running >25% faster than the committed baseline after drift calibration —
//! also fails, until `BENCH_baseline.json` is refreshed in the same PR.
//! The threshold can also come from `BENCH_GATE_THRESHOLD` (the flag wins).

// Exit codes are this tool's interface (0 pass, 1 gate failure, 2 usage/IO),
// and the diverging `usage() -> !` / mid-closure error paths need
// `process::exit` — the workspace-wide deny exists to keep `exit` out of
// library code, not out of a CLI's top level.
#![allow(clippy::exit)]

use std::process::exit;

use frs_bench::gate::{self, DEFAULT_MIN_NS, DEFAULT_THRESHOLD};

fn usage() -> ! {
    eprintln!(
        "usage: bench-gate compare --baseline FILE --current FILE \
         [--threshold x] [--min-ns n] [--summary FILE] [--ratchet] \
         [--only PREFIX]... [--exclude PREFIX]...\n\
         \x20      bench-gate collect LINES_FILE"
    );
    exit(2);
}

fn read(path: &str) -> Vec<gate::BenchRecord> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-gate: cannot read {path}: {e}");
        exit(2);
    });
    gate::parse_records(&text).unwrap_or_else(|e| {
        eprintln!("bench-gate: cannot parse {path}: {e}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("collect") => {
            let Some(path) = args.get(1) else { usage() };
            print!("{}", gate::render_baseline(&read(path)));
        }
        Some("compare") => {
            let mut baseline = None;
            let mut current = None;
            let mut summary = None;
            let mut threshold = std::env::var("BENCH_GATE_THRESHOLD")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_THRESHOLD);
            let mut min_ns = DEFAULT_MIN_NS;
            let mut ratchet = false;
            let mut only: Vec<String> = Vec::new();
            let mut excluded: Vec<String> = Vec::new();
            let mut iter = args[1..].iter();
            while let Some(flag) = iter.next() {
                let mut value = || iter.next().cloned().unwrap_or_else(|| usage());
                match flag.as_str() {
                    "--baseline" => baseline = Some(value()),
                    "--current" => current = Some(value()),
                    "--summary" => summary = Some(value()),
                    "--threshold" => {
                        threshold = value().parse().unwrap_or_else(|_| usage());
                    }
                    "--min-ns" => min_ns = value().parse().unwrap_or_else(|_| usage()),
                    "--ratchet" => ratchet = true,
                    "--only" => only.push(value()),
                    "--exclude" => excluded.push(value()),
                    _ => usage(),
                }
            }
            let (Some(baseline), Some(current)) = (baseline, current) else {
                usage()
            };
            if !(threshold.is_finite() && threshold >= 1.0) {
                eprintln!("bench-gate: threshold must be ≥ 1.0");
                exit(2);
            }
            let report = gate::compare(
                &gate::filter_records(read(&baseline), &only, &excluded),
                &gate::filter_records(read(&current), &only, &excluded),
                threshold,
                min_ns,
                ratchet,
            );
            let markdown = report.to_markdown();
            print!("{markdown}");
            if let Some(path) = summary {
                if let Err(e) = std::fs::write(&path, &markdown) {
                    eprintln!("bench-gate: cannot write {path}: {e}");
                    exit(2);
                }
            }
            if !report.passed() {
                let names: Vec<String> = report.failures().map(|r| r.bench.clone()).collect();
                eprintln!(
                    "bench-gate: {} benchmark(s) failed the {threshold:.2}x gate: {}",
                    names.len(),
                    names.join(", ")
                );
                exit(1);
            }
        }
        _ => usage(),
    }
}
