//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `black_box`,
//! `BenchmarkId`, `Throughput`, `sample_size` — over a simple
//! median-of-samples wall-clock harness. No statistics machinery, no HTML
//! reports: each benchmark prints one `group/id  time/iter` line, which is
//! what CI and quick local comparisons need.
//!
//! Two environment knobs support CI smoke runs:
//!
//! - `FRS_BENCH_QUICK=1` — quick mode: two samples per benchmark and a much
//!   smaller per-sample time budget, trading precision for wall time so the
//!   whole bench suite smoke-tests in seconds.
//! - `FRS_BENCH_JSON=path` — besides printing, *append* one JSON object per
//!   benchmark (`{"bench": "group/id", "ns_per_iter": …}`) to `path`.
//!   Append (not truncate) because every bench target is its own process;
//!   CI collects the lines into one artifact.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declared throughput of the benched operation (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// True when `FRS_BENCH_QUICK` requests the fast smoke configuration.
fn quick_mode() -> bool {
    std::env::var("FRS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::default().configure_from_args()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Samples per benchmark, after the quick-mode override.
    fn effective_sample_size(&self) -> usize {
        if quick_mode() {
            2
        } else {
            self.sample_size
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.effective_sample_size());
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.effective_sample_size());
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.median_per_iter();
        let throughput = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let gib = n as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
                format!("   {gib:.2} GiB/s")
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let meps = n as f64 / per_iter.as_secs_f64() / 1e6;
                format!("   {meps:.2} Melem/s")
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12.3?}/iter{throughput}",
            format!("{}/{}", self.name, id.0),
            per_iter
        );
        if let Ok(path) = std::env::var("FRS_BENCH_JSON") {
            if !path.is_empty() {
                self.append_json(&path, id, per_iter);
            }
        }
    }

    /// Appends one JSON object line for this benchmark to `path`.
    fn append_json(&self, path: &str, id: &BenchmarkId, per_iter: Duration) {
        let throughput = match self.throughput {
            Some(Throughput::Bytes(n)) => format!(",\"throughput_bytes\":{n}"),
            Some(Throughput::Elements(n)) => format!(",\"throughput_elements\":{n}"),
            None => String::new(),
        };
        let line = format!(
            "{{\"bench\":\"{}/{}\",\"ns_per_iter\":{}{throughput},\"quick\":{}}}",
            escape_json(&self.name),
            escape_json(&id.0),
            per_iter.as_nanos(),
            quick_mode(),
        );
        let appended = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut file| writeln!(file, "{line}"));
        if let Err(e) = appended {
            eprintln!("FRS_BENCH_JSON: cannot append to {path}: {e}");
        }
    }
}

/// Minimal JSON string escaping for benchmark names (no serde dependency
/// here): quotes, backslashes, and every control character < 0x20, so any
/// id a bench constructs still yields a parseable line.
fn escape_json(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Measures the closure repeatedly and keeps per-sample timings.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `f`, collecting `sample_size` samples (bounded to keep the
    /// whole suite fast even for slow bodies).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration sizing from one probe call.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        // Quick mode (FRS_BENCH_QUICK) shrinks the per-sample budget so even
        // slow bodies finish in milliseconds — CI smoke, not measurement.
        let budget = if quick_mode() {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(20)
        };
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }
}

/// Mirrors `criterion_group!`: a function running each bench function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 2), &2u64, |b, &k| {
            b.iter(|| (0..64u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    /// Serializes tests that touch the process-global env knobs.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn harness_runs_to_completion() {
        let _guard = ENV_LOCK.lock().unwrap();
        benches();
    }

    #[test]
    fn json_sink_appends_one_line_per_benchmark() {
        let _guard = ENV_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join(format!("frs-bench-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("FRS_BENCH_JSON", &path);
        std::env::set_var("FRS_BENCH_QUICK", "1");
        benches();
        std::env::remove_var("FRS_BENCH_JSON");
        std::env::remove_var("FRS_BENCH_QUICK");

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"bench\":\"shim/sum\""), "{text}");
        assert!(lines[0].contains("\"ns_per_iter\":"), "{text}");
        assert!(lines[0].contains("\"quick\":true"), "{text}");
        assert!(lines[1].contains("\"bench\":\"shim/scaled/2\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\tb\nc\r\u{1}"), "a\\tb\\nc\\r\\u0001");
    }
}
