//! The PIECK malicious client (Algorithms 2 and 3 wired into the federation).
//!
//! Behaviour per round the client is sampled:
//!
//! 1. While mining is incomplete (`r̃ ≤ R̃+1`), feed the received model to the
//!    miner and upload nothing — indistinguishable from a user with no data.
//! 2. Once the popular set `P` is frozen, craft poisonous gradients for the
//!    target items with the configured variant and upload them. Under
//!    `TrainOneThenCopy`, one gradient is computed (for the first target) and
//!    uploaded for every target id.

use frs_linalg::vector;
use frs_model::{GlobalGradients, GlobalModel};

use frs_federation::{Client, RoundContext};

use crate::config::PieckConfig;
pub use crate::config::{MultiTargetStrategy, PieckVariant};
use crate::ipe::ipe_gradient;
use crate::mining::PopularItemMiner;
use crate::uea::uea_poison_gradient;

/// A malicious federation participant running PIECK.
pub struct PieckClient {
    id: usize,
    config: PieckConfig,
    miner: PopularItemMiner,
}

impl PieckClient {
    /// Builds the client; panics on invalid configuration (attacks are
    /// constructed programmatically by the experiment harness).
    pub fn new(id: usize, config: PieckConfig) -> Self {
        config.validate().expect("invalid PIECK config");
        let miner = PopularItemMiner::new(config.mining_rounds, config.top_n);
        Self { id, config, miner }
    }

    /// The mined popular set, once available (tests/diagnostics).
    pub fn mined_popular(&self) -> Option<&[u32]> {
        self.miner.mined()
    }

    /// The attack configuration.
    pub fn config(&self) -> &PieckConfig {
        &self.config
    }

    /// Crafts the poisonous gradient for one target item.
    fn poison_for_target(
        &self,
        model: &GlobalModel,
        popular: &[u32],
        target: u32,
        server_lr: f32,
    ) -> Vec<f32> {
        let mut grad = match &self.config.variant {
            PieckVariant::Ipe(ipe_cfg) => {
                let popular_embs: Vec<&[f32]> = popular
                    .iter()
                    .filter(|&&k| k != target)
                    .map(|&k| model.item_embedding(k))
                    .collect();
                ipe_gradient(ipe_cfg, &popular_embs, model.item_embedding(target))
            }
            PieckVariant::Uea(uea_cfg) => {
                let filtered: Vec<u32> = popular.iter().copied().filter(|&k| k != target).collect();
                uea_poison_gradient(uea_cfg, model, &filtered, target, server_lr)
            }
        };
        vector::scale(&mut grad, self.config.gradient_scale);
        grad
    }
}

impl Client for PieckClient {
    fn id(&self) -> usize {
        self.id
    }

    fn is_malicious(&self) -> bool {
        true
    }

    fn local_round(&mut self, ctx: &RoundContext, model: &GlobalModel) -> GlobalGradients {
        let mut upload = GlobalGradients::new();
        if !self.miner.observe(model) {
            return upload; // still mining
        }
        let popular = self.miner.mined().expect("mining complete").to_vec();

        match self.config.multi_target {
            MultiTargetStrategy::TrainTogether => {
                for &target in &self.config.targets {
                    let g = self.poison_for_target(model, &popular, target, ctx.server_lr);
                    upload.add_item_grad(target, &g);
                }
            }
            MultiTargetStrategy::TrainOneThenCopy => {
                let first = self.config.targets[0];
                let g = self.poison_for_target(model, &popular, first, ctx.server_lr);
                for &target in &self.config.targets {
                    upload.add_item_grad(target, &g);
                }
            }
        }
        upload
    }

    fn checkpoint_state(&self) -> serde::Value {
        self.miner.checkpoint_state()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        self.miner.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frs_linalg::SeedStream;
    use frs_model::{LossKind, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> GlobalModel {
        GlobalModel::new(&ModelConfig::mf(6), 20, &mut StdRng::seed_from_u64(4))
    }

    fn ctx(round: usize) -> RoundContext {
        RoundContext::new(round, 1.0, 1.0, 1, LossKind::Bce, SeedStream::new(1))
    }

    /// Drives the miner to completion by feeding perturbed models.
    fn complete_mining(client: &mut PieckClient, model: &mut GlobalModel) {
        for r in 0..3 {
            let upload = client.local_round(&ctx(r), model);
            if client.mined_popular().is_none() {
                assert!(upload.is_empty(), "must stay silent while mining");
            }
            // Perturb "popular" items 0..5 so mining has signal.
            let mut g = GlobalGradients::new();
            for j in 0..5u32 {
                g.add_item_grad(j, &[0.5; 6]);
            }
            model.apply_gradients(&g, 1.0);
        }
        assert!(client.mined_popular().is_some());
    }

    #[test]
    fn silent_during_mining_then_attacks() {
        let mut m = model();
        let mut client = PieckClient::new(100, PieckConfig::ipe(vec![15]));
        complete_mining(&mut client, &mut m);
        let upload = client.local_round(&ctx(10), &m);
        assert_eq!(upload.n_items(), 1);
        assert!(upload.items.contains_key(&15));
        assert!(upload.mlp.is_none(), "PIECK never touches the MLP");
    }

    #[test]
    fn mined_set_contains_perturbed_items() {
        let mut m = model();
        let mut client = PieckClient::new(100, PieckConfig::ipe(vec![15]));
        complete_mining(&mut client, &mut m);
        let mined = client.mined_popular().unwrap();
        // The five shifted items dominate Δ-Norm.
        for j in 0..5u32 {
            assert!(mined.contains(&j), "{j} missing from {mined:?}");
        }
    }

    #[test]
    fn uea_poison_raises_target_score_for_popular_pseudo_users() {
        let mut m = model();
        let mut client = PieckClient::new(100, PieckConfig::uea(vec![15]));
        complete_mining(&mut client, &mut m);
        let popular = client.mined_popular().unwrap().to_vec();
        let score_before: f32 = popular
            .iter()
            .map(|&k| m.logit(m.item_embedding(k), 15))
            .sum();
        let upload = client.local_round(&ctx(10), &m);
        m.apply_gradients(&upload, 1.0);
        let score_after: f32 = popular
            .iter()
            .map(|&k| m.logit(m.item_embedding(k), 15))
            .sum();
        assert!(
            score_after > score_before,
            "poison must raise pseudo-user scores: {score_before} -> {score_after}"
        );
    }

    #[test]
    fn train_one_then_copy_duplicates_gradient() {
        let mut m = model();
        let mut cfg = PieckConfig::ipe(vec![15, 16, 17]);
        cfg.multi_target = MultiTargetStrategy::TrainOneThenCopy;
        let mut client = PieckClient::new(100, cfg);
        complete_mining(&mut client, &mut m);
        let upload = client.local_round(&ctx(10), &m);
        assert_eq!(upload.n_items(), 3);
        assert_eq!(upload.items[&15], upload.items[&16]);
        assert_eq!(upload.items[&16], upload.items[&17]);
    }

    #[test]
    fn train_together_differs_per_target() {
        let mut m = model();
        let mut cfg = PieckConfig::ipe(vec![15, 16]);
        cfg.multi_target = MultiTargetStrategy::TrainTogether;
        let mut client = PieckClient::new(100, cfg);
        complete_mining(&mut client, &mut m);
        let upload = client.local_round(&ctx(10), &m);
        assert_eq!(upload.n_items(), 2);
        assert_ne!(
            upload.items[&15], upload.items[&16],
            "independent targets get independent gradients"
        );
    }

    #[test]
    fn gradient_scale_multiplies_upload() {
        let mut m1 = model();
        let mut c1 = PieckClient::new(100, PieckConfig::ipe(vec![15]));
        complete_mining(&mut c1, &mut m1);
        let g1 = c1.local_round(&ctx(10), &m1);

        let mut m2 = model();
        let mut cfg = PieckConfig::ipe(vec![15]);
        cfg.gradient_scale = 2.0;
        let mut c2 = PieckClient::new(100, cfg);
        complete_mining(&mut c2, &mut m2);
        let g2 = c2.local_round(&ctx(10), &m2);

        for (a, b) in g1.items[&15].iter().zip(&g2.items[&15]) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn target_excluded_from_its_own_popular_set() {
        // If the target itself gets mined (possible under heavy poisoning),
        // it must not be used as its own alignment anchor / pseudo-user.
        let mut m = model();
        let mut client = PieckClient::new(100, PieckConfig::ipe(vec![2]));
        // Shift items 0..5 including target 2.
        complete_mining(&mut client, &mut m);
        assert!(client.mined_popular().unwrap().contains(&2));
        let upload = client.local_round(&ctx(10), &m);
        let g = &upload.items[&2];
        assert!(g.iter().all(|v| v.is_finite()));
    }
}
