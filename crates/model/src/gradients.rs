//! Gradient containers for the shared (global) model parameters.
//!
//! A client's upload is sparse over items — only items in its local round
//! dataset `D_i` (or, for attackers, the target items) carry gradients — plus,
//! for DL-FRS, dense MLP gradients. [`GlobalGradients`] is both the client
//! upload format and the server-side accumulator.

use std::collections::BTreeMap;

use frs_linalg::{vector, Matrix};
use serde::{Deserialize, Serialize};

/// Gradients of the NCF interaction parameters (`W_l`, `b_l`, `h` of Eq. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpGradients {
    pub weights: Vec<Matrix>,
    pub biases: Vec<Vec<f32>>,
    pub projection: Vec<f32>,
}

impl MlpGradients {
    /// Zero gradients matching the given layer shapes and projection size.
    pub fn zeros(shapes: &[(usize, usize)], projection_len: usize) -> Self {
        Self {
            weights: shapes.iter().map(|&(i, o)| Matrix::zeros(o, i)).collect(),
            biases: shapes.iter().map(|&(_, o)| vec![0.0; o]).collect(),
            projection: vec![0.0; projection_len],
        }
    }

    /// `self += alpha * other`, shape-checked.
    pub fn axpy(&mut self, alpha: f32, other: &MlpGradients) {
        assert_eq!(self.weights.len(), other.weights.len());
        for (w, ow) in self.weights.iter_mut().zip(&other.weights) {
            w.axpy_matrix(alpha, ow);
        }
        for (b, ob) in self.biases.iter_mut().zip(&other.biases) {
            vector::axpy(alpha, ob, b);
        }
        vector::axpy(alpha, &other.projection, &mut self.projection);
    }

    /// Multiplies every gradient by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for w in &mut self.weights {
            vector::scale(w.as_mut_slice(), alpha);
        }
        for b in &mut self.biases {
            vector::scale(b, alpha);
        }
        vector::scale(&mut self.projection, alpha);
    }

    /// Global L2 norm over all parameters (for NormBound-style clipping).
    pub fn l2_norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for w in &self.weights {
            let n = w.frobenius_norm();
            sq += n * n;
        }
        for b in &self.biases {
            let n = vector::l2_norm(b);
            sq += n * n;
        }
        let n = vector::l2_norm(&self.projection);
        sq += n * n;
        sq.sqrt()
    }

    /// Clips the *global* norm to `max_norm`; returns the scaling applied.
    pub fn clip_l2_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            let factor = max_norm / norm;
            self.scale(factor);
            factor
        } else {
            1.0
        }
    }

    /// Flattens all parameters into one vector (Krum-style defenses compare
    /// whole uploads in a single Euclidean space).
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for w in &self.weights {
            out.extend_from_slice(w.as_slice());
        }
        for b in &self.biases {
            out.extend_from_slice(b);
        }
        out.extend_from_slice(&self.projection);
        out
    }

    /// Rebuilds gradients from a flat vector laid out by [`Self::flatten`],
    /// using `self` as the shape template. Panics on length mismatch.
    pub fn unflatten_like(&self, flat: &[f32]) -> MlpGradients {
        let mut offset = 0usize;
        let mut take = |len: usize| {
            let s = &flat[offset..offset + len];
            offset += len;
            s.to_vec()
        };
        let weights: Vec<Matrix> = self
            .weights
            .iter()
            .map(|w| Matrix::from_vec(w.rows(), w.cols(), take(w.rows() * w.cols())))
            .collect();
        let biases: Vec<Vec<f32>> = self.biases.iter().map(|b| take(b.len())).collect();
        let projection = take(self.projection.len());
        assert_eq!(offset, flat.len(), "flat gradient length mismatch");
        MlpGradients {
            weights,
            biases,
            projection,
        }
    }
}

/// A full gradient upload (or aggregate) for the global model: sparse item
/// gradients plus optional MLP gradients.
///
/// Item gradients are keyed in a `BTreeMap` so iteration order — and therefore
/// server-side aggregation — is deterministic regardless of upload order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GlobalGradients {
    pub items: BTreeMap<u32, Vec<f32>>,
    pub mlp: Option<MlpGradients>,
}

impl GlobalGradients {
    /// Empty upload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `grad` into item `j`'s slot.
    pub fn add_item_grad(&mut self, item: u32, grad: &[f32]) {
        match self.items.get_mut(&item) {
            Some(acc) => vector::add_assign(acc, grad),
            None => {
                self.items.insert(item, grad.to_vec());
            }
        }
    }

    /// `self += alpha * other` over both item and MLP parts.
    pub fn axpy(&mut self, alpha: f32, other: &GlobalGradients) {
        for (&item, grad) in &other.items {
            match self.items.get_mut(&item) {
                Some(acc) => vector::axpy(alpha, grad, acc),
                None => {
                    let mut g = grad.clone();
                    vector::scale(&mut g, alpha);
                    self.items.insert(item, g);
                }
            }
        }
        if let Some(omlp) = &other.mlp {
            match &mut self.mlp {
                Some(m) => m.axpy(alpha, omlp),
                None => {
                    let mut m = omlp.clone();
                    m.scale(alpha);
                    self.mlp = Some(m);
                }
            }
        }
    }

    /// Multiplies everything by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for grad in self.items.values_mut() {
            vector::scale(grad, alpha);
        }
        if let Some(m) = &mut self.mlp {
            m.scale(alpha);
        }
    }

    /// Number of items carrying a gradient.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// True when there is nothing to upload.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty() && self.mlp.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp_grads() -> MlpGradients {
        let mut g = MlpGradients::zeros(&[(4, 2), (2, 2)], 2);
        g.weights[0].row_mut(0)[0] = 1.0;
        g.biases[1][1] = 2.0;
        g.projection[0] = 3.0;
        g
    }

    #[test]
    fn mlp_zeros_shapes() {
        let g = MlpGradients::zeros(&[(4, 2), (2, 3)], 3);
        assert_eq!(g.weights[0].rows(), 2);
        assert_eq!(g.weights[0].cols(), 4);
        assert_eq!(g.biases[1].len(), 3);
        assert_eq!(g.projection.len(), 3);
    }

    #[test]
    fn mlp_axpy_and_scale() {
        let mut a = mlp_grads();
        let b = mlp_grads();
        a.axpy(2.0, &b);
        assert_eq!(a.weights[0].row(0)[0], 3.0);
        assert_eq!(a.biases[1][1], 6.0);
        a.scale(0.5);
        assert_eq!(a.projection[0], 4.5);
    }

    #[test]
    fn mlp_norm_and_clip() {
        let mut g = mlp_grads();
        let norm = g.l2_norm();
        assert!((norm - (1.0f32 + 4.0 + 9.0).sqrt()).abs() < 1e-6);
        g.clip_l2_norm(1.0);
        assert!((g.l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mlp_flatten_length() {
        let g = MlpGradients::zeros(&[(4, 2), (2, 3)], 3);
        assert_eq!(g.flatten().len(), 8 + 6 + 2 + 3 + 3);
    }

    #[test]
    fn mlp_flatten_roundtrip() {
        let g = mlp_grads();
        let flat = g.flatten();
        let back = g.unflatten_like(&flat);
        assert_eq!(g, back);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unflatten_wrong_length_panics() {
        let g = mlp_grads();
        let mut flat = g.flatten();
        flat.push(0.0);
        g.unflatten_like(&flat);
    }

    #[test]
    fn item_grads_accumulate() {
        let mut g = GlobalGradients::new();
        g.add_item_grad(5, &[1.0, 2.0]);
        g.add_item_grad(5, &[0.5, 0.5]);
        g.add_item_grad(2, &[1.0, 0.0]);
        assert_eq!(g.items[&5], vec![1.5, 2.5]);
        assert_eq!(g.n_items(), 2);
    }

    #[test]
    fn axpy_merges_disjoint_items() {
        let mut a = GlobalGradients::new();
        a.add_item_grad(1, &[1.0]);
        let mut b = GlobalGradients::new();
        b.add_item_grad(2, &[3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.items[&1], vec![1.0]);
        assert_eq!(a.items[&2], vec![6.0]);
    }

    #[test]
    fn iteration_order_is_item_order() {
        let mut g = GlobalGradients::new();
        g.add_item_grad(9, &[0.0]);
        g.add_item_grad(3, &[0.0]);
        g.add_item_grad(7, &[0.0]);
        let keys: Vec<u32> = g.items.keys().copied().collect();
        assert_eq!(keys, vec![3, 7, 9]);
    }

    #[test]
    fn empty_checks() {
        let g = GlobalGradients::new();
        assert!(g.is_empty());
        let mut g2 = GlobalGradients::new();
        g2.mlp = Some(MlpGradients::zeros(&[(2, 1)], 1));
        assert!(!g2.is_empty());
    }
}
