//! frs-lint: determinism-and-robustness static analysis for this workspace.
//!
//! The experiment pipeline's contract is byte-identical reports for
//! identical configs, and the serving tier's contract is that a malformed
//! request never takes the daemon down. Both are easy to break with one
//! innocuous line — iterating a `HashMap` on a result path, an `unwrap()`
//! in a connection loop, a `thread_rng()` in cache-keyed code — and none
//! of those are compile errors. This crate is the guard rail: a small
//! hand-rolled lexer (`lexer`) feeds a token-level rule engine (`rules`,
//! `engine`) scoped per crate by the committed `lint.toml` (`config`),
//! with mandatory-reason inline waivers (`waiver`).
//!
//! The rules are deliberately project-specific and deliberately shallow:
//! they see tokens, not types, so they trade a few waivable false
//! positives for zero build-time dependencies (the container is offline —
//! no `syn`, no `toml`) and sub-second whole-workspace runs.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod toml_mini;
pub mod waiver;

pub use config::{LintConfig, RuleScope};
pub use engine::{
    discover_packages, lint_paths, lint_source, lint_workspace, rule_listing, scope_listing,
    LintReport, Violation,
};
pub use rules::{builtin_rule_ids, builtin_rules, INVALID_WAIVER};
