//! Synthetic-dataset generation and sampling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frs_data::{leave_one_out, synth, DatasetSpec, NegativeSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    for scale in [0.1f64, 0.25] {
        let spec = DatasetSpec::ml100k_like().scaled(scale);
        group.bench_with_input(
            BenchmarkId::new("generate", format!("{scale}")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    criterion::black_box(synth::generate(spec, &mut rng).n_interactions())
                });
            },
        );
    }
    let spec = DatasetSpec::ml100k_like().scaled(0.25);
    let data = synth::generate(&spec, &mut StdRng::seed_from_u64(1));
    group.bench_function("leave_one_out", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            criterion::black_box(leave_one_out(&data, &mut rng).test_item.len())
        });
    });
    let sampler = NegativeSampler::new(1);
    group.bench_function("negative_sample_one_user", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| criterion::black_box(sampler.sample(&data, 0, &mut rng).len()));
    });
    group.finish();
}

criterion_group!(benches, dataset_gen);
criterion_main!(benches);
